//! Compare all five systems on one workload — the Figs. 2-4 experience in
//! miniature: phase-separated times, box-plot summaries, PageRank
//! iteration counts.
//!
//! ```sh
//! cargo run --release --example compare_systems
//! ```

use epg::harness::stats::Summary;
use epg::prelude::*;

fn main() {
    let spec = GraphSpec::Kronecker { scale: 11, edge_factor: 16, weighted: true };
    let ds = Dataset::from_spec(&spec, 7);
    println!(
        "workload: {} ({} vertices, {} edges, weighted)\n",
        ds.name,
        ds.raw.num_vertices,
        ds.raw.num_edges()
    );

    let cfg = ExperimentConfig { threads: 2, max_roots: Some(8), ..ExperimentConfig::new() };
    let result = run_experiment(&cfg, &ds);

    for algo in [Algorithm::Bfs, Algorithm::Sssp, Algorithm::PageRank] {
        println!("== {} ==", algo.name());
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>8}",
            "system", "min (s)", "median", "max", "mean", "n"
        );
        for kind in EngineKind::ALL {
            let times = result.run_times(kind, algo);
            if times.is_empty() {
                println!("{:<12} {:>10}", kind.name(), "N/A");
                continue;
            }
            let s = Summary::of(&times);
            println!(
                "{:<12} {:>10.5} {:>10.5} {:>10.5} {:>10.5} {:>8}",
                kind.name(),
                s.min,
                s.median,
                s.max,
                s.mean,
                s.n
            );
        }
        println!();
    }

    // Fig. 2/3 right panels: construction time, only where separable.
    println!("== Data structure construction ==");
    for kind in EngineKind::ALL {
        let times = result.construct_times(kind);
        match times.first() {
            Some(&t) => println!("{:<12} {t:>10.5} s", kind.name()),
            None => println!(
                "{:<12} {:>10} (reads file and builds simultaneously)",
                kind.name(),
                "fused"
            ),
        }
    }

    // Fig. 4 right panel: iteration counts under native stopping criteria.
    println!("\n== PageRank iterations (native stopping criteria) ==");
    for kind in EngineKind::ALL {
        let iters = result.pr_iterations(kind);
        if let Some(&i) = iters.first() {
            let note = if kind == EngineKind::GraphMat {
                "  <- runs until no vertex changes rank (∞-norm)"
            } else {
                ""
            };
            println!("{:<12} {i:>6}{note}", kind.name());
        }
    }
}
