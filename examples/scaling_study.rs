//! Strong-scaling study — the Figs. 5-6 experience: measure each BFS
//! engine once, then project the measured trace onto 1..72 threads of the
//! simulated Haswell and print speedup and parallel efficiency.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use epg::prelude::*;

const THREADS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 72];

fn main() {
    let spec = GraphSpec::Kronecker { scale: 12, edge_factor: 16, weighted: false };
    let ds = Dataset::from_spec(&spec, 23);
    let cfg = ExperimentConfig {
        algorithms: vec![Algorithm::Bfs],
        max_roots: Some(4), // "only four trials were run" (§IV-B)
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);
    let model = MachineModel::paper_machine();

    println!("BFS strong scaling, projected onto: {}\n", model.spec.name);
    print!("{:<12}", "speedup");
    for n in THREADS {
        print!("{n:>8}");
    }
    println!();
    let mut efficiencies = Vec::new();
    for kind in EngineKind::ALL {
        let runs: Vec<_> = result
            .runs
            .iter()
            .filter(|r| r.engine == kind && r.algorithm == Algorithm::Bfs)
            .collect();
        let Some(run) = runs.first() else { continue };
        let rate = model.calibrate_rate(&run.output.trace, run.seconds);
        let speedup = model.speedup_curve(&run.output.trace, rate, &THREADS);
        print!("{:<12}", kind.name());
        for (_, s) in &speedup {
            print!("{s:>8.2}");
        }
        println!();
        efficiencies.push((kind, model.efficiency_curve(&run.output.trace, rate, &THREADS)));
    }

    println!("\n{:<12} T1/(n*Tn)", "efficiency");
    for (kind, eff) in &efficiencies {
        print!("{:<12}", kind.name());
        for (_, e) in eff {
            print!("{e:>8.3}");
        }
        println!();
    }
    println!("\n(ideal efficiency is 1.0; the paper observes \"generally poor");
    println!(" scaling for this size problem\" — visible here as the drop-off");
    println!(" past the 36 physical cores and under barrier overheads.)");
}
