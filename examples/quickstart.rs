//! Quickstart: generate a Kronecker graph, run BFS on the GAP-style
//! engine, and validate the result — the five-minute tour.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use epg::prelude::*;

fn main() {
    // 1. A Graph500 Kronecker graph: scale 12 => 4,096 vertices, ~16x that
    //    many edges (the paper's generator parameters, §III-B).
    let spec = GraphSpec::Kronecker { scale: 12, edge_factor: 16, weighted: false };
    let ds = Dataset::from_spec(&spec, 42);
    println!(
        "generated {}: {} vertices, {} directed edges, {} roots",
        ds.name,
        ds.raw.num_vertices,
        ds.raw.num_edges(),
        ds.roots.len()
    );

    // 2. Load it into the GAP-style engine (direction-optimizing BFS).
    let pool = ThreadPool::new(2);
    let mut engine = EngineKind::Gap.create();
    engine.load_edge_list(ds.edges_for(EngineKind::Gap));
    engine.construct(&pool);

    // 3. Run BFS from each sampled root and validate the parent trees.
    let csr = Csr::from_edge_list(&ds.symmetric);
    for &root in ds.roots.iter().take(4) {
        let out = engine.run(Algorithm::Bfs, &RunParams::new(&pool, Some(root)));
        let AlgorithmResult::BfsTree { parent, level } = &out.result else { unreachable!() };
        epg::graph::validate::validate_bfs_tree(&csr, root, parent)
            .expect("BFS tree failed Graph500-style validation");
        let reached = level.iter().filter(|&&l| l != u32::MAX).count();
        println!(
            "root {root:>6}: reached {reached} vertices, max level {}, {} edges traversed",
            level.iter().filter(|&&l| l != u32::MAX).max().unwrap(),
            out.counters.edges_traversed
        );
    }
    println!("all BFS trees validated.");
}
