//! The Graphalytics pitfall — the paper's Table I argument, live.
//!
//! Runs the Graphalytics-style comparator (one trial, per-system phase
//! inclusion) next to the honest phase breakdown, showing how GraphMat's
//! reported runtime absorbs its file-read time while GraphBIG's does not:
//! "If the time to read in the text file was ignored then GraphMat would
//! complete nearly twice as quickly."
//!
//! ```sh
//! cargo run --release --example graphalytics_pitfall
//! ```

use epg::harness::graphalytics::{self, GRAPHALYTICS_ENGINES};
use epg::prelude::*;

fn main() {
    // The dense, weighted dota-league stand-in — the dataset the paper's
    // GraphMat log excerpt comes from.
    let spec = GraphSpec::DotaLeague { num_vertices: 1200, avg_degree: 96 };
    let ds = Dataset::from_spec(&spec, 11);
    println!(
        "dataset: {} ({} vertices, {} edges, weighted — dota-league stand-in)\n",
        ds.name,
        ds.raw.num_vertices,
        ds.raw.num_edges()
    );

    let cells =
        graphalytics::run_graphalytics(&GRAPHALYTICS_ENGINES, &[Algorithm::PageRank], &ds, 2);

    println!("what Graphalytics reports (PageRank, one run):");
    println!(
        "{:<12} {:>12}   {:>10} {:>10} {:>10} {:>10}",
        "system", "reported(s)", "read", "construct", "run", "output"
    );
    for c in &cells {
        let Some(reported) = c.reported_seconds else { continue };
        let p = c.true_phases.unwrap();
        println!(
            "{:<12} {:>12.5}   {:>10.5} {:>10.5} {:>10.5} {:>10.5}",
            c.engine.name(),
            reported,
            p.read_s,
            p.construct_s,
            p.run_s,
            p.output_s
        );
    }

    if let Some(gm) =
        cells.iter().find(|c| c.engine == EngineKind::GraphMat && c.reported_seconds.is_some())
    {
        let p = gm.true_phases.unwrap();
        let reported = gm.reported_seconds.unwrap();
        let without_read = reported - p.read_s;
        println!(
            "\nGraphMat reported {reported:.4}s, but {:.4}s of that is reading the input \
             file.\nIgnore the file read and it completes in {without_read:.4}s — {:.1}x \
             faster than its reported number suggests.",
            p.read_s,
            reported / without_read.max(1e-9)
        );
        println!("GraphBIG's reported number, meanwhile, never included its read time.");
        println!("\"To call this a fair comparison is dubious at best.\" (§II)");
    }
}
