//! Energy profiling with the RAPL simulator — the Table III / Fig. 9
//! experience: run BFS per system, feed the measured traces to the
//! simulated Haswell's power model, and print energy per root, the
//! sleep(10) baseline, and the increase over sleep.
//!
//! ```sh
//! cargo run --release --example energy_profile
//! ```

use epg::machine::rapl::PowerRapl;
use epg::prelude::*;

fn main() {
    let spec = GraphSpec::Kronecker { scale: 11, edge_factor: 16, weighted: false };
    let ds = Dataset::from_spec(&spec, 3);
    let cfg = ExperimentConfig {
        algorithms: vec![Algorithm::Bfs],
        max_roots: Some(8),
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);

    let model = MachineModel::paper_machine();
    let threads = 32; // the paper measures power at 32 threads
    println!("machine: {}", model.spec.name);
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>14} {:>10}",
        "system", "time (s)", "avg CPU (W)", "avg RAM (W)", "energy/root (J)", "vs sleep"
    );
    for kind in EngineKind::ALL {
        // Average over this engine's per-root runs.
        let runs: Vec<_> = result
            .runs
            .iter()
            .filter(|r| r.engine == kind && r.algorithm == Algorithm::Bfs)
            .collect();
        if runs.is_empty() {
            continue;
        }
        let mut time = 0.0;
        let mut cpu_w = 0.0;
        let mut ram_w = 0.0;
        let mut energy = 0.0;
        let mut sleep_energy = 0.0;
        for run in &runs {
            // Calibrate the model from this run's real measurement, then
            // project time and integrate power at 32 target threads.
            let rate = model.calibrate_rate(&run.output.trace, run.seconds);
            let mut rapl = PowerRapl::init(&model, rate, threads);
            rapl.start();
            rapl.record(&run.output.trace);
            let rep = rapl.end();
            time += rep.duration_s;
            cpu_w += rep.avg_cpu_w;
            ram_w += rep.avg_ram_w;
            energy += rep.total_j();
            sleep_energy += model.sleep_baseline(rep.duration_s).total_j();
        }
        let n = runs.len() as f64;
        println!(
            "{:<12} {:>10.5} {:>12.2} {:>12.2} {:>14.4} {:>10.3}",
            kind.name(),
            time / n,
            cpu_w / n,
            ram_w / n,
            energy / n,
            energy / sleep_energy
        );
    }
    let sleep = model.sleep_baseline(10.0);
    println!(
        "\nsleep(10) baseline: CPU {:.1} W, RAM {:.1} W ({:.1} J total)",
        sleep.avg_cpu_w,
        sleep.avg_ram_w,
        sleep.total_j()
    );
    println!("(as in the paper, the fastest code is also the most energy efficient)");
}
