//! Profile a dataset and explain where each engine's time goes — the
//! dataset homogenizer's characterization plus Granula-style operation
//! charts (§II), end to end on one workload.
//!
//! ```sh
//! cargo run --release --example profile_dataset
//! ```

use epg::graph::analysis::GraphProfile;
use epg::harness::granula::OperationChart;
use epg::prelude::*;

fn main() {
    // Profile the two real-world stand-ins next to a Kronecker graph to
    // see why the paper picked them: one sparse/unweighted, one dense/
    // weighted, one synthetic power-law.
    let specs = [
        GraphSpec::CitPatents { scale_div: 1024 },
        GraphSpec::DotaLeague { num_vertices: 1000, avg_degree: 100 },
        GraphSpec::Kronecker { scale: 10, edge_factor: 16, weighted: false },
    ];
    for spec in &specs {
        let ds = Dataset::from_spec(spec, 7);
        println!("=== {} ===", ds.name);
        print!("{}", GraphProfile::of(&ds.raw).to_text());
        println!();
    }

    // Operation charts: run BFS once per engine and decompose where the
    // projected 32-thread time would go.
    let ds = Dataset::from_spec(&specs[2], 7);
    let cfg = ExperimentConfig {
        algorithms: vec![Algorithm::Bfs],
        max_roots: Some(1),
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);
    let model = MachineModel::paper_machine();
    for kind in [EngineKind::Gap, EngineKind::GraphMat] {
        let run = result.runs.iter().find(|r| r.engine == kind).unwrap();
        let rate = model.calibrate_rate(&run.output.trace, run.seconds.max(1e-9));
        let chart = OperationChart::build(
            &[(Phase::Run, run.seconds)],
            &run.output.trace,
            &model,
            rate,
            32,
        );
        println!("--- {} BFS operation chart (projected, 32 threads) ---", kind.name());
        print!("{}", chart.to_text());
        println!();
    }
    println!(
        "note how GraphMat's chart shows a serial (Amdahl) component — the\n\
         SpMSpV accumulator merge — that the CSR engines do not have."
    );
}
