//! Offline stand-in for `criterion`.
//!
//! Implements enough of the criterion 0.5 API for this workspace's benches
//! to compile and run without a registry: `criterion_group!`/
//! `criterion_main!`, benchmark groups, `Bencher::iter`, `BenchmarkId`, and
//! `Throughput`. Measurement is deliberately simple — each closure runs a
//! warmup pass plus `sample_size` timed iterations and the mean is printed —
//! because the statistical machinery is not what these benches regression-
//! gate; the workspace's own harness owns real measurement.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Work-rate annotation attached to a group; printed alongside timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function-plus-parameter id, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", name.into(), param) }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId { label: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.to_string() }
    }
}

/// Timing driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` once for warmup, then `iters` timed repetitions.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.sample_size;
        run_one("", sample_size, id.into(), None, f);
    }
}

/// A named collection of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's throughput annotation.
    pub fn throughput(&mut self, _t: Throughput) {}

    /// Overrides the timed iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_one(&self.name, self.sample_size, id.into(), None, f);
    }

    /// Runs a benchmark whose closure also receives `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&self.name, self.sample_size, id, None, |b| f(b, input));
    }

    /// Ends the group (printing already happened per-bench).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    sample_size: u64,
    id: BenchmarkId,
    _throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher { iters: sample_size, elapsed: Duration::ZERO };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / sample_size.max(1) as f64;
    let label = if group.is_empty() { id.label.clone() } else { format!("{}/{}", group, id.label) };
    println!("bench {label}: {:.6} s/iter (n = {sample_size})", mean);
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench-harness entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
