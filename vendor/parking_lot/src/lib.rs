//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API so
//! the rest of the workspace compiles unchanged without a registry. A
//! poisoned std lock (a writer panicked) is recovered by taking the inner
//! guard: the panic is already propagating elsewhere, and parking_lot
//! semantics are that locks are never poisoned.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// Non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard invariant: inner present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard invariant: inner present outside wait")
    }
}

/// Condition variable pairing with [`Mutex`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and blocks until notified,
    /// reacquiring before returning (parking_lot signature: guard borrowed
    /// mutably rather than moved).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard invariant: inner present outside wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
