//! Offline stand-in for the `rand` crate.
//!
//! The build container cannot reach a registry, so the workspace vendors the
//! narrow surface it actually uses: a deterministic [`rngs::StdRng`]
//! (xoshiro256** seeded via splitmix64), the [`Rng`]/[`SeedableRng`] traits
//! with `gen`, `gen_range`, and `gen_bool`, and [`seq::SliceRandom`] with
//! `shuffle`/`choose`. Streams differ from upstream `rand`, but every
//! consumer in this repo only relies on determinism per seed and on
//! distributional properties, not on exact upstream bit streams.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`] (the `Standard`
/// distribution in upstream rand: floats in `[0, 1)`, full range for ints).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it internally.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let x = rng.gen_range(0.5f32..2.0);
            assert!((0.5..2.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
