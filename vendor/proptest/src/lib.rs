//! Offline stand-in for `proptest`.
//!
//! The build container has no registry access, so the workspace vendors the
//! slice of proptest its tests rely on: the [`proptest!`] macro, `Strategy`
//! with `prop_map`/`prop_flat_map`, `Just`, `prop_oneof!`, ranges and tuples
//! as strategies, `collection::vec`, simple `"[a-z]{0,8}"`-style string
//! strategies, and the `prop_assert*` macros. Cases are sampled from a
//! deterministic per-test RNG; there is no shrinking — a failure reports the
//! test name and case number, which reproduce exactly on re-run.

pub mod test_runner {
    use std::fmt;

    /// Error carried out of a failing property body by the `prop_assert*`
    /// macros.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Per-test configuration. Only `cases` is honored by the stand-in.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Upstream defaults to 256; the stand-in trims this to keep the
            // tier-1 suite fast while still exercising varied inputs.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic xorshift64* generator seeded from the test path and
    /// case index.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one (test, case) pair; identical across runs.
        pub fn for_case(test_path: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            TestRng { state: h | 1 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between several strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over the given arms; must be nonempty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// `&str` regex-subset strategies: sequences of literal characters and
    /// `[..]` character classes, each optionally repeated `{min,max}` /
    /// `{n}`. This covers patterns like `"[ -~]{0,24}"`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    struct CharClass {
        /// Inclusive character ranges; a single char is a (c, c) pair.
        ranges: Vec<(char, char)>,
    }

    impl CharClass {
        fn pick(&self, rng: &mut TestRng) -> char {
            let total: u32 = self.ranges.iter().map(|&(a, b)| b as u32 - a as u32 + 1).sum();
            let mut idx = rng.below(total as usize) as u32;
            for &(a, b) in &self.ranges {
                let size = b as u32 - a as u32 + 1;
                if idx < size {
                    return char::from_u32(a as u32 + idx)
                        .expect("class range stays in scalar values");
                }
                idx -= size;
            }
            unreachable!("index chosen below total size")
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let class = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                    let body = &chars[i + 1..close];
                    let mut ranges = Vec::new();
                    let mut j = 0;
                    while j < body.len() {
                        if j + 2 < body.len() && body[j + 1] == '-' {
                            ranges.push((body[j], body[j + 2]));
                            j += 3;
                        } else {
                            ranges.push((body[j], body[j]));
                            j += 1;
                        }
                    }
                    i = close + 1;
                    CharClass { ranges }
                }
                '\\' => {
                    let c = chars.get(i + 1).copied().unwrap_or('\\');
                    i += 2;
                    CharClass { ranges: vec![(c, c)] }
                }
                c => {
                    i += 1;
                    CharClass { ranges: vec![(c, c)] }
                }
            };
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close =
                    chars[i..].iter().position(|&c| c == '}').map(|p| i + p).unwrap_or_else(|| {
                        panic!("unterminated repetition in pattern {pattern:?}")
                    });
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().expect("repetition lower bound"),
                        hi.trim().parse::<usize>().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                out.push(class.pick(rng));
            }
        }
        out
    }

    /// Marker so `PhantomData` stays referenced if strategies become
    /// zero-variant in the future.
    #[allow(dead_code)]
    type Unused = PhantomData<()>;
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size bounds for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with random length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface test files pull in.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests; see the crate docs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        ::std::panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property, failing the case (not aborting
/// the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`): {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right` (both: `{:?}`)",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<i64>> {
        collection::vec(-10i64..10, 0..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -2i64..=2, f in 0.5f64..1.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_and_tuple_shapes(v in small_vec(), (a, b) in (0u32..5, 0u32..5)) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|e| (-10..10).contains(e)));
            prop_assert!(a < 5 && b < 5);
        }

        #[test]
        fn string_pattern_shapes(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4, "len = {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_flat_map(v in (1usize..4).prop_flat_map(|n| collection::vec(prop_oneof![Just(0u8), Just(1u8)], n..n + 1))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&b| b < 2));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = collection::vec(0u64..1000, 3..10);
        let mut r1 = TestRng::for_case("x::y", 5);
        let mut r2 = TestRng::for_case("x::y", 5);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
