//! Format interop: homogenized files feed every engine; SNAP text, binary,
//! and each engine's internal representation all describe the same graph.

use epg::graph::snap;
use epg::prelude::*;

fn temp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("epg_fmt_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn every_engine_loads_its_homogenized_file_and_computes_correctly() {
    let dir = temp("all_engines");
    let ds =
        Dataset::from_spec(&GraphSpec::Kronecker { scale: 8, edge_factor: 8, weighted: true }, 21);
    ds.write_files(&dir).unwrap();
    let pool = ThreadPool::new(2);
    let csr = Csr::from_edge_list(&ds.symmetric);
    let root = ds.roots[0];
    let want = epg::graph::oracle::dijkstra(&csr, root);

    for kind in
        [EngineKind::Gap, EngineKind::GraphBig, EngineKind::GraphMat, EngineKind::PowerGraph]
    {
        let mut e = kind.create();
        e.load_file(&ds.input_path_for(&dir, kind), &pool).unwrap();
        e.construct(&pool);
        let AlgorithmResult::Distances(d) =
            e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(root))).result
        else {
            panic!()
        };
        for v in 0..want.len() {
            if want[v].is_finite() {
                assert!((d[v] - want[v]).abs() < 1e-3, "{} vertex {v}", kind.name());
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn graph500_gets_raw_edges_and_symmetrizes_itself() {
    let dir = temp("g500_raw");
    let ds =
        Dataset::from_spec(&GraphSpec::Kronecker { scale: 8, edge_factor: 8, weighted: false }, 22);
    ds.write_files(&dir).unwrap();
    let raw = snap::read_binary_file(&ds.input_path_for(&dir, EngineKind::Graph500)).unwrap();
    assert_eq!(raw, ds.raw);

    let pool = ThreadPool::new(1);
    let mut e = EngineKind::Graph500.create();
    e.load_file(&ds.input_path_for(&dir, EngineKind::Graph500), &pool).unwrap();
    e.construct(&pool);
    let root = ds.roots[0];
    let out = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(root)));
    // Levels must match BFS on the symmetrized graph even though the input
    // file was the raw directed list.
    let csr = Csr::from_edge_list(&ds.symmetric);
    let AlgorithmResult::BfsTree { level, .. } = out.result else { panic!() };
    assert_eq!(level, epg::graph::oracle::bfs(&csr, root).level);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn text_and_binary_files_describe_the_same_graph() {
    let dir = temp("text_vs_bin");
    let ds = Dataset::from_spec(
        &GraphSpec::Uniform { num_vertices: 200, num_edges: 1500, weighted: true },
        23,
    );
    ds.write_files(&dir).unwrap();
    let text = snap::read_snap_file(&dir.join(format!("{}.sym.snap", ds.name))).unwrap();
    let bin = snap::read_binary_file(&dir.join(format!("{}.sym.bin", ds.name))).unwrap();
    assert_eq!(text.edges, bin.edges);
    assert_eq!(text.weights, bin.weights);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn weights_survive_the_full_file_path_into_results() {
    // A crafted graph where the shortest path requires exact weights:
    // corrupting any format conversion changes the answer.
    let dir = temp("weights_exact");
    let el = EdgeList::weighted(
        4,
        vec![(0, 1), (1, 3), (0, 2), (2, 3)],
        vec![0.125, 0.250, 0.5, 0.0625],
    );
    let ds = Dataset::from_edge_list("crafted".into(), el, 1);
    ds.write_files(&dir).unwrap();
    let pool = ThreadPool::new(1);
    let mut e = EngineKind::Gap.create();
    e.load_file(&ds.input_path_for(&dir, EngineKind::Gap), &pool).unwrap();
    e.construct(&pool);
    let AlgorithmResult::Distances(d) =
        e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(0))).result
    else {
        panic!()
    };
    assert_eq!(d[3], 0.375); // 0.125 + 0.25, exactly representable
    std::fs::remove_dir_all(&dir).ok();
}
