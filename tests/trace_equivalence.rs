//! Trace/counters equivalence: the per-region `CountersDelta` stream an
//! engine emits must sum back to exactly the `Counters` aggregate it
//! returns in its `RunOutput`. Engines flush deltas with a
//! `DeltaTracker`, so a counter bump outside a flushed region (a future
//! regression this suite exists to catch) shows up here as a mismatch
//! instead of silently skewing `epg-machine` replay projections.
//!
//! The whole file is gated on the `trace` feature — without it there is
//! no recorder to attach and the suite is intentionally empty.
#![cfg(feature = "trace")]

use epg::engine_api::sum_counter_deltas;
use epg::prelude::*;
use epg::trace::Recorder;
use std::sync::Arc;

fn dataset() -> Dataset {
    Dataset::from_spec(&GraphSpec::Kronecker { scale: 7, edge_factor: 8, weighted: true }, 91)
}

/// Engine×algorithm pairs covering every engine at least once, with both
/// frontier-driven (BFS) and all-active (PageRank) shapes represented.
fn pairs() -> Vec<(EngineKind, Algorithm)> {
    vec![
        (EngineKind::Gap, Algorithm::Bfs),
        (EngineKind::Graph500, Algorithm::Bfs),
        (EngineKind::GraphBig, Algorithm::Bfs),
        (EngineKind::GraphMat, Algorithm::Bfs),
        (EngineKind::PowerGraph, Algorithm::PageRank),
    ]
}

#[test]
fn counters_equal_sum_of_trace_deltas_on_every_engine() {
    let ds = dataset();
    let pool = ThreadPool::new(2);
    for (kind, algo) in pairs() {
        let mut e = kind.create();
        e.load_edge_list(ds.edges_for(kind));
        e.construct(&pool);

        let rec = RunRecorder::new();
        let root = (algo == Algorithm::Bfs).then(|| ds.roots[0]);
        let mut params = RunParams::new(&pool, root);
        params.recorder = RecorderCtx::new(&rec);
        let out = e.run(algo, &params);

        let events = rec.events();
        assert!(
            events.iter().any(|ev| matches!(ev, TraceEvent::Iteration { .. })),
            "{} {:?}: no per-iteration events recorded",
            kind.name(),
            algo
        );
        assert_eq!(
            sum_counter_deltas(&events),
            out.counters,
            "{} {:?}: trace deltas do not sum to the reported counters",
            kind.name(),
            algo
        );
        assert_eq!(rec.dropped(), 0, "{} {:?}: ring buffer overflowed", kind.name(), algo);
    }
}

#[test]
fn pool_recorder_captures_worker_spans_during_a_run() {
    let ds = dataset();
    let pool = ThreadPool::new(2);
    let mut e = EngineKind::Gap.create();
    e.load_edge_list(ds.edges_for(EngineKind::Gap));
    e.construct(&pool);

    let rec = Arc::new(RunRecorder::new());
    pool.set_recorder(Some(rec.clone() as Arc<dyn Recorder>));
    let mut params = RunParams::new(&pool, Some(ds.roots[0]));
    params.recorder = RecorderCtx::new(&*rec);
    let _ = e.run(Algorithm::Bfs, &params);
    pool.set_recorder(None);

    let events = rec.events();
    let spans: Vec<_> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::WorkerSpan { worker, busy_ns, .. } => Some((*worker, *busy_ns)),
            _ => None,
        })
        .collect();
    assert!(!spans.is_empty(), "pool emitted no worker spans");
    assert!(spans.iter().any(|&(_, busy)| busy > 0), "every worker span reported zero busy time");
    // Both workers should have shown up at least once across the run.
    for w in 0..2u32 {
        assert!(spans.iter().any(|&(worker, _)| worker == w), "worker {w} never recorded a span");
    }
}
