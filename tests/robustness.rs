//! Robustness sweep: every engine × every supported algorithm on
//! degenerate inputs — empty-ish graphs, singletons, self-loops, stars,
//! disconnected shards. A comparison harness must not fall over on the
//! weird graphs users actually feed it ("any network in the SNAP data
//! format can be used", §III-B).

use epg::prelude::*;

fn degenerate_graphs() -> Vec<(&'static str, EdgeList)> {
    vec![
        ("zero_vertices", EdgeList::new(0, vec![])),
        ("zero_edges", EdgeList::new(4, vec![])),
        ("single_edge", EdgeList::new(2, vec![(0, 1)])),
        ("self_loop_only", EdgeList::new(1, vec![(0, 0)])),
        ("two_loops", EdgeList::new(2, vec![(0, 0), (1, 1)])),
        ("star", EdgeList::new(6, (1..6).map(|v| (0u32, v)).collect::<Vec<_>>()).symmetrized()),
        ("disconnected", EdgeList::new(9, vec![(0, 1), (1, 0), (3, 4), (4, 3), (6, 7), (7, 8)])),
        ("weighted_pair", EdgeList::weighted(3, vec![(0, 1), (1, 0)], vec![0.25, 0.25])),
        (
            "duplicate_heavy",
            EdgeList::new(3, vec![(0, 1); 20].into_iter().chain([(1, 2)]).collect::<Vec<_>>()),
        ),
        // Tiny instances of the adversarial SSSP families: the generators
        // must stay valid at the degenerate end of their parameter space,
        // and every engine must survive the shapes they produce (zero
        // weights, one-gadget spines, 2×2 spirals).
        ("tiny_spfa_killer", epg::generator::adversarial::spfa_killer(1, 1)),
        ("tiny_wrong_dijkstra", epg::generator::adversarial::wrong_dijkstra_killer(1, 1)),
        ("tiny_grid_swirl", epg::generator::adversarial::grid_swirl(2, 1)),
        ("tiny_almost_line", epg::generator::adversarial::almost_line(2, 1, 1)),
        ("tiny_max_dense_zero", epg::generator::adversarial::max_dense_zero(2)),
        ("empty_spfa_killer", epg::generator::adversarial::spfa_killer(0, 1)),
        ("empty_grid_swirl", epg::generator::adversarial::grid_swirl(0, 1)),
        ("empty_max_dense_zero", epg::generator::adversarial::max_dense_zero(0)),
    ]
}

#[test]
fn every_engine_survives_every_degenerate_graph() {
    let pool = ThreadPool::new(2);
    for (name, el) in degenerate_graphs() {
        let ds = Dataset::from_edge_list(name.to_string(), el, 1);
        for kind in EngineKind::ALL {
            let mut engine = kind.create();
            engine.load_edge_list(ds.edges_for(kind));
            engine.construct(&pool);
            for algo in Algorithm::ALL {
                if !engine.supports(algo) {
                    continue;
                }
                if algo.is_rooted() {
                    // Rooted algorithms need a qualifying root; skip when
                    // the sampler found none (as the harness does).
                    let Some(&root) = ds.roots.first() else { continue };
                    let out = engine.run(algo, &RunParams::new(&pool, Some(root)));
                    assert_eq!(
                        out.result.len(),
                        ds.symmetric.num_vertices,
                        "{} {} on {}",
                        kind.name(),
                        algo.abbrev(),
                        name
                    );
                } else {
                    let out = engine.run(algo, &RunParams::new(&pool, None));
                    // Per-vertex results must cover exactly the vertex set
                    // — in particular, empty (not a panic) on the
                    // zero-vertex graph. Triangle counts are a scalar.
                    let want = match out.result {
                        AlgorithmResult::Triangles(_) => 1,
                        _ => ds.symmetric.num_vertices,
                    };
                    assert_eq!(
                        out.result.len(),
                        want,
                        "{} {} on {}",
                        kind.name(),
                        algo.abbrev(),
                        name
                    );
                }
            }
        }
    }
}

#[test]
fn results_match_oracles_even_on_degenerate_graphs() {
    use epg::graph::oracle;
    let pool = ThreadPool::new(2);
    for (name, el) in degenerate_graphs() {
        let ds = Dataset::from_edge_list(name.to_string(), el, 2);
        let csr = Csr::from_edge_list(&ds.symmetric);
        let want_wcc = oracle::wcc(&csr);
        let want_tc = oracle::triangle_count(&csr);
        for kind in [EngineKind::GraphBig, EngineKind::GraphMat, EngineKind::PowerGraph] {
            let mut engine = kind.create();
            engine.load_edge_list(ds.edges_for(kind));
            engine.construct(&pool);
            let AlgorithmResult::Components(c) =
                engine.run(Algorithm::Wcc, &RunParams::new(&pool, None)).result
            else {
                panic!()
            };
            assert_eq!(c, want_wcc, "{} WCC on {}", kind.name(), name);
            let AlgorithmResult::Triangles(t) =
                engine.run(Algorithm::TriangleCount, &RunParams::new(&pool, None)).result
            else {
                panic!()
            };
            assert_eq!(t, want_tc, "{} TC on {}", kind.name(), name);
        }
    }
}

#[test]
fn harness_handles_graphs_with_no_eligible_roots() {
    // Only an edgeless graph has no vertex of total degree > 1 after
    // symmetrization: zero roots; the runner must simply produce no rooted
    // rows rather than panicking.
    let el = EdgeList::new(5, vec![]);
    let ds = Dataset::from_edge_list("no_roots".into(), el, 3);
    assert!(ds.roots.is_empty());
    let cfg = ExperimentConfig {
        algorithms: vec![Algorithm::Bfs, Algorithm::PageRank],
        max_roots: Some(4),
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);
    assert!(result.run_times(EngineKind::Gap, Algorithm::Bfs).is_empty());
    // Unrooted algorithms still ran.
    assert!(!result.run_times(EngineKind::Gap, Algorithm::PageRank).is_empty());
}

#[test]
fn snap_files_with_gaps_in_id_space_work_end_to_end() {
    // Sparse vertex ids (the SNAP norm): 0, 7, 100 only.
    let dir = std::env::temp_dir().join("epg_robust_sparse_ids");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sparse.snap");
    std::fs::write(&path, "# sparse ids\n0 7\n7 100\n100 0\n").unwrap();
    let ds = Dataset::from_snap_file(&path, 1).unwrap();
    assert_eq!(ds.raw.num_vertices, 101);
    let cfg = ExperimentConfig {
        algorithms: vec![Algorithm::Bfs],
        max_roots: Some(1),
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);
    assert!(!result.run_times(EngineKind::Gap, Algorithm::Bfs).is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
