#![allow(clippy::needless_range_loop)]

//! Reporting-stack integration: Granula operation charts, the markdown
//! report, the Graph500 official output block, the thread-sweep runner,
//! and the power-sensor backends — all through the public API.

use epg::graph500::teps::TepsStats;
use epg::harness::granula::OperationChart;
use epg::harness::report;
use epg::harness::runner::run_thread_sweep;
use epg::machine::sensor::{PowerSensor, RaplSensor, WattProfSensor};
use epg::prelude::*;

fn dataset() -> Dataset {
    Dataset::from_spec(&GraphSpec::Kronecker { scale: 8, edge_factor: 8, weighted: true }, 5)
}

#[test]
fn markdown_report_reflects_the_experiment() {
    let ds = dataset();
    let cfg = ExperimentConfig { max_roots: Some(2), ..ExperimentConfig::new() };
    let result = run_experiment(&cfg, &ds);
    let md = report::render(&result, &ds, 32);
    // Structural claims the paper's tables depend on must appear.
    assert!(md.contains("| Graph500 | N/A |") || md.contains("| Graph500 "));
    assert!(md.contains("fused with file read"));
    assert!(md.contains("pseudo-diameter"));
    // GraphMat's extra iterations are visible.
    let gm_iters = result.pr_iterations(EngineKind::GraphMat)[0];
    let gap_iters = result.pr_iterations(EngineKind::Gap)[0];
    assert!(gm_iters >= gap_iters);
}

#[test]
fn granula_chart_accounts_for_run_time() {
    let ds = dataset();
    let cfg = ExperimentConfig {
        algorithms: vec![Algorithm::Bfs],
        max_roots: Some(1),
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);
    let model = MachineModel::paper_machine();
    for kind in [EngineKind::Gap, EngineKind::GraphMat] {
        let run = result.runs.iter().find(|r| r.engine == kind).unwrap();
        let rate = model.calibrate_rate(&run.output.trace, run.seconds.max(1e-9));
        let chart = OperationChart::build(
            &[(Phase::Run, run.seconds)],
            &run.output.trace,
            &model,
            rate,
            32,
        );
        let nested: f64 = chart.rows.iter().filter(|r| r.depth == 1).map(|r| r.seconds).sum();
        let projected = model.project(&run.output.trace, rate, 32).total_s;
        assert!((nested - projected).abs() < 1e-9, "{}", kind.name());
    }
    // GraphMat's chart shows serial overhead; GAP's does not.
    let gm = result.runs.iter().find(|r| r.engine == EngineKind::GraphMat).unwrap();
    assert!(gm.output.trace.serial_fraction() > 0.0);
}

#[test]
fn graph500_official_block_from_harness_times() {
    let ds = dataset();
    let cfg = ExperimentConfig {
        engines: vec![EngineKind::Graph500],
        algorithms: vec![Algorithm::Bfs],
        max_roots: Some(4),
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);
    let times = result.run_times(EngineKind::Graph500, Algorithm::Bfs);
    let construct = result.construct_times(EngineKind::Graph500)[0];
    let stats = TepsStats::from_times(ds.raw.num_edges() as u64, &times);
    let block = stats.official_output(8, 8, construct, &times);
    assert!(block.contains("NBFS:                           4"));
    assert!(block.contains("harmonic_mean_TEPS:"));
    assert!(stats.harmonic_mean > 0.0);
}

#[test]
fn thread_sweep_keeps_results_deterministic() {
    let ds = dataset();
    let cfg = ExperimentConfig {
        engines: vec![EngineKind::Gap, EngineKind::GraphMat],
        algorithms: vec![Algorithm::Sssp],
        max_roots: Some(1),
        ..ExperimentConfig::new()
    };
    let result = run_thread_sweep(&cfg, &ds, &[1, 3]);
    // Same engine, same root, different thread count: identical distances.
    for kind in [EngineKind::Gap, EngineKind::GraphMat] {
        let dists: Vec<_> = result
            .runs
            .iter()
            .filter(|r| r.engine == kind)
            .map(|r| match &r.output.result {
                AlgorithmResult::Distances(d) => d.clone(),
                _ => panic!(),
            })
            .collect();
        assert_eq!(dists.len(), 2);
        for v in 0..dists[0].len() {
            let (a, b) = (dists[0][v], dists[1][v]);
            assert!(
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-4,
                "{} v{v}: {a} vs {b}",
                kind.name()
            );
        }
    }
}

#[test]
fn power_sensors_agree_and_wattprof_adds_resolution() {
    let ds = dataset();
    let cfg = ExperimentConfig {
        engines: vec![EngineKind::GraphMat],
        algorithms: vec![Algorithm::PageRank],
        max_roots: Some(1),
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);
    let run = &result.runs[0];
    let model = MachineModel::paper_machine();
    let rate = model.calibrate_rate(&run.output.trace, run.seconds.max(1e-9));
    let rapl = RaplSensor.measure(&model, &run.output.trace, rate, 32);
    let wp = WattProfSensor { sample_hz: 1e8 };
    let wp_rep = wp.measure(&model, &run.output.trace, rate, 32);
    assert!((rapl.total_j() - wp_rep.total_j()).abs() / rapl.total_j() < 0.1);
    let series = wp.sample_series(&model, &run.output.trace, rate, 32);
    // Fine-grained series has at least one sample per trace region.
    assert!(series.len() >= run.output.trace.records.len());
}
