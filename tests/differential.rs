//! Registry-driven differential suite: every engine the registry lists for
//! an algorithm must produce a result equivalent to the sequential oracle
//! on the same homogenized graphs — one seeded Kronecker graph and one
//! seeded uniform graph per algorithm.
//!
//! Unlike `cross_engine.rs` (which pins the engine lists from the paper's
//! figures), this suite asks [`engines_supporting`] at runtime, so a new
//! engine or a support-matrix change is covered automatically. The checks
//! per algorithm: BFS levels must equal the oracle's and the parent array
//! must pass Graph500-style tree validation; SSSP must match Dijkstra and
//! pass the per-edge triangle-inequality check; PageRank must agree both
//! per-vertex and in L1; WCC labels must match exactly; LCC coefficients
//! must match to 1e-9. The `#[should_panic]` case feeds a deliberately
//! corrupted BFS tree through the same checker to prove the suite can
//! actually fail.
//!
//! The suite also hosts the raw-speed SSSP kernel wall: every
//! [`SsspKernel`] on every [`GraphSpec`] family (including the adversarial
//! families built to break naive shortest-path solvers) at thread counts
//! {1, 2, 4, 8}, checked against the Dijkstra oracle.

use epg::graph::{oracle, validate, Csr, VertexId, NO_VERTEX};
use epg::harness::registry::engines_supporting;
use epg::prelude::*;

/// One Kronecker and one uniform graph, both weighted (SSSP runs on unit
/// weights when unweighted, so weighted is the stricter input).
fn datasets() -> Vec<Dataset> {
    vec![
        Dataset::from_spec(&GraphSpec::Kronecker { scale: 8, edge_factor: 8, weighted: true }, 77),
        Dataset::from_spec(
            &GraphSpec::Uniform { num_vertices: 300, num_edges: 2400, weighted: true },
            78,
        ),
    ]
}

fn engine_on(kind: EngineKind, ds: &Dataset, pool: &ThreadPool) -> Box<dyn Engine> {
    let mut e = kind.create();
    e.load_edge_list(ds.edges_for(kind));
    e.construct(pool);
    e
}

/// Panics unless `parent`/`level` form a valid BFS tree matching the
/// oracle. Shared by the positive sweep and the corruption case below.
fn check_bfs(name: &str, csr: &Csr, root: VertexId, parent: &[VertexId], level: &[u32]) {
    let want = oracle::bfs(csr, root);
    assert_eq!(level, want.level, "{name}: BFS levels diverge from oracle");
    validate::validate_bfs_tree(csr, root, parent)
        .unwrap_or_else(|e| panic!("{name}: invalid BFS tree: {e}"));
}

#[test]
fn bfs_matches_oracle_on_every_registry_engine() {
    let pool = ThreadPool::new(3);
    for ds in datasets() {
        let csr = Csr::from_edge_list(&ds.symmetric);
        let root = ds.roots[0];
        for kind in engines_supporting(Algorithm::Bfs) {
            let mut e = engine_on(kind, &ds, &pool);
            let out = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(root)));
            let AlgorithmResult::BfsTree { parent, level } = out.result else {
                panic!("{}: wrong result kind", kind.name())
            };
            check_bfs(kind.name(), &csr, root, &parent, &level);
        }
    }
}

#[test]
fn sssp_matches_dijkstra_on_every_registry_engine() {
    let pool = ThreadPool::new(3);
    for ds in datasets() {
        let csr = Csr::from_edge_list(&ds.symmetric);
        let root = ds.roots[1];
        let want = oracle::dijkstra(&csr, root);
        for kind in engines_supporting(Algorithm::Sssp) {
            let mut e = engine_on(kind, &ds, &pool);
            let out = e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(root)));
            let AlgorithmResult::Distances(d) = out.result else {
                panic!("{}: wrong result kind", kind.name())
            };
            for v in 0..want.len() {
                if want[v].is_infinite() {
                    assert!(d[v].is_infinite(), "{} vertex {v} should be unreachable", kind.name());
                } else {
                    assert!(
                        (d[v] - want[v]).abs() < 1e-3,
                        "{} vertex {v}: {} vs {}",
                        kind.name(),
                        d[v],
                        want[v]
                    );
                }
            }
            validate::validate_sssp_distances(&csr, root, &d)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        }
    }
}

#[test]
fn pagerank_agrees_per_vertex_and_in_l1_on_every_registry_engine() {
    let pool = ThreadPool::new(2);
    for ds in datasets() {
        let csr = Csr::from_edge_list(&ds.symmetric);
        let (want, _) = oracle::pagerank(&csr, 6e-8, 300);
        for kind in engines_supporting(Algorithm::PageRank) {
            let mut e = engine_on(kind, &ds, &pool);
            let mut params = RunParams::new(&pool, None);
            params.stopping = Some(StoppingCriterion::paper_default());
            let out = e.run(Algorithm::PageRank, &params);
            let AlgorithmResult::Ranks { ranks, .. } = out.result else {
                panic!("{}: wrong result kind", kind.name())
            };
            let l1: f64 = ranks.iter().zip(&want).map(|(a, b)| (a - b).abs()).sum();
            assert!(l1 < 1e-3, "{}: PageRank L1 distance to oracle = {l1}", kind.name());
            for v in 0..want.len() {
                assert!(
                    (ranks[v] - want[v]).abs() < 1e-5,
                    "{} vertex {v}: {} vs {}",
                    kind.name(),
                    ranks[v],
                    want[v]
                );
            }
        }
    }
}

#[test]
fn wcc_matches_oracle_on_every_registry_engine() {
    let pool = ThreadPool::new(2);
    for ds in datasets() {
        let csr = Csr::from_edge_list(&ds.symmetric);
        let want = oracle::wcc(&csr);
        for kind in engines_supporting(Algorithm::Wcc) {
            let mut e = engine_on(kind, &ds, &pool);
            let out = e.run(Algorithm::Wcc, &RunParams::new(&pool, None));
            let AlgorithmResult::Components(c) = out.result else {
                panic!("{}: wrong result kind", kind.name())
            };
            assert_eq!(c, want, "{}: WCC labels diverge", kind.name());
        }
    }
}

#[test]
fn lcc_matches_oracle_on_every_registry_engine() {
    let pool = ThreadPool::new(2);
    for ds in datasets() {
        let csr = Csr::from_edge_list(&ds.symmetric);
        let want = oracle::lcc(&csr);
        for kind in engines_supporting(Algorithm::Lcc) {
            let mut e = engine_on(kind, &ds, &pool);
            let out = e.run(Algorithm::Lcc, &RunParams::new(&pool, None));
            let AlgorithmResult::Coefficients(c) = out.result else {
                panic!("{}: wrong result kind", kind.name())
            };
            for v in 0..want.len() {
                assert!(
                    (c[v] - want[v]).abs() < 1e-9,
                    "{} LCC vertex {v}: {} vs {}",
                    kind.name(),
                    c[v],
                    want[v]
                );
            }
        }
    }
}

/// The raw-speed SSSP kernel wall: every kernel in [`SsspKernel::ALL`] runs
/// on every [`GraphSpec`] family (one corpus member per family, adversarial
/// families included) at thread counts {1, 2, 4, 8}, and each result is
/// checked against the sequential Dijkstra oracle on the same homogenized
/// graph. The label-setting kernels (radix, bmssp) compute the same
/// fold-left path sums Dijkstra does, so they must match the oracle
/// *bit-exactly*; Δ-stepping may re-relax in a different order and gets a
/// small absolute tolerance. Coverage is registry-driven on both axes:
/// adding a kernel variant or a `GraphSpec` family without wiring it into
/// `SsspKernel::ALL` / `GraphSpec::test_corpus` fails here.
#[test]
fn every_sssp_kernel_matches_dijkstra_on_every_family() {
    let corpus = GraphSpec::test_corpus();
    {
        let mut got: Vec<&str> = corpus.iter().map(|s| s.family()).collect();
        got.sort_unstable();
        let mut want = GraphSpec::FAMILIES.to_vec();
        want.sort_unstable();
        assert_eq!(got, want, "test corpus must cover every family exactly once");
    }
    for (i, spec) in corpus.iter().enumerate() {
        let ds = Dataset::from_spec(spec, 90 + i as u64);
        let csr = Csr::from_edge_list(&ds.symmetric);
        let root = ds.roots[0];
        let want = oracle::dijkstra(&csr, root);
        for threads in [1usize, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            for kernel in SsspKernel::ALL {
                let mut e = EngineKind::Gap.create_with_sssp_kernel(Some(kernel));
                e.load_edge_list(ds.edges_for(EngineKind::Gap));
                e.construct(&pool);
                let out = e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(root)));
                let AlgorithmResult::Distances(d) = out.result else {
                    panic!("{}/{}: wrong result kind", spec.name(), kernel.name())
                };
                assert_eq!(d.len(), want.len(), "{}/{}", spec.name(), kernel.name());
                for v in 0..want.len() {
                    let ok = if kernel == SsspKernel::DeltaStepping {
                        (d[v].is_infinite() && want[v].is_infinite())
                            || (d[v] - want[v]).abs() < 1e-3
                    } else {
                        d[v].to_bits() == want[v].to_bits()
                    };
                    assert!(
                        ok,
                        "{} kernel={} t={threads} vertex {v}: {} vs oracle {}",
                        spec.name(),
                        kernel.name(),
                        d[v],
                        want[v]
                    );
                }
                validate::validate_sssp_distances(&csr, root, &d)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", spec.name(), kernel.name()));
            }
        }
    }
}

/// The differential checker must reject a broken result, not just accept
/// everything: corrupt one tree edge of a correct BFS run and feed it back
/// through the exact check the positive sweep uses.
#[test]
#[should_panic(expected = "invalid BFS tree")]
fn corrupted_bfs_parent_is_caught() {
    let ds = &datasets()[0];
    let pool = ThreadPool::new(2);
    let csr = Csr::from_edge_list(&ds.symmetric);
    let root = ds.roots[0];
    let mut e = engine_on(EngineKind::Gap, ds, &pool);
    let out = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(root)));
    let AlgorithmResult::BfsTree { mut parent, level } = out.result else { panic!() };
    // Point a reached non-root vertex at itself: a parent cycle no valid
    // BFS tree can contain.
    let victim = (0..parent.len())
        .find(|&v| v as VertexId != root && parent[v] != NO_VERTEX)
        .expect("some reached vertex");
    parent[victim] = victim as VertexId;
    check_bfs("corrupted", &csr, root, &parent, &level);
}
