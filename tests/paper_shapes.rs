//! Qualitative paper-shape assertions — the findings the paper reports
//! must emerge from our engines' *mechanisms*, not from hard-coded
//! constants. Shapes are asserted on counters, traces, and model output
//! (deterministic), not on raw wall time (noisy on shared CI machines).

use epg::prelude::*;

fn kron(scale: u32, weighted: bool, seed: u64) -> Dataset {
    Dataset::from_spec(&GraphSpec::Kronecker { scale, edge_factor: 16, weighted }, seed)
}

/// §IV-C: GAP's direction-optimizing BFS examines far fewer edges than a
/// pure top-down BFS on a low-diameter Kronecker graph — the mechanism
/// behind its Fig. 2 lead.
#[test]
fn direction_optimization_cuts_edge_traversals() {
    let ds = kron(10, false, 4);
    let pool = ThreadPool::new(2);
    let root = Some(ds.roots[0]);

    let mut gap = EngineKind::Gap.create();
    gap.load_edge_list(ds.edges_for(EngineKind::Gap));
    gap.construct(&pool);
    let opt = gap.run(Algorithm::Bfs, &RunParams::new(&pool, root));

    let mut g500 = EngineKind::Graph500.create();
    g500.load_edge_list(ds.edges_for(EngineKind::Graph500));
    g500.construct(&pool);
    let topdown = g500.run(Algorithm::Bfs, &RunParams::new(&pool, root));

    assert!(
        opt.counters.edges_traversed * 2 < topdown.counters.edges_traversed,
        "direction-optimizing BFS examined {} edges vs top-down {}",
        opt.counters.edges_traversed,
        topdown.counters.edges_traversed
    );
}

/// §IV-A / Fig. 4: GraphMat's native "no vertex changes" stopping
/// criterion needs more iterations than the homogenized L1 criterion used
/// by the other engines.
#[test]
fn graphmat_native_pr_iterates_longest() {
    let ds = kron(9, false, 5);
    let cfg = ExperimentConfig {
        algorithms: vec![Algorithm::PageRank],
        max_roots: Some(1),
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);
    let gm = result.pr_iterations(EngineKind::GraphMat)[0];
    for other in [EngineKind::Gap, EngineKind::GraphBig, EngineKind::PowerGraph] {
        let it = result.pr_iterations(other)[0];
        assert!(
            gm >= it,
            "GraphMat ({gm}) should iterate at least as long as {} ({it})",
            other.name()
        );
    }
}

/// §IV-C: PowerGraph's vertex-cut replication factor grows with density —
/// dense dota-league-like graphs replicate hubs widely, and every apply
/// pays mirror synchronization proportional to it.
#[test]
fn powergraph_replication_grows_with_density() {
    use epg::powergraph::partition::PartitionedGraph;
    let sparse = Dataset::from_spec(&GraphSpec::CitPatents { scale_div: 4096 }, 6);
    let dense = Dataset::from_spec(&GraphSpec::DotaLeague { num_vertices: 900, avg_degree: 90 }, 6);
    let ps = PartitionedGraph::build(&sparse.symmetric, 8);
    let pd = PartitionedGraph::build(&dense.symmetric, 8);
    assert!(
        pd.replication_factor() > ps.replication_factor(),
        "dense rf {} vs sparse rf {}",
        pd.replication_factor(),
        ps.replication_factor()
    );
}

/// §IV-C: GraphMat's SpMV machinery carries per-iteration serial overhead
/// (the accumulator merge) that CSR engines do not pay — "the overhead of
/// the sparse matrix operations" on small graphs.
#[test]
fn graphmat_traces_carry_serial_overhead() {
    let ds = kron(9, false, 8);
    let pool = ThreadPool::new(2);
    let mut gm = EngineKind::GraphMat.create();
    gm.load_edge_list(ds.edges_for(EngineKind::GraphMat));
    gm.construct(&pool);
    let out = gm.run(Algorithm::Bfs, &RunParams::new(&pool, Some(ds.roots[0])));
    assert!(out.trace.serial_fraction() > 0.0, "no serial overhead recorded");

    let mut gap = EngineKind::Gap.create();
    gap.load_edge_list(ds.edges_for(EngineKind::Gap));
    gap.construct(&pool);
    let gap_out = gap.run(Algorithm::Bfs, &RunParams::new(&pool, Some(ds.roots[0])));
    assert!(gap_out.trace.serial_fraction() < out.trace.serial_fraction());
}

/// §IV-B / Figs. 5-6: projected strong scaling is "generally poor" —
/// nobody is near-linear at 72 threads, efficiency decays monotonically at
/// high thread counts, and GAP is the most scalable BFS engine.
#[test]
fn projected_scaling_shapes_match_figures_5_and_6() {
    let ds = kron(11, false, 9);
    let cfg = ExperimentConfig {
        algorithms: vec![Algorithm::Bfs],
        max_roots: Some(1),
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);
    let model = MachineModel::paper_machine();
    let threads = [1, 2, 4, 8, 16, 32, 64, 72];

    // One nominal rate for every engine, in the ballpark the paper machine
    // calibrates to. Calibrating from this run's wall time would feed
    // shared-CI timing noise into the curve *shape* and flip the
    // cross-engine comparisons below; the shapes under test are properties
    // of the traces, which are deterministic.
    let rate = 5e8;

    let mut speedup72 = Vec::new();
    for kind in [EngineKind::Gap, EngineKind::Graph500, EngineKind::GraphBig, EngineKind::GraphMat]
    {
        let run = result.runs.iter().find(|r| r.engine == kind).unwrap();
        let curve = model.speedup_curve(&run.output.trace, rate, &threads);
        let s72 = curve.last().unwrap().1;
        assert!(s72 < 40.0, "{} scales implausibly well: {s72}", kind.name());
        // Efficiency at 72 threads is well below ideal ("generally poor
        // scaling", §IV-B).
        assert!(s72 / 72.0 < 0.6, "{} efficiency too high", kind.name());
        // Mild dips are allowed — once barrier cost outgrows the compute
        // gain, adding threads hurts (the model's analog of the paper's
        // Graph500 2-thread dip) — but collapse is not.
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.5, "{} speedup collapsed: {curve:?}", kind.name());
        }
        speedup72.push((kind, s72));
    }
    // "GraphMat close behind [GAP] for larger threads and even slightly
    // beating GAP at 72 threads" (§IV-B): GraphMat's 72-thread speedup is
    // at least GAP's.
    let gap = speedup72.iter().find(|(k, _)| *k == EngineKind::Gap).unwrap().1;
    let gm = speedup72.iter().find(|(k, _)| *k == EngineKind::GraphMat).unwrap().1;
    assert!(gm >= gap * 0.9, "GraphMat ({gm}) should rival GAP ({gap}) at 72T");
    // GraphBIG sits at the bottom of Fig. 5's curves.
    let gb = speedup72.iter().find(|(k, _)| *k == EngineKind::GraphBig).unwrap().1;
    assert!(gb <= gm, "GraphBIG ({gb}) should not out-scale GraphMat ({gm})");
}

/// Fig. 9 / Table III: the energy model reproduces "the fastest code is
/// also the most energy efficient" — energy per root tracks kernel time
/// across engines.
#[test]
fn energy_tracks_runtime_across_engines() {
    let ds = kron(10, false, 10);
    let cfg = ExperimentConfig {
        algorithms: vec![Algorithm::Bfs],
        max_roots: Some(1),
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);
    let model = MachineModel::paper_machine();
    let mut pairs = Vec::new();
    for kind in [EngineKind::Gap, EngineKind::Graph500, EngineKind::GraphBig, EngineKind::GraphMat]
    {
        let run = result.runs.iter().find(|r| r.engine == kind).unwrap();
        let rate = model.calibrate_rate(&run.output.trace, run.seconds.max(1e-6));
        let rep = model.energy(&run.output.trace, rate, 32);
        pairs.push((rep.duration_s, rep.total_j()));
    }
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    for w in pairs.windows(2) {
        assert!(w[0].1 <= w[1].1 * 1.05, "faster run used more energy: {:?}", pairs);
    }
}

/// Fig. 8 mechanism: on the dense weighted dota-league stand-in, GraphMat
/// does *relatively* better than on the sparse citation graph — the
/// "sparse matrix operations ... pay off" observation, asserted on work
/// per edge rather than wall time.
#[test]
fn graphmat_overhead_amortizes_on_dense_graphs() {
    let pool = ThreadPool::new(2);
    let sparse = Dataset::from_spec(&GraphSpec::CitPatents { scale_div: 4096 }, 3);
    let dense = Dataset::from_spec(&GraphSpec::DotaLeague { num_vertices: 700, avg_degree: 80 }, 3);
    let mut fractions = Vec::new();
    for ds in [&sparse, &dense] {
        let mut gm = EngineKind::GraphMat.create();
        gm.load_edge_list(ds.edges_for(EngineKind::GraphMat));
        gm.construct(&pool);
        let out = gm.run(Algorithm::PageRank, &RunParams::new(&pool, None));
        fractions.push(out.trace.serial_fraction());
    }
    assert!(
        fractions[1] < fractions[0],
        "serial (overhead) fraction should shrink with density: sparse {} vs dense {}",
        fractions[0],
        fractions[1]
    );
}
