#![cfg(feature = "fault-inject")]

//! Supervision-layer integration: deterministic injected faults flow
//! through the runner and come out as classified, DNF-aware results.
//!
//! Runs only with `--features fault-inject`; the injection layer does not
//! exist in default builds, so supervision costs nothing there.

use epg::engine_api::{FaultKind, FaultPlan, FaultyEngine};
use epg::harness::supervise::{supervise_trial, SupervisorConfig, TrialOutcome};
use epg::prelude::*;
use std::time::Duration;

fn dataset() -> Dataset {
    Dataset::from_spec(&GraphSpec::Kronecker { scale: 7, edge_factor: 8, weighted: false }, 9)
}

/// A budget generous enough that un-faulted trials never trip it on a
/// scale-7 graph, yet small enough that the hang test stays fast.
const BUDGET: Duration = Duration::from_millis(400);

fn cfg_with(plans: Vec<(EngineKind, FaultPlan)>) -> ExperimentConfig {
    let mut cfg = ExperimentConfig {
        engines: vec![EngineKind::Gap],
        algorithms: vec![Algorithm::Bfs],
        max_roots: Some(4),
        ..ExperimentConfig::new()
    };
    cfg.supervisor.trial_budget = Some(BUDGET);
    cfg.supervisor.backoff = Duration::from_micros(50);
    cfg.fault_plans = plans;
    cfg
}

#[test]
fn injected_hang_times_out_with_partial_counters() {
    let ds = dataset();
    // Trial indices count every run-call including retries; fault the 2nd.
    let plan = FaultPlan::new().with_fault(1, FaultKind::Hang);
    let cfg = cfg_with(vec![(EngineKind::Gap, plan)]);
    let t0 = std::time::Instant::now();
    let result = run_experiment(&cfg, &ds);
    let wall = t0.elapsed();

    let outcomes: Vec<TrialOutcome> =
        result.records.iter().filter(|r| r.phase == Phase::Run).map(|r| r.outcome).collect();
    assert_eq!(outcomes.len(), 4);
    assert_eq!(outcomes[1], TrialOutcome::Timeout);
    assert_eq!(outcomes.iter().filter(|&&o| o == TrialOutcome::Ok).count(), 3);
    // The timed-out row carries its censoring time (>= most of the budget,
    // reaped well within 2x of it) — the acceptance bound for the layer.
    let timeout_row = result
        .records
        .iter()
        .find(|r| r.outcome == TrialOutcome::Timeout)
        .expect("timeout row present");
    assert!(timeout_row.seconds >= BUDGET.as_secs_f64() * 0.5);
    assert!(
        timeout_row.seconds < 2.0 * BUDGET.as_secs_f64(),
        "hung trial took {:.3}s against a {:?} budget",
        timeout_row.seconds,
        BUDGET
    );
    assert!(wall < Duration::from_secs(30), "experiment wedged behind the hang: {wall:?}");
    // DNF rows are excluded from the performance samples but counted.
    assert_eq!(result.run_times(EngineKind::Gap, Algorithm::Bfs).len(), 3);
    assert_eq!(result.dnf_count(EngineKind::Gap, Algorithm::Bfs), 1);
    // The timeout row reaches the CSV through the outcome column.
    let csv = result.to_csv();
    let rows = epg::harness::csvio::read_all(csv.as_bytes()).unwrap();
    let outcome_col = rows[0].iter().position(|c| c == "outcome").expect("outcome column present");
    assert!(rows.iter().any(|r| r.get(outcome_col).is_some_and(|c| c == "timeout")));
}

#[test]
fn injected_panic_is_retried_to_success() {
    let ds = dataset();
    // Fault only the first run-call: the supervisor's retry (run-call 1)
    // is clean, so the trial still lands as Ok after 2 attempts.
    let plan = FaultPlan::new().with_fault(0, FaultKind::Panic);
    let cfg = cfg_with(vec![(EngineKind::Gap, plan)]);
    let result = run_experiment(&cfg, &ds);
    let run_rows: Vec<_> = result.records.iter().filter(|r| r.phase == Phase::Run).collect();
    assert_eq!(run_rows.len(), 4);
    assert!(run_rows.iter().all(|r| r.outcome == TrialOutcome::Ok));
    assert_eq!(result.run_times(EngineKind::Gap, Algorithm::Bfs).len(), 4);
    assert_eq!(result.dnf_count(EngineKind::Gap, Algorithm::Bfs), 0);
}

#[test]
fn consecutive_failures_quarantine_the_cell() {
    let ds = dataset();
    // Panic on every run-call: with retries disabled, each trial fails,
    // and after `quarantine_after` consecutive Panicked trials the
    // remaining reps are recorded as Quarantined without ever running.
    let mut plan = FaultPlan::new();
    for t in 0..64 {
        plan = plan.with_fault(t, FaultKind::Panic);
    }
    let mut cfg = cfg_with(vec![(EngineKind::Gap, plan)]);
    cfg.supervisor.quarantine_after = 2;
    cfg.supervisor.max_retries = 0;
    let result = run_experiment(&cfg, &ds);
    let outcomes: Vec<TrialOutcome> =
        result.records.iter().filter(|r| r.phase == Phase::Run).map(|r| r.outcome).collect();
    assert_eq!(
        outcomes,
        vec![
            TrialOutcome::Panicked,
            TrialOutcome::Panicked,
            TrialOutcome::Quarantined,
            TrialOutcome::Quarantined,
        ]
    );
    // Nothing completed: the report renders an explicit DNF cell and a
    // trial-outcomes section.
    assert!(result.run_times(EngineKind::Gap, Algorithm::Bfs).is_empty());
    let md = epg::harness::report::render(&result, &ds, 32);
    assert!(md.contains("DNF (n=4, dnf=4)"), "report:\n{md}");
    assert!(md.contains("## Trial outcomes"));
    assert!(md.contains("- panicked: 2"));
    assert!(md.contains("- quarantined: 2"));
}

#[test]
fn seeded_plans_make_failures_reproducible() {
    let ds = dataset();
    let run = |seed: u64| {
        let plan = FaultPlan::seeded(seed, 16, 3);
        let cfg = cfg_with(vec![(EngineKind::Gap, plan)]);
        run_experiment(&cfg, &ds)
            .records
            .iter()
            .filter(|r| r.phase == Phase::Run)
            .map(|r| r.outcome)
            .collect::<Vec<_>>()
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "same seed, same outcome sequence");
}

#[test]
fn wrong_result_injection_is_caught_by_a_verifier() {
    // Exercised at the supervise_trial level, where an oracle is
    // available: the corrupted first attempt is rejected and the retry
    // (not faulted) passes verification.
    let ds = dataset();
    let pool = ThreadPool::new(2);
    let mut engine = FaultyEngine::new(
        EngineKind::Gap.create(),
        FaultPlan::new().with_fault(0, FaultKind::WrongResult),
    );
    engine.load_edge_list(ds.edges_for(EngineKind::Gap));
    engine.construct(&pool);
    let root = ds.roots[0];
    let csr = Csr::from_edge_list(ds.edges_for(EngineKind::Gap));
    let want = epg::graph::oracle::bfs(&csr, root).level;
    let verify = |out: &RunOutput| match &out.result {
        AlgorithmResult::BfsTree { level, .. } => *level == want,
        _ => false,
    };
    let cfg = SupervisorConfig { backoff: Duration::from_micros(50), ..Default::default() };
    let params = RunParams::new(&pool, Some(root));
    let report =
        supervise_trial(&pool, &cfg, || engine.run(Algorithm::Bfs, &params), Some(&verify));
    assert_eq!(report.outcome, TrialOutcome::Ok);
    assert_eq!(report.attempts, 2, "first attempt corrupted, retry clean");
}

#[cfg(feature = "trace")]
#[test]
fn trial_outcome_reaches_the_trace_stream() {
    let ds = dataset();
    // Hang the very first run-call: the traced trial itself times out.
    let plan = FaultPlan::new().with_fault(0, FaultKind::Hang);
    let mut cfg = cfg_with(vec![(EngineKind::Gap, plan)]);
    cfg.max_roots = Some(1);
    cfg.supervisor.quarantine_after = 0; // keep scheduling despite failures
    let result = run_experiment(&cfg, &ds);
    assert_eq!(result.traces.len(), 1);
    let bundle = &result.traces[0];
    let outcome_ev = bundle
        .events
        .iter()
        .find_map(|e| match e {
            TraceEvent::TrialOutcome { outcome, attempts } => Some((outcome.clone(), *attempts)),
            _ => None,
        })
        .expect("TrialOutcome event recorded");
    assert_eq!(outcome_ev, ("timeout".to_string(), 1));
    // And the summarizer renders it.
    let jsonl = epg::trace::jsonl::render_jsonl(&bundle.events);
    let summary = epg::harness::tracefile::summarize(&jsonl);
    assert!(summary.contains("trial outcomes"), "summary:\n{summary}");
    assert!(summary.contains("timeout"));
}
