//! End-to-end pipeline integration: all five phases against a temp
//! directory, the Graphalytics comparator, and the machine-model path from
//! measured traces to projected scalability and energy.

use epg::harness::csvio;
use epg::harness::graphalytics::{self, GRAPHALYTICS_ENGINES, TABLE1_ALGOS};
use epg::harness::pipeline::Pipeline;
use epg::prelude::*;

fn temp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("epg_it_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn five_phases_produce_csv_plots_and_parsable_logs() {
    let dir = temp("five_phases");
    let p = Pipeline::new(dir.clone()).unwrap();

    // Phase 1.
    let report = p.setup_report();
    for k in EngineKind::ALL {
        assert!(report.contains(k.name()));
    }

    // Phases 2-5.
    let spec = GraphSpec::Kronecker { scale: 7, edge_factor: 8, weighted: true };
    let written = p.run_all(&spec, 5, 2, Some(3)).unwrap();
    assert!(written.iter().any(|w| w.ends_with("results.csv")));

    // The CSV has rows for every engine.
    let rows = csvio::read_all(std::fs::File::open(dir.join("results.csv")).unwrap()).unwrap();
    for k in EngineKind::ALL {
        assert!(rows.iter().any(|r| r[0] == k.name()), "no CSV rows for {}", k.name());
    }

    // Plots exist and are valid-ish SVG.
    for f in ["bfs_time.svg", "sssp_time.svg", "pr_time.svg", "construction_time.svg"] {
        let path = dir.join("plots").join(f);
        let content = std::fs::read_to_string(&path).unwrap_or_else(|_| panic!("{f} missing"));
        assert!(content.starts_with("<svg"));
        assert!(content.ends_with("</svg>\n"));
    }

    // Phase-3 logs re-parse through each engine's dialect, and the parsed
    // run times appear in the CSV (the AWK phase is consistent).
    let logs = p.reparse_logs().unwrap();
    assert!(logs.len() >= 5);
    for (name, entries) in &logs {
        assert!(entries.iter().any(|e| e.phase == Phase::Run), "log {name} has no run time");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn graphalytics_comparator_reproduces_table1_structure() {
    // Weighted dense stand-in (dota-league-like) and an unweighted
    // citation stand-in (cit-Patents-like).
    let dota = Dataset::from_spec(&GraphSpec::DotaLeague { num_vertices: 400, avg_degree: 40 }, 2);
    let cit = Dataset::from_spec(&GraphSpec::CitPatents { scale_div: 8192 }, 2);

    let mut cells = graphalytics::run_graphalytics(&GRAPHALYTICS_ENGINES, &TABLE1_ALGOS, &dota, 2);
    cells.extend(graphalytics::run_graphalytics(&GRAPHALYTICS_ENGINES, &TABLE1_ALGOS, &cit, 2));

    // Structure of Table I:
    for c in &cells {
        let is_na = c.reported_seconds.is_none();
        let expect_na = (c.engine == EngineKind::PowerGraph && c.algorithm == Algorithm::Bfs)
            || (c.algorithm == Algorithm::Sssp && c.dataset.starts_with("cit-Patents"));
        assert_eq!(is_na, expect_na, "{c:?}");
    }

    // The pitfall: GraphMat's reported time strictly includes its read
    // time; GraphBIG's does not include any read time.
    let gm = cells
        .iter()
        .find(|c| c.engine == EngineKind::GraphMat && c.algorithm == Algorithm::PageRank)
        .unwrap();
    let p = gm.true_phases.unwrap();
    assert!(gm.reported_seconds.unwrap() >= p.read_s + p.run_s);
    let gb = cells
        .iter()
        .find(|c| c.engine == EngineKind::GraphBig && c.algorithm == Algorithm::PageRank)
        .unwrap();
    let pb = gb.true_phases.unwrap();
    assert!(gb.reported_seconds.unwrap() < pb.read_s + pb.run_s + pb.output_s);

    // Fig. 7: HTML reports per system.
    for k in GRAPHALYTICS_ENGINES {
        let html = graphalytics::html_report(k, &cells);
        assert!(html.contains(k.name()));
        assert!(html.matches("<tr>").count() >= 3); // header + 2 datasets
    }

    // Table I text rendering contains N/A cells and numbers.
    let table = graphalytics::format_table(
        &cells,
        &GRAPHALYTICS_ENGINES,
        &[dota.name.clone(), cit.name.clone()],
    );
    assert!(table.contains("N/A"));
    assert!(table.contains("GraphMat"));
}

#[test]
fn machine_model_consumes_runner_traces() {
    let ds =
        Dataset::from_spec(&GraphSpec::Kronecker { scale: 8, edge_factor: 8, weighted: false }, 13);
    let cfg = ExperimentConfig {
        algorithms: vec![Algorithm::Bfs],
        max_roots: Some(1),
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);
    let model = MachineModel::paper_machine();
    for kind in [EngineKind::Gap, EngineKind::Graph500, EngineKind::GraphBig, EngineKind::GraphMat]
    {
        let run = result
            .runs
            .iter()
            .find(|r| r.engine == kind)
            .unwrap_or_else(|| panic!("no run for {}", kind.name()));
        let rate = model.calibrate_rate(&run.output.trace, run.seconds.max(1e-6));
        let speedup = model.speedup_curve(&run.output.trace, rate, &[1, 2, 4, 8, 16, 32, 64, 72]);
        assert!((speedup[0].1 - 1.0).abs() < 1e-9);
        // Speedup stays positive and bounded.
        for &(n, s) in &speedup {
            assert!(s > 0.0 && s <= n as f64 + 1e-9, "{}: {s} at {n}", kind.name());
        }
        // Energy model produces sane watts.
        let rep = model.energy(&run.output.trace, rate, 32);
        assert!(rep.avg_cpu_w >= model.spec.cpu_idle_w);
        assert!(rep.total_j() > 0.0);
    }
}

#[test]
fn snap_ingestion_to_full_run() {
    // "any network in the SNAP data format can be used" (§III-B).
    let dir = temp("snap_ingest");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mygraph.snap");
    let el = epg::generator::uniform::generate(300, 2500, true, 77);
    epg::graph::snap::write_snap_file(&el, "mygraph", &path).unwrap();

    let ds = Dataset::from_snap_file(&path, 3).unwrap();
    assert_eq!(ds.name, "mygraph");
    assert!(ds.weighted);
    let cfg = ExperimentConfig { max_roots: Some(2), ..ExperimentConfig::new() };
    let result = run_experiment(&cfg, &ds);
    assert!(!result.run_times(EngineKind::Gap, Algorithm::Sssp).is_empty());
    assert!(!result.run_times(EngineKind::PowerGraph, Algorithm::PageRank).is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
