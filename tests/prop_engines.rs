//! Property-based cross-engine tests: on arbitrary random graphs, every
//! engine must agree with the sequential oracles (and therefore with each
//! other). This is the heavy-duty correctness net behind the fairness
//! claims — a comparison is only fair if everyone computes the same thing.

use epg::graph::{oracle, validate};
use epg::prelude::*;
use proptest::prelude::*;

/// Arbitrary homogenized dataset: random simple symmetric weighted graph.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..60, 1usize..300, 0u64..1000).prop_map(|(n, m, seed)| {
        let el = epg::generator::uniform::generate(n, m, true, seed);
        Dataset::from_edge_list(format!("prop_{n}_{m}_{seed}"), el, seed)
    })
}

fn root_of(ds: &Dataset) -> Option<VertexId> {
    ds.roots.first().copied()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_bfs_engines_agree_with_oracle(ds in arb_dataset()) {
        let Some(root) = root_of(&ds) else { return Ok(()); };
        let pool = ThreadPool::new(2);
        let csr = Csr::from_edge_list(&ds.symmetric);
        let want = oracle::bfs(&csr, root);
        for kind in [EngineKind::Gap, EngineKind::Graph500, EngineKind::GraphBig, EngineKind::GraphMat] {
            let mut e = kind.create();
            e.load_edge_list(ds.edges_for(kind));
            e.construct(&pool);
            let out = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(root)));
            let AlgorithmResult::BfsTree { parent, level } = out.result else { panic!() };
            prop_assert_eq!(&level, &want.level, "{} levels", kind.name());
            prop_assert!(validate::validate_bfs_tree(&csr, root, &parent).is_ok(), "{}", kind.name());
        }
    }

    #[test]
    fn all_sssp_engines_agree_with_dijkstra(ds in arb_dataset()) {
        let Some(root) = root_of(&ds) else { return Ok(()); };
        let pool = ThreadPool::new(2);
        let csr = Csr::from_edge_list(&ds.symmetric);
        let want = oracle::dijkstra(&csr, root);
        for kind in [EngineKind::Gap, EngineKind::GraphBig, EngineKind::GraphMat, EngineKind::PowerGraph] {
            let mut e = kind.create();
            e.load_edge_list(ds.edges_for(kind));
            e.construct(&pool);
            let out = e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(root)));
            let AlgorithmResult::Distances(d) = out.result else { panic!() };
            for v in 0..want.len() {
                if want[v].is_infinite() {
                    prop_assert!(d[v].is_infinite(), "{} v{}", kind.name(), v);
                } else {
                    prop_assert!(
                        (d[v] - want[v]).abs() < 1e-3,
                        "{} v{}: {} vs {}", kind.name(), v, d[v], want[v]
                    );
                }
            }
        }
    }

    #[test]
    fn all_pr_engines_agree_under_homogenized_stopping(ds in arb_dataset()) {
        let pool = ThreadPool::new(2);
        let csr = Csr::from_edge_list(&ds.symmetric);
        let (want, _) = oracle::pagerank(&csr, 6e-8, 300);
        for kind in [EngineKind::Gap, EngineKind::GraphBig, EngineKind::GraphMat, EngineKind::PowerGraph] {
            let mut e = kind.create();
            e.load_edge_list(ds.edges_for(kind));
            e.construct(&pool);
            let mut p = RunParams::new(&pool, None);
            p.stopping = Some(StoppingCriterion::paper_default());
            let out = e.run(Algorithm::PageRank, &p);
            let AlgorithmResult::Ranks { ranks, .. } = out.result else { panic!() };
            for v in 0..want.len() {
                prop_assert!(
                    (ranks[v] - want[v]).abs() < 1e-5,
                    "{} v{}: {} vs {}", kind.name(), v, ranks[v], want[v]
                );
            }
        }
    }

    #[test]
    fn triangle_count_engines_agree(ds in arb_dataset()) {
        let pool = ThreadPool::new(2);
        let csr = Csr::from_edge_list(&ds.symmetric);
        let want = oracle::triangle_count(&csr);
        for kind in [EngineKind::Gap, EngineKind::GraphBig, EngineKind::GraphMat, EngineKind::PowerGraph] {
            let mut e = kind.create();
            e.load_edge_list(ds.edges_for(kind));
            e.construct(&pool);
            let out = e.run(Algorithm::TriangleCount, &RunParams::new(&pool, None));
            let AlgorithmResult::Triangles(t) = out.result else { panic!() };
            prop_assert_eq!(t, want, "{}", kind.name());
        }
    }

    #[test]
    fn bc_engines_agree_with_brandes(ds in arb_dataset()) {
        let pool = ThreadPool::new(2);
        let csr = Csr::from_edge_list(&ds.symmetric);
        let want = oracle::betweenness(&csr);
        for kind in [EngineKind::Gap, EngineKind::GraphBig] {
            let mut e = kind.create();
            e.load_edge_list(ds.edges_for(kind));
            e.construct(&pool);
            let out = e.run(Algorithm::Bc, &RunParams::new(&pool, None));
            let AlgorithmResult::Centrality(bc) = out.result else { panic!() };
            for v in 0..want.len() {
                prop_assert!(
                    (bc[v] - want[v]).abs() < 1e-6 * (1.0 + want[v]),
                    "{} v{}: {} vs {}", kind.name(), v, bc[v], want[v]
                );
            }
        }
    }

    #[test]
    fn machine_model_invariants(
        regions in proptest::collection::vec((1u64..1_000_000, 1u64..10_000, 0u64..10_000_000), 1..30),
        threads in 1usize..72,
    ) {
        let mut trace = Trace::default();
        for (work, span, bytes) in regions {
            trace.parallel(work, span, bytes);
        }
        let model = MachineModel::paper_machine();
        let rate = 1e8;
        let t1 = model.project(&trace, rate, 1).total_s;
        let tn = model.project(&trace, rate, threads).total_s;
        // Speedup bounded by thread count; time always positive.
        prop_assert!(tn > 0.0);
        prop_assert!(t1 / tn <= threads as f64 + 1e-9);
        // Energy >= idle * duration, <= max power * duration.
        let rep = model.energy(&trace, rate, threads);
        let spec = &model.spec;
        prop_assert!(rep.cpu_energy_j >= spec.cpu_idle_w * rep.duration_s - 1e-9);
        prop_assert!(rep.cpu_energy_j <= (spec.cpu_idle_w + spec.cpu_dyn_w) * rep.duration_s + 1e-9);
    }
}
