//! Cross-engine agreement: every engine must produce equivalent results on
//! the same homogenized dataset — the correctness half of "comparing
//! fairly". Distances and levels must match the sequential oracles; parent
//! trees must pass Graph500-style validation; ranks must agree within
//! floating-point tolerance.

use epg::graph::{oracle, validate};
use epg::prelude::*;

fn dataset() -> Dataset {
    Dataset::from_spec(&GraphSpec::Kronecker { scale: 9, edge_factor: 8, weighted: true }, 1234)
}

fn engine_on(kind: EngineKind, ds: &Dataset, pool: &ThreadPool) -> Box<dyn Engine> {
    let mut e = kind.create();
    e.load_edge_list(ds.edges_for(kind));
    e.construct(pool);
    e
}

#[test]
fn bfs_levels_agree_across_engines_and_oracle() {
    let ds = dataset();
    let pool = ThreadPool::new(3);
    let csr = Csr::from_edge_list(&ds.symmetric);
    let root = ds.roots[0];
    let want = oracle::bfs(&csr, root);
    for kind in [EngineKind::Gap, EngineKind::Graph500, EngineKind::GraphBig, EngineKind::GraphMat]
    {
        let mut e = engine_on(kind, &ds, &pool);
        let out = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(root)));
        let AlgorithmResult::BfsTree { parent, level } = out.result else { panic!() };
        assert_eq!(level, want.level, "{} levels diverge", kind.name());
        validate::validate_bfs_tree(&csr, root, &parent)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
    }
}

#[test]
fn sssp_distances_agree_across_engines_and_dijkstra() {
    let ds = dataset();
    let pool = ThreadPool::new(3);
    let csr = Csr::from_edge_list(&ds.symmetric);
    let root = ds.roots[1];
    let want = oracle::dijkstra(&csr, root);
    for kind in
        [EngineKind::Gap, EngineKind::GraphBig, EngineKind::GraphMat, EngineKind::PowerGraph]
    {
        let mut e = engine_on(kind, &ds, &pool);
        let out = e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(root)));
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        for v in 0..want.len() {
            if want[v].is_infinite() {
                assert!(d[v].is_infinite(), "{} vertex {v} should be unreachable", kind.name());
            } else {
                assert!(
                    (d[v] - want[v]).abs() < 1e-3,
                    "{} vertex {v}: {} vs {}",
                    kind.name(),
                    d[v],
                    want[v]
                );
            }
        }
        validate::validate_sssp_distances(&csr, root, &d)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
    }
}

#[test]
fn pagerank_ranks_agree_under_homogenized_stopping() {
    let ds = dataset();
    let pool = ThreadPool::new(2);
    let csr = Csr::from_edge_list(&ds.symmetric);
    let (want, _) = oracle::pagerank(&csr, 6e-8, 300);
    for kind in
        [EngineKind::Gap, EngineKind::GraphBig, EngineKind::GraphMat, EngineKind::PowerGraph]
    {
        let mut e = engine_on(kind, &ds, &pool);
        let mut params = RunParams::new(&pool, None);
        params.stopping = Some(StoppingCriterion::paper_default());
        let out = e.run(Algorithm::PageRank, &params);
        let AlgorithmResult::Ranks { ranks, .. } = out.result else { panic!() };
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "{} ranks sum to {sum}", kind.name());
        for v in 0..want.len() {
            assert!(
                (ranks[v] - want[v]).abs() < 1e-5,
                "{} vertex {v}: {} vs {}",
                kind.name(),
                ranks[v],
                want[v]
            );
        }
    }
}

#[test]
fn graphalytics_kernels_agree_across_the_three_systems() {
    let ds = Dataset::from_spec(
        &GraphSpec::Uniform { num_vertices: 250, num_edges: 1800, weighted: false },
        9,
    );
    let pool = ThreadPool::new(2);
    let csr = Csr::from_edge_list(&ds.symmetric);
    let want_cdlp = oracle::cdlp(&csr, 10);
    let want_wcc = oracle::wcc(&csr);
    let want_lcc = oracle::lcc(&csr);
    for kind in [EngineKind::GraphBig, EngineKind::GraphMat, EngineKind::PowerGraph] {
        let mut e = engine_on(kind, &ds, &pool);
        let AlgorithmResult::Labels(l) =
            e.run(Algorithm::Cdlp, &RunParams::new(&pool, None)).result
        else {
            panic!()
        };
        assert_eq!(l, want_cdlp, "{} CDLP diverges", kind.name());
        let AlgorithmResult::Components(c) =
            e.run(Algorithm::Wcc, &RunParams::new(&pool, None)).result
        else {
            panic!()
        };
        assert_eq!(c, want_wcc, "{} WCC diverges", kind.name());
        let AlgorithmResult::Coefficients(lc) =
            e.run(Algorithm::Lcc, &RunParams::new(&pool, None)).result
        else {
            panic!()
        };
        for v in 0..want_lcc.len() {
            assert!(
                (lc[v] - want_lcc[v]).abs() < 1e-9,
                "{} LCC vertex {v}: {} vs {}",
                kind.name(),
                lc[v],
                want_lcc[v]
            );
        }
    }
}

#[test]
fn engines_are_reusable_across_runs() {
    // One loaded graph, many kernels — the 32-roots usage pattern.
    let ds = dataset();
    let pool = ThreadPool::new(2);
    let mut e = engine_on(EngineKind::Gap, &ds, &pool);
    let mut last = None;
    for &root in ds.roots.iter().take(3) {
        let out = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(root)));
        last = Some(out);
    }
    // Re-running the same root reproduces identical levels.
    let again = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(ds.roots[2])));
    let (AlgorithmResult::BfsTree { level: a, .. }, AlgorithmResult::BfsTree { level: b, .. }) =
        (&last.unwrap().result, &again.result)
    else {
        panic!()
    };
    assert_eq!(a, b);
}
