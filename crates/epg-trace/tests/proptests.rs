//! Property tests for the JSONL trace writer/parser: arbitrary event
//! sequences must round-trip exactly, and the parser must survive the
//! corruption real trace files exhibit — interleaved chatter from the
//! engine under test and files truncated mid-line by a killed run —
//! mirroring the dialect-parser hardening in `epg-harness::logs`.

use epg_trace::jsonl::{parse_jsonl, render_event, render_jsonl};
use epg_trace::{Dir, TraceEvent};
use proptest::prelude::*;

/// Printable-ASCII labels, including `"` and `\` so escaping is hit.
fn label() -> impl Strategy<Value = String> {
    "[ -~]{0,16}"
}

fn dir() -> impl Strategy<Value = Dir> {
    prop_oneof![Just(Dir::Push), Just(Dir::Pull), Just(Dir::Hybrid)]
}

fn event() -> BoxedStrategy<TraceEvent> {
    prop_oneof![
        (label(), 0u64..=u64::MAX)
            .prop_map(|(phase, at_ns)| TraceEvent::PhaseStart { phase, at_ns }),
        (label(), 0u64..=u64::MAX).prop_map(|(phase, at_ns)| TraceEvent::PhaseEnd { phase, at_ns }),
        (0u32..=u32::MAX, 0u64..=u64::MAX, dir())
            .prop_map(|(iter, frontier, dir)| TraceEvent::Iteration { iter, frontier, dir }),
        (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX, prop_oneof![Just(true), Just(false)])
            .prop_map(|(work, span, bytes, parallel)| TraceEvent::Region {
                work,
                span,
                bytes,
                parallel
            }),
        (
            label(),
            (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX),
            0u64..=u64::MAX,
            0u32..=u32::MAX
        )
            .prop_map(
                |(region, (edges, vertices, bytes_read), bytes_written, iterations)| {
                    TraceEvent::CountersDelta {
                        region,
                        edges,
                        vertices,
                        bytes_read,
                        bytes_written,
                        iterations,
                    }
                }
            ),
        (0u64..=u64::MAX, 0u32..=u32::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX).prop_map(
            |(region, worker, busy_ns, idle_ns)| TraceEvent::WorkerSpan {
                region,
                worker,
                busy_ns,
                idle_ns
            }
        ),
        (label(), 0u64..=u64::MAX).prop_map(|(label, bytes)| TraceEvent::AllocHwm { label, bytes }),
        (label(), 0u32..=u32::MAX)
            .prop_map(|(outcome, attempts)| TraceEvent::TrialOutcome { outcome, attempts }),
        (label(), label(), 0u64..=u64::MAX, prop_oneof![Just(true), Just(false)]).prop_map(
            |(algo, path, latency_ns, ok)| TraceEvent::Query { algo, path, latency_ns, ok }
        ),
    ]
    .boxed()
}

fn events() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec(event(), 0..24)
}

/// Lowercase words: never blank, never starts with `{`, so it can
/// neither vanish (blank lines are ignored silently) nor parse as an
/// event.
fn chatter_line() -> impl Strategy<Value = String> {
    "[a-z]{1,20}"
}

proptest! {
    #[test]
    fn roundtrip_is_identity(evs in events()) {
        let parsed = parse_jsonl(&render_jsonl(&evs));
        prop_assert_eq!(parsed.events, evs);
        prop_assert_eq!(parsed.skipped, 0);
    }

    #[test]
    fn interleaved_chatter_is_counted_not_parsed(
        evs in events(),
        chatter in proptest::collection::vec(chatter_line(), 1..8),
        seed in 0u64..=u64::MAX,
    ) {
        // Deterministically interleave chatter between event lines.
        let mut lines: Vec<String> = evs.iter().map(render_event).collect();
        let mut s = seed;
        for c in &chatter {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let at = (s >> 33) as usize % (lines.len() + 1);
            lines.insert(at, c.clone());
        }
        let text = lines.join("\n");
        let parsed = parse_jsonl(&text);
        prop_assert_eq!(parsed.events, evs);
        prop_assert_eq!(parsed.skipped, chatter.len());
    }

    #[test]
    fn truncation_yields_a_clean_prefix(
        (text, cut, evs) in events().prop_flat_map(|evs| {
            let text = render_jsonl(&evs);
            let len = text.len();
            (Just(text), 0usize..=len, Just(evs))
        }),
    ) {
        let parsed = parse_jsonl(&text[..cut]);
        // Whatever survives is an exact prefix of what was written …
        prop_assert!(parsed.events.len() <= evs.len());
        prop_assert_eq!(&parsed.events[..], &evs[..parsed.events.len()]);
        // … and at most the one mangled tail line is skipped.
        prop_assert!(parsed.skipped <= 1, "skipped {} lines", parsed.skipped);
        // A cut on a line boundary loses nothing.
        if cut == text.len() {
            prop_assert_eq!(parsed.events.len(), evs.len());
        }
    }
}
