//! The JSONL trace format: one flat JSON object per line, written next
//! to the harness's dialect logs as `*.trace.jsonl`.
//!
//! Like the dialect parsers in `epg-harness::logs`, the reader is
//! hardened against real log files: blank lines are ignored, chatter
//! lines that are not trace events are skipped (and counted), and a
//! truncated final line — a run killed mid-flush — parses to the events
//! before it. The encoder emits only strings, unsigned integers, and
//! booleans, so `render` ∘ `parse` is the identity on every event.

use crate::{Dir, TraceEvent};
use std::fmt::Write as _;

/// Discriminator key present on every line.
const EV_KEY: &str = "ev";

// ------------------------------------------------------------- render ----

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn field_str(out: &mut String, key: &str, val: &str) {
    out.push(',');
    push_json_string(out, key);
    out.push(':');
    push_json_string(out, val);
}

fn field_u64(out: &mut String, key: &str, val: u64) {
    out.push(',');
    push_json_string(out, key);
    let _ = write!(out, ":{val}");
}

fn field_bool(out: &mut String, key: &str, val: bool) {
    out.push(',');
    push_json_string(out, key);
    let _ = write!(out, ":{val}");
}

/// Renders one event as a single JSON line (no trailing newline).
pub fn render_event(ev: &TraceEvent) -> String {
    let mut out = String::from("{");
    push_json_string(&mut out, EV_KEY);
    out.push(':');
    match ev {
        TraceEvent::PhaseStart { phase, at_ns } => {
            push_json_string(&mut out, "phase_start");
            field_str(&mut out, "phase", phase);
            field_u64(&mut out, "at_ns", *at_ns);
        }
        TraceEvent::PhaseEnd { phase, at_ns } => {
            push_json_string(&mut out, "phase_end");
            field_str(&mut out, "phase", phase);
            field_u64(&mut out, "at_ns", *at_ns);
        }
        TraceEvent::Iteration { iter, frontier, dir } => {
            push_json_string(&mut out, "iter");
            field_u64(&mut out, "iter", *iter as u64);
            field_u64(&mut out, "frontier", *frontier);
            field_str(&mut out, "dir", dir.label());
        }
        TraceEvent::Region { work, span, bytes, parallel } => {
            push_json_string(&mut out, "region");
            field_u64(&mut out, "work", *work);
            field_u64(&mut out, "span", *span);
            field_u64(&mut out, "bytes", *bytes);
            field_bool(&mut out, "parallel", *parallel);
        }
        TraceEvent::CountersDelta {
            region,
            edges,
            vertices,
            bytes_read,
            bytes_written,
            iterations,
        } => {
            push_json_string(&mut out, "counters");
            field_str(&mut out, "region", region);
            field_u64(&mut out, "edges", *edges);
            field_u64(&mut out, "vertices", *vertices);
            field_u64(&mut out, "bytes_read", *bytes_read);
            field_u64(&mut out, "bytes_written", *bytes_written);
            field_u64(&mut out, "iterations", *iterations as u64);
        }
        TraceEvent::WorkerSpan { region, worker, busy_ns, idle_ns } => {
            push_json_string(&mut out, "worker");
            field_u64(&mut out, "region", *region);
            field_u64(&mut out, "worker", *worker as u64);
            field_u64(&mut out, "busy_ns", *busy_ns);
            field_u64(&mut out, "idle_ns", *idle_ns);
        }
        TraceEvent::AllocHwm { label, bytes } => {
            push_json_string(&mut out, "alloc");
            field_str(&mut out, "label", label);
            field_u64(&mut out, "bytes", *bytes);
        }
        TraceEvent::TrialOutcome { outcome, attempts } => {
            push_json_string(&mut out, "trial");
            field_str(&mut out, "outcome", outcome);
            field_u64(&mut out, "attempts", *attempts as u64);
        }
        TraceEvent::Query { algo, path, latency_ns, ok } => {
            push_json_string(&mut out, "query");
            field_str(&mut out, "algo", algo);
            field_str(&mut out, "path", path);
            field_u64(&mut out, "latency_ns", *latency_ns);
            field_bool(&mut out, "ok", *ok);
        }
    }
    out.push('}');
    out
}

/// Renders a whole event sequence as JSONL text.
pub fn render_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&render_event(ev));
        out.push('\n');
    }
    out
}

// -------------------------------------------------------------- parse ----

#[derive(Debug, PartialEq)]
enum Val {
    Str(String),
    U64(u64),
    Bool(bool),
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str) -> Scanner<'a> {
        Scanner { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos)?;
            self.pos += 1;
            match b {
                b'"' => return Some(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            self.pos += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                // Multi-byte UTF-8 continuation: copy the raw bytes of
                // one char.
                b if b < 0x80 => out.push(b as char),
                b => {
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let chunk = self.bytes.get(start..start + len)?;
                    out.push_str(std::str::from_utf8(chunk).ok()?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn value(&mut self) -> Option<Val> {
        match self.peek()? {
            b'"' => self.string().map(Val::Str),
            b't' => {
                self.literal(b"true")?;
                Some(Val::Bool(true))
            }
            b'f' => {
                self.literal(b"false")?;
                Some(Val::Bool(false))
            }
            b'0'..=b'9' => {
                let start = self.pos;
                while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos]).ok()?.parse().ok().map(Val::U64)
            }
            _ => None,
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos..self.pos + lit.len()) == Some(lit) {
            self.pos += lit.len();
            Some(())
        } else {
            None
        }
    }

    /// Parses a flat `{"k": v, ...}` object covering the whole line.
    fn object(&mut self) -> Option<Vec<(String, Val)>> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
        } else {
            loop {
                let key = self.string()?;
                self.eat(b':')?;
                let val = self.value()?;
                fields.push((key, val));
                match self.peek()? {
                    b',' => {
                        self.pos += 1;
                    }
                    b'}' => {
                        self.pos += 1;
                        break;
                    }
                    _ => return None,
                }
            }
        }
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Some(fields)
        } else {
            None
        }
    }
}

fn get_str<'a>(fields: &'a [(String, Val)], key: &str) -> Option<&'a str> {
    fields.iter().find_map(|(k, v)| match v {
        Val::Str(s) if k == key => Some(s.as_str()),
        _ => None,
    })
}

fn get_u64(fields: &[(String, Val)], key: &str) -> Option<u64> {
    fields.iter().find_map(|(k, v)| match v {
        Val::U64(n) if k == key => Some(*n),
        _ => None,
    })
}

fn get_bool(fields: &[(String, Val)], key: &str) -> Option<bool> {
    fields.iter().find_map(|(k, v)| match v {
        Val::Bool(b) if k == key => Some(*b),
        _ => None,
    })
}

/// Parses one line; `None` for anything that is not a complete trace
/// event (chatter, truncation, unknown event kinds).
pub fn parse_line(line: &str) -> Option<TraceEvent> {
    let fields = Scanner::new(line.trim()).object()?;
    let kind = get_str(&fields, EV_KEY)?;
    match kind {
        "phase_start" => Some(TraceEvent::PhaseStart {
            phase: get_str(&fields, "phase")?.to_string(),
            at_ns: get_u64(&fields, "at_ns")?,
        }),
        "phase_end" => Some(TraceEvent::PhaseEnd {
            phase: get_str(&fields, "phase")?.to_string(),
            at_ns: get_u64(&fields, "at_ns")?,
        }),
        "iter" => Some(TraceEvent::Iteration {
            iter: u32::try_from(get_u64(&fields, "iter")?).ok()?,
            frontier: get_u64(&fields, "frontier")?,
            dir: Dir::from_label(get_str(&fields, "dir")?)?,
        }),
        "region" => Some(TraceEvent::Region {
            work: get_u64(&fields, "work")?,
            span: get_u64(&fields, "span")?,
            bytes: get_u64(&fields, "bytes")?,
            parallel: get_bool(&fields, "parallel")?,
        }),
        "counters" => Some(TraceEvent::CountersDelta {
            region: get_str(&fields, "region")?.to_string(),
            edges: get_u64(&fields, "edges")?,
            vertices: get_u64(&fields, "vertices")?,
            bytes_read: get_u64(&fields, "bytes_read")?,
            bytes_written: get_u64(&fields, "bytes_written")?,
            iterations: u32::try_from(get_u64(&fields, "iterations")?).ok()?,
        }),
        "worker" => Some(TraceEvent::WorkerSpan {
            region: get_u64(&fields, "region")?,
            worker: u32::try_from(get_u64(&fields, "worker")?).ok()?,
            busy_ns: get_u64(&fields, "busy_ns")?,
            idle_ns: get_u64(&fields, "idle_ns")?,
        }),
        "alloc" => Some(TraceEvent::AllocHwm {
            label: get_str(&fields, "label")?.to_string(),
            bytes: get_u64(&fields, "bytes")?,
        }),
        "trial" => Some(TraceEvent::TrialOutcome {
            outcome: get_str(&fields, "outcome")?.to_string(),
            attempts: u32::try_from(get_u64(&fields, "attempts")?).ok()?,
        }),
        "query" => Some(TraceEvent::Query {
            algo: get_str(&fields, "algo")?.to_string(),
            path: get_str(&fields, "path")?.to_string(),
            latency_ns: get_u64(&fields, "latency_ns")?,
            ok: get_bool(&fields, "ok")?,
        }),
        _ => None,
    }
}

/// Result of parsing a JSONL trace file.
#[derive(Debug, Default, PartialEq)]
pub struct Parsed {
    /// Successfully decoded events, file order.
    pub events: Vec<TraceEvent>,
    /// Non-blank lines that were not trace events (chatter or a
    /// truncated tail).
    pub skipped: usize,
}

/// Parses JSONL text, tolerating interleaved chatter and truncation.
pub fn parse_jsonl(text: &str) -> Parsed {
    let mut parsed = Parsed::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Some(ev) => parsed.events.push(ev),
            None => parsed.skipped += 1,
        }
    }
    parsed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PhaseStart { phase: "read_file".into(), at_ns: 0 },
            TraceEvent::PhaseEnd { phase: "read_file".into(), at_ns: 31_250_000 },
            TraceEvent::Region { work: 12, span: 3, bytes: 96, parallel: false },
            TraceEvent::CountersDelta {
                region: "finalize".into(),
                edges: 0,
                vertices: 0,
                bytes_read: 4096,
                bytes_written: 512,
                iterations: 7,
            },
            TraceEvent::Iteration { iter: 3, frontier: 250, dir: Dir::Pull },
            TraceEvent::WorkerSpan { region: 42, worker: 0, busy_ns: 12345, idle_ns: 678 },
            TraceEvent::AllocHwm { label: "pr.next \"ranks\"".into(), bytes: u64::MAX },
            TraceEvent::TrialOutcome { outcome: "timeout".into(), attempts: 2 },
            TraceEvent::Query {
                algo: "SSSP".into(),
                path: "batched".into(),
                latency_ns: 48_000,
                ok: true,
            },
        ]
    }

    #[test]
    fn every_kind_roundtrips() {
        for ev in all_kinds() {
            let line = render_event(&ev);
            assert_eq!(parse_line(&line), Some(ev.clone()), "line: {line}");
        }
    }

    #[test]
    fn whole_file_roundtrips() {
        let text = render_jsonl(&all_kinds());
        let parsed = parse_jsonl(&text);
        assert_eq!(parsed.events, all_kinds());
        assert_eq!(parsed.skipped, 0);
    }

    #[test]
    fn chatter_is_skipped_not_fatal() {
        let mut text = String::from("starting up...\n\n");
        text.push_str(&render_event(&all_kinds()[4]));
        text.push_str("\nWARN something unrelated\n{\"ev\":\"mystery\",\"x\":1}\n");
        let parsed = parse_jsonl(&text);
        assert_eq!(parsed.events, vec![all_kinds()[4].clone()]);
        assert_eq!(parsed.skipped, 3, "two chatter lines + one unknown event");
    }

    #[test]
    fn truncated_tail_parses_prefix() {
        let text = render_jsonl(&all_kinds());
        let cut = text.len() - 17; // mid final line
        let parsed = parse_jsonl(&text[..cut]);
        assert_eq!(parsed.events, all_kinds()[..8].to_vec());
        assert_eq!(parsed.skipped, 1);
    }

    #[test]
    fn escapes_survive() {
        let ev = TraceEvent::AllocHwm { label: "a\"b\\c\nd\te\u{1}ü".into(), bytes: 1 };
        let line = render_event(&ev);
        assert_eq!(parse_line(&line), Some(ev));
    }

    #[test]
    fn rejects_non_objects_and_garbage_values() {
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("[1,2]"), None);
        assert_eq!(parse_line("{\"ev\":\"iter\",\"iter\":-3}"), None);
        assert_eq!(parse_line("{\"ev\":\"iter\"}"), None);
        assert_eq!(parse_line("{\"ev\":\"region\",\"work\":1,\"span\":1,\"bytes\":1}"), None);
    }
}
