//! Structured run telemetry.
//!
//! The paper's methodology (§III-B) separates *phases* so that one
//! confounded wall-clock number never stands in for an engine's kernel
//! time. This crate extends that discipline inside the run phase: typed
//! [`TraceEvent`]s — phase spans, per-iteration frontier sizes and
//! push/pull direction, per-worker busy/idle time, allocation high-water
//! marks, and per-region [`Counters`-style] deltas — collected by a
//! [`Recorder`] into an in-memory ring buffer ([`RunRecorder`]) and
//! flushed as JSONL next to the harness's dialect logs.
//!
//! The crate is dependency-free and always compiled; whether engines emit
//! events is decided by the `trace` cargo feature of `epg-engine-api`,
//! which compiles its recording shim down to a no-op when disabled.
//!
//! [`Counters`-style]: TraceEvent::CountersDelta

#![warn(missing_docs)]

pub mod jsonl;

use std::collections::VecDeque;
use std::sync::Mutex;

/// Traversal direction of one iteration (Beamer's direction-optimizing
/// BFS vocabulary, §III-D): `Push` walks out-edges of the frontier,
/// `Pull` scans in-edges of unvisited vertices, `Hybrid` marks the
/// iteration where a direction-optimizing engine switched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Top-down: frontier pushes to neighbors.
    Push,
    /// Bottom-up: undiscovered vertices pull from parents.
    Pull,
    /// The switch iteration of a direction-optimizing run.
    Hybrid,
}

impl Dir {
    /// Wire label used in the JSONL encoding.
    pub fn label(self) -> &'static str {
        match self {
            Dir::Push => "push",
            Dir::Pull => "pull",
            Dir::Hybrid => "hybrid",
        }
    }

    /// Inverse of [`Dir::label`].
    pub fn from_label(s: &str) -> Option<Dir> {
        match s {
            "push" => Some(Dir::Push),
            "pull" => Some(Dir::Pull),
            "hybrid" => Some(Dir::Hybrid),
            _ => None,
        }
    }
}

/// One telemetry event. All numeric payloads are unsigned integers
/// (nanoseconds, element counts, bytes) so the JSONL encoding
/// round-trips exactly — no float formatting ambiguity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A pipeline phase (read_file / construct / run / output) opened at
    /// `at_ns` relative to the recorder's epoch.
    PhaseStart {
        /// Phase label, e.g. `"run"` (see `epg_engine_api::Phase::label`).
        phase: String,
        /// Start time in nanoseconds since the recorder's epoch.
        at_ns: u64,
    },
    /// The matching close of a [`TraceEvent::PhaseStart`].
    PhaseEnd {
        /// Phase label; pairs with the most recent open of the same label.
        phase: String,
        /// End time in nanoseconds since the recorder's epoch.
        at_ns: u64,
    },
    /// One kernel iteration completed. Emitted *after* the iteration's
    /// [`TraceEvent::Region`] and [`TraceEvent::CountersDelta`] events,
    /// closing the iteration group (the grouping rule `epg trace
    /// summarize` and `epg-machine`'s replay rely on).
    Iteration {
        /// 1-based iteration (BFS depth, PR round, SSSP relaxation wave).
        iter: u32,
        /// Frontier / active-set size entering the iteration.
        frontier: u64,
        /// Traversal direction of this iteration.
        dir: Dir,
    },
    /// One parallel or serial region, mirroring an
    /// `epg_engine_api::RegionRecord` the engine pushed onto its `Trace`.
    Region {
        /// Total work (operations) in the region.
        work: u64,
        /// Critical-path length of the region.
        span: u64,
        /// Bytes moved by the region.
        bytes: u64,
        /// Whether the region ran on the pool.
        parallel: bool,
    },
    /// Delta of the engine's aggregate `Counters` attributed to one
    /// region. Summing every delta of a run reproduces the final
    /// `Counters` — asserted per engine by the trace-equivalence test.
    CountersDelta {
        /// Region label: `"iteration"` for per-iteration flushes,
        /// `"finalize"` for end-of-run adjustments.
        region: String,
        /// Edges traversed in the region.
        edges: u64,
        /// Vertices touched in the region.
        vertices: u64,
        /// Bytes read in the region.
        bytes_read: u64,
        /// Bytes written in the region.
        bytes_written: u64,
        /// Iterations accounted to the region.
        iterations: u32,
    },
    /// Busy/idle split of one worker over one pool region
    /// (`epg-parallel` emits these under its `trace` feature).
    WorkerSpan {
        /// Pool region id (monotonic per pool).
        region: u64,
        /// Stable worker id within the pool.
        worker: u32,
        /// Nanoseconds the worker spent executing chunks.
        busy_ns: u64,
        /// Nanoseconds the worker waited inside the region.
        idle_ns: u64,
    },
    /// High-water mark of a named allocation (frontier queues, bitmaps,
    /// per-vertex arrays).
    AllocHwm {
        /// What was allocated, e.g. `"bfs.parent"`.
        label: String,
        /// Peak size in bytes.
        bytes: u64,
    },
    /// The supervisor's verdict on one trial, emitted after the run
    /// phase closes: completed trials say `"ok"`, DNFs carry the label
    /// of their `TrialOutcome` (`"timeout"`, `"panicked"`,
    /// `"quarantined"`) so the trace stream shows the paper's Table
    /// II/III holes explicitly.
    TrialOutcome {
        /// Outcome label (`epg_harness::TrialOutcome::label`).
        outcome: String,
        /// Attempts the supervisor spent on the trial (≥ 1; retries
        /// after transient panics increment this).
        attempts: u32,
    },
    /// One point query answered (or rejected) by the serving layer —
    /// the per-request analogue of `TrialOutcome`, stamped by
    /// `epg-serve` with the answer path taken through its pipeline.
    Query {
        /// Algorithm abbreviation (`"BFS"`, `"SSSP"`, `"PR"`).
        algo: String,
        /// The answer path (`"exact"`, `"batched"`, `"cached"`,
        /// `"landmark"`) or the rejection label (`"overloaded"`,
        /// `"dnf"`, ...).
        path: String,
        /// Wall-clock latency of the request, admission to answer.
        latency_ns: u64,
        /// Whether the request produced an answer (false for
        /// rejections, deadline trips, and failures).
        ok: bool,
    },
}

/// Sink for [`TraceEvent`]s. `&self` receivers plus `Send + Sync` let
/// pool workers record from their own threads while the engine records
/// from the dispatcher; implementations provide interior mutability.
pub trait Recorder: Send + Sync {
    /// Accepts one event.
    fn record(&self, ev: TraceEvent);
}

/// Discards every event. Useful as an explicit no-op sink.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _ev: TraceEvent) {}
}

/// Default [`RunRecorder`] capacity: enough for hundreds of iterations
/// of every event kind without unbounded growth on pathological runs.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// In-memory ring buffer of trace events. When the buffer is full the
/// oldest event is dropped (and counted), keeping the most recent
/// window — a run that explodes never exhausts memory, and the tail of
/// the trace (where convergence behavior lives) survives.
pub struct RunRecorder {
    ring: Mutex<Ring>,
}

impl RunRecorder {
    /// Recorder with [`DEFAULT_CAPACITY`].
    pub fn new() -> RunRecorder {
        RunRecorder::with_capacity(DEFAULT_CAPACITY)
    }

    /// Recorder holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> RunRecorder {
        let capacity = capacity.max(1);
        RunRecorder {
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(1024)),
                capacity,
                dropped: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        // A panicking recorder thread must not silence the rest of the
        // trace; the ring holds plain data, so poisoning is ignorable.
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Clears the buffer and the dropped count.
    pub fn clear(&self) {
        let mut r = self.lock();
        r.events.clear();
        r.dropped = 0;
    }

    /// Renders the buffered events as JSONL, one event per line.
    pub fn to_jsonl(&self) -> String {
        let r = self.lock();
        let mut out = String::new();
        for ev in &r.events {
            out.push_str(&jsonl::render_event(ev));
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL rendering to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

impl Default for RunRecorder {
    fn default() -> RunRecorder {
        RunRecorder::new()
    }
}

impl Recorder for RunRecorder {
    fn record(&self, ev: TraceEvent) {
        let mut r = self.lock();
        if r.events.len() >= r.capacity {
            r.events.pop_front();
            r.dropped += 1;
        }
        r.events.push_back(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PhaseStart { phase: "run".into(), at_ns: 10 },
            TraceEvent::Region { work: 100, span: 25, bytes: 800, parallel: true },
            TraceEvent::CountersDelta {
                region: "iteration".into(),
                edges: 100,
                vertices: 40,
                bytes_read: 800,
                bytes_written: 320,
                iterations: 0,
            },
            TraceEvent::Iteration { iter: 1, frontier: 1, dir: Dir::Push },
            TraceEvent::WorkerSpan { region: 7, worker: 2, busy_ns: 1000, idle_ns: 50 },
            TraceEvent::AllocHwm { label: "bfs.parent".into(), bytes: 4096 },
            TraceEvent::PhaseEnd { phase: "run".into(), at_ns: 999 },
        ]
    }

    #[test]
    fn recorder_keeps_order() {
        let rec = RunRecorder::new();
        for ev in sample_events() {
            rec.record(ev);
        }
        assert_eq!(rec.events(), sample_events());
        assert_eq!(rec.dropped(), 0);
        assert!(!rec.is_empty());
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let rec = RunRecorder::with_capacity(3);
        for i in 0..5u32 {
            rec.record(TraceEvent::Iteration { iter: i, frontier: i as u64, dir: Dir::Push });
        }
        let evs = rec.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let TraceEvent::Iteration { iter, .. } = evs[0] else { panic!() };
        assert_eq!(iter, 2, "oldest two were evicted");
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = std::sync::Arc::new(RunRecorder::new());
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        rec.record(TraceEvent::WorkerSpan {
                            region: 0,
                            worker: t,
                            busy_ns: i,
                            idle_ns: 0,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.len(), 400);
    }

    #[test]
    fn clear_resets_everything() {
        let rec = RunRecorder::with_capacity(2);
        for ev in sample_events() {
            rec.record(ev);
        }
        assert!(rec.dropped() > 0);
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn dir_labels_roundtrip() {
        for d in [Dir::Push, Dir::Pull, Dir::Hybrid] {
            assert_eq!(Dir::from_label(d.label()), Some(d));
        }
        assert_eq!(Dir::from_label("sideways"), None);
    }
}
