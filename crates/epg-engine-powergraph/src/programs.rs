//! The PowerGraph toolkit algorithms as vertex programs.
//!
//! Note the deliberate omission: **no BFS**. "PowerGraph ... doesn't
//! provide an reference implementation of BFS in its toolkits" (§III-D),
//! which is why PowerGraph is absent from Figs. 2, 5, 6 and the BFS panel
//! of Fig. 8.
//!
//! Telemetry: the driver loops here emit per-superstep `Iteration` and
//! `CountersDelta` events. [`superstep`] itself still records into a plain
//! [`Trace`], so PowerGraph's cost-model regions are *not* mirrored as
//! `Region` events — the per-iteration counter deltas carry the same
//! information at superstep granularity.

use crate::gas::{superstep, EdgeDir, VertexProgram};
use crate::partition::PartitionedGraph;
use epg_engine_api::{
    AlgorithmResult, Counters, DeltaTracker, Dir, RecorderCtx, RunOutput, RunParams,
    StoppingCriterion, Trace,
};
use epg_graph::{VertexId, Weight, INF_DIST};
use epg_parallel::ThreadPool;

// --------------------------------------------------------------- SSSP ----

struct SsspProgram;

impl VertexProgram for SsspProgram {
    type Data = f32;
    type Gather = f32;
    fn gather_dir(&self) -> EdgeDir {
        EdgeDir::In
    }
    fn gather(&self, _v: VertexId, other: &f32, w: Weight) -> f32 {
        other + w
    }
    fn merge(&self, a: f32, b: f32) -> f32 {
        a.min(b)
    }
    fn apply(&self, _v: VertexId, data: &mut f32, acc: Option<f32>) -> bool {
        match acc {
            Some(a) if a < *data => {
                *data = a;
                true
            }
            _ => false,
        }
    }
    fn scatter_dir(&self) -> EdgeDir {
        EdgeDir::Out
    }
}

/// SSSP: gather-min over in-edges, scatter-activate over out-edges, until
/// no vertex changes.
pub fn sssp(
    g: &PartitionedGraph,
    root: VertexId,
    pool: &ThreadPool,
    rec: RecorderCtx<'_>,
) -> RunOutput {
    let n = g.num_vertices;
    let mut dist = vec![INF_DIST; n];
    dist[root as usize] = 0.0;
    let mut counters = Counters::default();
    let mut trace = Trace::default();
    let mut deltas = DeltaTracker::new();
    rec.alloc_hwm("powergraph.sssp.dist", n as u64 * 4);
    // Signal the root's out-neighbors, as the toolkit's init scatter does.
    let mut active: Vec<VertexId> = g
        .partitions
        .iter()
        .flat_map(|p| p.out_edges.get(&root).into_iter().flatten().map(|&(d, _)| d))
        .collect();
    active.sort_unstable();
    active.dedup();
    let mut round = 0u32;
    let mut cancelled = false;
    while !active.is_empty() {
        if pool.is_cancelled() {
            cancelled = true;
            break;
        }
        round += 1;
        let frontier = active.len() as u64;
        let (next, _) =
            superstep(&SsspProgram, g, &active, &mut dist, pool, &mut counters, &mut trace);
        deltas.flush("iteration", &counters, rec);
        // Activation-driven superstep: the active set pushes work forward.
        rec.iteration(round, frontier, Dir::Push);
        active = next;
    }
    counters.bytes_read = counters.edges_traversed * 16;
    deltas.flush("finalize", &counters, rec);
    RunOutput::new(AlgorithmResult::Distances(dist), counters, trace).cancelled(cancelled)
}

// ----------------------------------------------------------- PageRank ----

const DAMPING: f64 = 0.85;

/// Vertex data for PageRank: rank plus out-degree (mirrors need both).
#[derive(Clone, Copy)]
struct PrData {
    rank: f64,
    out_deg: u32,
}

struct PrProgram {
    base: f64,
    sink_mass: f64,
}

impl VertexProgram for PrProgram {
    type Data = PrData;
    type Gather = f64;
    fn gather_dir(&self) -> EdgeDir {
        EdgeDir::In
    }
    fn gather(&self, _v: VertexId, other: &PrData, _w: Weight) -> f64 {
        other.rank / other.out_deg.max(1) as f64
    }
    fn merge(&self, a: f64, b: f64) -> f64 {
        a + b
    }
    fn apply(&self, _v: VertexId, data: &mut PrData, acc: Option<f64>) -> bool {
        let new = self.base + DAMPING * (acc.unwrap_or(0.0) + self.sink_mass);
        let changed = (data.rank as f32) != (new as f32);
        data.rank = new;
        changed
    }
    fn scatter_dir(&self) -> EdgeDir {
        EdgeDir::None // the engine drives all-active synchronous rounds
    }
}

/// PageRank: synchronous all-active rounds with the homogenized L1
/// criterion by default.
pub fn pagerank(g: &PartitionedGraph, params: &RunParams<'_>) -> RunOutput {
    let n = g.num_vertices;
    let pool = params.pool;
    let rec = params.recorder;
    let stopping = params.stopping.unwrap_or(StoppingCriterion::paper_default());
    let mut counters = Counters::default();
    let mut trace = Trace::default();
    let mut deltas = DeltaTracker::new();
    if n == 0 {
        return RunOutput::new(
            AlgorithmResult::Ranks { ranks: Vec::new(), iterations: 0 },
            counters,
            trace,
        );
    }
    rec.alloc_hwm("powergraph.pr.data", n as u64 * 16);
    let mut out_deg = vec![0u32; n];
    for p in &g.partitions {
        for (&u, outs) in &p.out_edges {
            out_deg[u as usize] += outs.len() as u32;
        }
    }
    let mut data: Vec<PrData> =
        (0..n).map(|v| PrData { rank: 1.0 / n as f64, out_deg: out_deg[v] }).collect();
    let all: Vec<VertexId> = (0..n as VertexId).collect();
    let base = (1.0 - DAMPING) / n as f64;
    let mut iterations = 0u32;
    let mut cancelled = false;
    // Prev-rank snapshot for the L1 convergence delta, reused across
    // iterations so the timed loop never reallocates it.
    let mut prev = vec![0.0f64; n];
    loop {
        if pool.is_cancelled() {
            cancelled = true;
            break;
        }
        iterations += 1;
        let sink_mass: f64 =
            data.iter().filter(|d| d.out_deg == 0).map(|d| d.rank).sum::<f64>() / n as f64;
        for (p, d) in prev.iter_mut().zip(data.iter()) {
            *p = d.rank;
        }
        let prog = PrProgram { base, sink_mass };
        let (_, stats) = superstep(&prog, g, &all, &mut data, pool, &mut counters, &mut trace);
        let l1: f64 = data.iter().zip(&prev).map(|(d, &p)| (d.rank - p).abs()).sum();
        deltas.flush("iteration", &counters, rec);
        // Gather over in-edges with every vertex active: a pull round.
        rec.iteration(iterations, n as u64, Dir::Pull);
        if stopping.is_converged(l1, stats.changed.len() as u64)
            || iterations >= params.max_iterations
        {
            break;
        }
    }
    counters.bytes_read = counters.edges_traversed * 16;
    deltas.flush("finalize", &counters, rec);
    RunOutput::new(
        AlgorithmResult::Ranks { ranks: data.iter().map(|d| d.rank).collect(), iterations },
        counters,
        trace,
    )
    .cancelled(cancelled)
}

// --------------------------------------------------------------- CDLP ----

struct CdlpProgram;

impl VertexProgram for CdlpProgram {
    type Data = u64;
    type Gather = Vec<u64>;
    fn gather_dir(&self) -> EdgeDir {
        EdgeDir::Both
    }
    fn gather(&self, _v: VertexId, other: &u64, _w: Weight) -> Vec<u64> {
        vec![*other]
    }
    fn merge(&self, mut a: Vec<u64>, mut b: Vec<u64>) -> Vec<u64> {
        a.append(&mut b);
        a
    }
    fn apply(&self, _v: VertexId, data: &mut u64, acc: Option<Vec<u64>>) -> bool {
        let Some(labels) = acc else { return false };
        let mut freq: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for l in labels {
            *freq.entry(l).or_insert(0) += 1;
        }
        if let Some((&l, _)) = freq.iter().max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0))) {
            let changed = *data != l;
            *data = l;
            changed
        } else {
            false
        }
    }
    fn scatter_dir(&self) -> EdgeDir {
        EdgeDir::None
    }
}

/// CDLP: fixed-round synchronous label propagation (Graphalytics
/// semantics, both edge directions).
pub fn cdlp(
    g: &PartitionedGraph,
    pool: &ThreadPool,
    iterations: u32,
    rec: RecorderCtx<'_>,
) -> RunOutput {
    let n = g.num_vertices;
    let mut labels: Vec<u64> = (0..n as u64).collect();
    let all: Vec<VertexId> = (0..n as VertexId).collect();
    let mut counters = Counters::default();
    let mut trace = Trace::default();
    let mut deltas = DeltaTracker::new();
    rec.alloc_hwm("powergraph.cdlp.labels", n as u64 * 8);
    let mut cancelled = false;
    for round in 0..iterations {
        if pool.is_cancelled() {
            cancelled = true;
            break;
        }
        let _ = superstep(&CdlpProgram, g, &all, &mut labels, pool, &mut counters, &mut trace);
        deltas.flush("iteration", &counters, rec);
        rec.iteration(round + 1, n as u64, Dir::Push);
    }
    counters.bytes_read = counters.edges_traversed * 16;
    deltas.flush("finalize", &counters, rec);
    RunOutput::new(AlgorithmResult::Labels(labels), counters, trace).cancelled(cancelled)
}

// ---------------------------------------------------------------- WCC ----

struct WccProgram;

impl VertexProgram for WccProgram {
    type Data = u64;
    type Gather = u64;
    fn gather_dir(&self) -> EdgeDir {
        EdgeDir::Both
    }
    fn gather(&self, _v: VertexId, other: &u64, _w: Weight) -> u64 {
        *other
    }
    fn merge(&self, a: u64, b: u64) -> u64 {
        a.min(b)
    }
    fn apply(&self, _v: VertexId, data: &mut u64, acc: Option<u64>) -> bool {
        match acc {
            Some(a) if a < *data => {
                *data = a;
                true
            }
            _ => false,
        }
    }
    fn scatter_dir(&self) -> EdgeDir {
        EdgeDir::Both
    }
}

/// WCC: min-label GAS until fixpoint.
pub fn wcc(g: &PartitionedGraph, pool: &ThreadPool, rec: RecorderCtx<'_>) -> RunOutput {
    let n = g.num_vertices;
    let mut comp: Vec<u64> = (0..n as u64).collect();
    let mut active: Vec<VertexId> = (0..n as VertexId).collect();
    let mut counters = Counters::default();
    let mut trace = Trace::default();
    let mut deltas = DeltaTracker::new();
    let mut round = 0u32;
    let mut cancelled = false;
    rec.alloc_hwm("powergraph.wcc.comp", n as u64 * 8);
    while !active.is_empty() {
        if pool.is_cancelled() {
            cancelled = true;
            break;
        }
        round += 1;
        let frontier = active.len() as u64;
        let (next, _) =
            superstep(&WccProgram, g, &active, &mut comp, pool, &mut counters, &mut trace);
        deltas.flush("iteration", &counters, rec);
        rec.iteration(round, frontier, Dir::Push);
        active = next;
    }
    counters.bytes_read = counters.edges_traversed * 16;
    deltas.flush("finalize", &counters, rec);
    RunOutput::new(
        AlgorithmResult::Components(comp.into_iter().map(|c| c as VertexId).collect()),
        counters,
        trace,
    )
    .cancelled(cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::{oracle, Csr, EdgeList};

    fn graph(seed: u64) -> EdgeList {
        epg_generator::uniform::generate(150, 1000, true, seed).symmetrized().deduplicated()
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let el = graph(1);
        let g = PartitionedGraph::build(&el, 4);
        let pool = ThreadPool::new(3);
        let out = sssp(&g, 2, &pool, RecorderCtx::none());
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        let want = oracle::dijkstra(&Csr::from_edge_list(&el), 2);
        for v in 0..want.len() {
            if want[v].is_infinite() {
                assert!(d[v].is_infinite());
            } else {
                assert!((d[v] - want[v]).abs() < 1e-3, "vertex {v}");
            }
        }
    }

    #[test]
    fn pagerank_matches_oracle() {
        let el = graph(2);
        let g = PartitionedGraph::build(&el, 4);
        let pool = ThreadPool::new(2);
        let out = pagerank(&g, &RunParams::new(&pool, None));
        let AlgorithmResult::Ranks { ranks, iterations } = out.result else { panic!() };
        assert!(iterations > 1);
        let (want, _) = oracle::pagerank(&Csr::from_edge_list(&el), 6e-8, 300);
        for v in 0..want.len() {
            assert!((ranks[v] - want[v]).abs() < 1e-5, "vertex {v}");
        }
    }

    #[test]
    fn cdlp_matches_oracle() {
        let el = graph(3);
        let g = PartitionedGraph::build(&el, 4);
        let pool = ThreadPool::new(2);
        let out = cdlp(&g, &pool, 10, RecorderCtx::none());
        let AlgorithmResult::Labels(l) = out.result else { panic!() };
        assert_eq!(l, oracle::cdlp(&Csr::from_edge_list(&el), 10));
    }

    #[test]
    fn wcc_matches_oracle() {
        let el = epg_generator::uniform::generate(200, 260, false, 4);
        let g = PartitionedGraph::build(&el, 4);
        let pool = ThreadPool::new(3);
        let out = wcc(&g, &pool, RecorderCtx::none());
        let AlgorithmResult::Components(c) = out.result else { panic!() };
        assert_eq!(c, oracle::wcc(&Csr::from_edge_list(&el)));
    }

    #[test]
    fn sssp_from_isolated_root_terminates() {
        let el = EdgeList::weighted(3, vec![(1, 2)], vec![1.0]);
        let g = PartitionedGraph::build(&el, 2);
        let pool = ThreadPool::new(1);
        let out = sssp(&g, 0, &pool, RecorderCtx::none());
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        assert_eq!(d[0], 0.0);
        assert!(d[1].is_infinite() && d[2].is_infinite());
    }
}
