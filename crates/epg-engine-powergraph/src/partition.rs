//! Vertex-cut partitioning with master/mirror replication.
//!
//! PowerGraph's signature idea (Gonzalez et al., OSDI'12): instead of
//! cutting edges, *vertices* are cut — each edge lives in exactly one
//! partition, and a vertex spans every partition that holds one of its
//! edges. One replica is the *master*; the rest are *mirrors* that must be
//! synchronized after every apply. The paper credits this scheme for
//! PowerGraph's relatively better showing on the dense, hub-heavy
//! dota-league graph (§IV-C) while charging it with "significant overhead".
//!
//! We implement the greedy oblivious heuristic: place an edge in a
//! partition that already hosts both endpoints, else one endpoint (the
//! least-loaded such), else the least-loaded partition overall.

use epg_graph::{EdgeList, VertexId, Weight};
use std::collections::HashMap;

/// One partition's slice of the graph.
#[derive(Clone, Debug, Default)]
pub struct Partition {
    /// Local out-adjacency: global src -> [(global dst, weight)].
    pub out_edges: HashMap<VertexId, Vec<(VertexId, Weight)>>,
    /// Local in-adjacency: global dst -> [(global src, weight)].
    pub in_edges: HashMap<VertexId, Vec<(VertexId, Weight)>>,
    /// Number of edges assigned here.
    pub num_edges: usize,
}

/// The partitioned graph.
#[derive(Clone, Debug)]
pub struct PartitionedGraph {
    /// Total number of vertices.
    pub num_vertices: usize,
    /// Total number of edges.
    pub num_edges: usize,
    /// The partitions.
    pub partitions: Vec<Partition>,
    /// For each vertex, the partitions hosting a replica (sorted).
    pub replicas: Vec<Vec<u16>>,
    /// For each vertex, the master partition (meaningless for isolated
    /// vertices, which have no replicas).
    pub master: Vec<u16>,
}

impl PartitionedGraph {
    /// Partitions an edge list into `num_partitions` vertex-cut partitions.
    pub fn build(el: &EdgeList, num_partitions: usize) -> PartitionedGraph {
        assert!(num_partitions >= 1, "need at least one partition");
        let n = el.num_vertices;
        let p = num_partitions;
        let mut partitions = vec![Partition::default(); p];
        // Bitsets of partitions per vertex (p <= 64 supported; the paper
        // runs a single node, so partition counts stay small).
        assert!(p <= 64, "at most 64 partitions supported");
        let mut presence: Vec<u64> = vec![0; n];

        // Capacity bound: without it the greedy rule degenerates (every
        // edge of a connected graph chases its neighbors into one
        // partition). Real implementations balance with a load cap.
        let all_mask: u64 = if p == 64 { u64::MAX } else { (1u64 << p) - 1 };
        // Tight slack: a loose cap lets the neighbor-affinity preference
        // fill partitions to the brim in discovery order and starve the
        // last one; a few edges of headroom keeps loads within a constant
        // of perfectly balanced while still honoring affinity.
        let capacity = el.num_edges().div_ceil(p) + 8;
        for (u, v, w) in el.iter() {
            let pu = presence[u as usize];
            let pv = presence[v as usize];
            let under_cap: u64 = (0..p)
                .filter(|&i| partitions[i].num_edges < capacity)
                .fold(0u64, |acc, i| acc | (1 << i));
            let both = pu & pv & under_cap;
            let either = (pu | pv) & under_cap;
            let candidates: u64 = if both != 0 {
                both
            } else if either != 0 {
                either
            } else if under_cap != 0 {
                under_cap
            } else {
                all_mask
            };
            // Least-loaded among candidates.
            let mut best = usize::MAX;
            let mut best_load = usize::MAX;
            let mut bits = candidates;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if partitions[i].num_edges < best_load {
                    best_load = partitions[i].num_edges;
                    best = i;
                }
            }
            let part = &mut partitions[best];
            part.out_edges.entry(u).or_default().push((v, w));
            part.in_edges.entry(v).or_default().push((u, w));
            part.num_edges += 1;
            presence[u as usize] |= 1 << best;
            presence[v as usize] |= 1 << best;
        }

        let replicas: Vec<Vec<u16>> = presence
            .iter()
            .map(|&bits| {
                let mut v = Vec::with_capacity(bits.count_ones() as usize);
                let mut b = bits;
                while b != 0 {
                    v.push(b.trailing_zeros() as u16);
                    b &= b - 1;
                }
                v
            })
            .collect();
        // Master: hashed choice among replicas (PowerGraph hashes vertex id).
        let master: Vec<u16> = replicas
            .iter()
            .enumerate()
            .map(|(v, reps)| if reps.is_empty() { 0 } else { reps[(v * 2654435761) % reps.len()] })
            .collect();
        PartitionedGraph {
            num_vertices: n,
            num_edges: el.num_edges(),
            partitions,
            replicas,
            master,
        }
    }

    /// Average number of replicas per non-isolated vertex — PowerGraph's
    /// replication factor, the driver of its synchronization overhead.
    pub fn replication_factor(&self) -> f64 {
        let (sum, cnt) = self
            .replicas
            .iter()
            .filter(|r| !r.is_empty())
            .fold((0usize, 0usize), |(s, c), r| (s + r.len(), c + 1));
        if cnt == 0 {
            0.0
        } else {
            sum as f64 / cnt as f64
        }
    }

    /// Total mirror count (replicas beyond the master) — each is one
    /// value-synchronization message per apply.
    pub fn num_mirrors(&self) -> u64 {
        self.replicas.iter().map(|r| (r.len().saturating_sub(1)) as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        epg_generator::uniform::generate(100, 1200, true, 3).symmetrized().deduplicated()
    }

    #[test]
    fn every_edge_lands_in_exactly_one_partition() {
        let el = sample();
        let pg = PartitionedGraph::build(&el, 8);
        let total: usize = pg.partitions.iter().map(|p| p.num_edges).sum();
        assert_eq!(total, el.num_edges());
        // Recover the multiset of edges.
        let mut got: Vec<(VertexId, VertexId, u32)> = Vec::new();
        for part in &pg.partitions {
            for (&u, outs) in &part.out_edges {
                for &(v, w) in outs {
                    got.push((u, v, w.to_bits()));
                }
            }
        }
        let mut want: Vec<(VertexId, VertexId, u32)> =
            el.iter().map(|(u, v, w)| (u, v, w.to_bits())).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn in_and_out_adjacency_agree() {
        let el = sample();
        let pg = PartitionedGraph::build(&el, 4);
        for part in &pg.partitions {
            let outs: usize = part.out_edges.values().map(Vec::len).sum();
            let ins: usize = part.in_edges.values().map(Vec::len).sum();
            assert_eq!(outs, ins);
            assert_eq!(outs, part.num_edges);
        }
    }

    #[test]
    fn replicas_cover_all_edge_endpoints() {
        let el = sample();
        let pg = PartitionedGraph::build(&el, 8);
        for (pi, part) in pg.partitions.iter().enumerate() {
            for &u in part.out_edges.keys().chain(part.in_edges.keys()) {
                assert!(
                    pg.replicas[u as usize].contains(&(pi as u16)),
                    "vertex {u} present in partition {pi} but not registered"
                );
            }
        }
    }

    #[test]
    fn master_is_one_of_the_replicas() {
        let el = sample();
        let pg = PartitionedGraph::build(&el, 8);
        for v in 0..pg.num_vertices {
            if !pg.replicas[v].is_empty() {
                assert!(pg.replicas[v].contains(&pg.master[v]));
            }
        }
    }

    #[test]
    fn hub_vertices_replicate_more() {
        // A star graph: the hub must appear in many partitions, leaves in 1.
        let edges: Vec<_> = (1..200u32).map(|v| (0, v)).collect();
        let el = EdgeList::new(200, edges);
        let pg = PartitionedGraph::build(&el, 8);
        assert!(pg.replicas[0].len() > 1, "hub not cut");
        let leaf_avg: f64 = (1..200).map(|v| pg.replicas[v].len()).sum::<usize>() as f64 / 199.0;
        assert!(leaf_avg < 1.5);
        assert!(pg.replication_factor() > 1.0);
    }

    #[test]
    fn single_partition_degenerates_gracefully() {
        let el = sample();
        let pg = PartitionedGraph::build(&el, 1);
        assert_eq!(pg.partitions.len(), 1);
        assert!((pg.replication_factor() - 1.0).abs() < 1e-12);
        assert_eq!(pg.num_mirrors(), 0);
    }

    #[test]
    fn load_is_roughly_balanced() {
        let el = sample();
        let pg = PartitionedGraph::build(&el, 8);
        let loads: Vec<usize> = pg.partitions.iter().map(|p| p.num_edges).collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        assert!(max <= min * 3 + 16, "imbalanced: {loads:?}");
    }
}
