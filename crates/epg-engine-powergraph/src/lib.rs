//! PowerGraph-style engine.
//!
//! Models PowerGraph (Gonzalez et al., OSDI'12; §III-C item 5): a
//! distributed graph-parallel framework run on a single node, exactly as
//! the paper does. Its architecture is reproduced, overheads included —
//! the paper's results hinge on them ("this comes with a significant
//! overhead; PowerGraph is slower ... than the other platforms", §IV-C):
//!
//! - **vertex-cut partitioning** with master/mirror replication
//!   ([`partition::PartitionedGraph`], greedy oblivious placement);
//! - a **synchronous Gather-Apply-Scatter engine** ([`gas`]) whose every
//!   superstep pays gather-merge and mirror-synchronization costs
//!   proportional to the replication factor;
//! - toolkit algorithms ([`programs`]): SSSP, PageRank, CDLP, WCC, and LCC
//!   — **but no BFS**, matching the toolkit gap the paper reports (§III-D);
//! - file loading and graph construction are fused (the loader partitions
//!   while it parses, §III-B).

#![allow(clippy::needless_range_loop, clippy::type_complexity)]
#![warn(missing_docs)]
pub mod gas;
pub mod partition;
pub mod programs;

mod lcc;

use epg_engine_api::{logfmt::LogStyle, Algorithm, Engine, EngineInfo, RunOutput, RunParams};
use epg_graph::{ingest, EdgeList};
use epg_parallel::ThreadPool;
use partition::PartitionedGraph;
use std::path::Path;

/// Engine configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PowerGraphConfig {
    /// Number of vertex-cut partitions (PowerGraph would size this by
    /// machines × cores; the paper runs one node).
    pub num_partitions: usize,
}

impl Default for PowerGraphConfig {
    fn default() -> Self {
        PowerGraphConfig { num_partitions: 8 }
    }
}

/// The PowerGraph-style engine.
pub struct PowerGraphEngine {
    /// Configuration.
    pub config: PowerGraphConfig,
    staged: Option<EdgeList>,
    graph: Option<PartitionedGraph>,
}

impl PowerGraphEngine {
    /// Creates an engine with the default partition count.
    pub fn new() -> PowerGraphEngine {
        PowerGraphEngine::with_config(PowerGraphConfig::default())
    }

    /// Creates an engine with explicit configuration.
    pub fn with_config(config: PowerGraphConfig) -> PowerGraphEngine {
        PowerGraphEngine { config, staged: None, graph: None }
    }

    fn graph(&self) -> &PartitionedGraph {
        self.graph.as_ref().expect("graph not loaded")
    }

    /// Replication factor of the loaded graph (reported by the harness as
    /// part of the §IV-C discussion of dense-graph behavior).
    pub fn replication_factor(&self) -> f64 {
        self.graph().replication_factor()
    }
}

impl Default for PowerGraphEngine {
    fn default() -> Self {
        PowerGraphEngine::new()
    }
}

impl Engine for PowerGraphEngine {
    fn info(&self) -> EngineInfo {
        EngineInfo {
            name: "PowerGraph",
            representation: "vertex-cut partitions over CSR-like storage",
            parallelism: "GAS supersteps (OpenMP-style workers + fiber-like tasks)",
            distributed_capable: true,
            requires_proprietary_compiler: false,
        }
    }

    fn supports(&self, algo: Algorithm) -> bool {
        // No BFS in the toolkits (§III-D); triangle counting exists
        // (undirected_triangle_count) but betweenness does not.
        !matches!(algo, Algorithm::Bfs | Algorithm::Bc)
    }

    fn separable_construction(&self) -> bool {
        false // loads and partitions in one pass (§III-B)
    }

    fn load_file(&mut self, path: &Path, pool: &ThreadPool) -> std::io::Result<()> {
        let el = ingest::read_binary_file_parallel(path, pool)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        // Fused: partition while "loading".
        self.graph = Some(PartitionedGraph::build(&el, self.config.num_partitions));
        self.staged = None;
        Ok(())
    }

    fn load_edge_list(&mut self, el: &EdgeList) {
        self.staged = Some(el.clone());
        self.graph = None;
    }

    fn construct(&mut self, _pool: &ThreadPool) {
        if self.graph.is_none() {
            let el = self.staged.as_ref().expect("no input loaded");
            self.graph = Some(PartitionedGraph::build(el, self.config.num_partitions));
        }
    }

    fn run(&mut self, algo: Algorithm, params: &RunParams<'_>) -> RunOutput {
        assert!(self.supports(algo), "PowerGraph provides no {algo:?} toolkit");
        let g = self.graph();
        match algo {
            Algorithm::Sssp => programs::sssp(
                g,
                params.root.expect("SSSP needs a root"),
                params.pool,
                params.recorder,
            ),
            Algorithm::PageRank => programs::pagerank(g, params),
            Algorithm::Cdlp => programs::cdlp(g, params.pool, 10, params.recorder),
            Algorithm::Wcc => programs::wcc(g, params.pool, params.recorder),
            Algorithm::Lcc => lcc::lcc(g, params.pool),
            Algorithm::TriangleCount => lcc::triangle_count(g, params.pool),
            Algorithm::Bfs | Algorithm::Bc => unreachable!(),
        }
    }

    fn log_style(&self) -> LogStyle {
        LogStyle::PowerGraph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_engine_api::AlgorithmResult;
    use epg_graph::{oracle, Csr};

    #[test]
    fn no_bfs_toolkit() {
        let e = PowerGraphEngine::new();
        assert!(!e.supports(Algorithm::Bfs));
        assert!(e.supports(Algorithm::Sssp));
        assert!(!e.separable_construction());
        assert!(e.info().distributed_capable);
    }

    #[test]
    #[should_panic(expected = "no Bfs toolkit")]
    fn bfs_panics() {
        let el = EdgeList::new(2, vec![(0, 1)]);
        let pool = ThreadPool::new(1);
        let mut e = PowerGraphEngine::new();
        e.load_edge_list(&el);
        e.construct(&pool);
        let _ = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(0)));
    }

    #[test]
    fn end_to_end_sssp_and_replication_factor() {
        let el = epg_generator::dota_league::generate(
            &epg_generator::dota_league::DotaLeagueConfig {
                num_vertices: 300,
                avg_degree: 40,
                ..Default::default()
            },
            5,
        );
        let pool = ThreadPool::new(3);
        let mut e = PowerGraphEngine::new();
        e.load_edge_list(&el);
        e.construct(&pool);
        // Dense graph: hubs replicate across partitions.
        assert!(e.replication_factor() > 1.2, "rf = {}", e.replication_factor());
        let root = epg_graph::degree::sample_roots(&el, 1, 2)[0];
        let out = e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(root)));
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        let want = oracle::dijkstra(&Csr::from_edge_list(&el), root);
        for v in 0..want.len() {
            if want[v].is_infinite() {
                assert!(d[v].is_infinite());
            } else {
                // dota weights are match counts (integers); paths are exact
                // in f32 up to moderate sums.
                assert!((d[v] - want[v]).abs() < 1e-2, "vertex {v}: {} vs {}", d[v], want[v]);
            }
        }
        // Mirror synchronization was charged.
        assert!(out.counters.bytes_written > 0);
    }

    #[test]
    fn wcc_via_engine_api() {
        let el = epg_generator::uniform::generate(150, 200, false, 9);
        let pool = ThreadPool::new(2);
        let mut e = PowerGraphEngine::new();
        e.load_edge_list(&el);
        e.construct(&pool);
        let out = e.run(Algorithm::Wcc, &RunParams::new(&pool, None));
        let AlgorithmResult::Components(c) = out.result else { panic!() };
        assert_eq!(c, oracle::wcc(&Csr::from_edge_list(&el)));
    }
}
