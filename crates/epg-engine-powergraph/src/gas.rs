//! The synchronous Gather-Apply-Scatter engine.
//!
//! One superstep of PowerGraph's synchronous engine over a vertex-cut
//! partitioning:
//!
//! 1. **Gather** — every partition computes, in parallel, a *partial*
//!    gather for each active vertex it hosts (only its local edges);
//! 2. **Merge** — partials travel to the master, which merges them (this is
//!    where the replication factor turns into synchronization work);
//! 3. **Apply** — masters fold the gathered value into vertex data;
//! 4. **Sync** — changed masters broadcast the new value to their mirrors
//!    (charged as memory/communication traffic in the trace);
//! 5. **Scatter** — partitions scan the local edges of changed vertices and
//!    activate neighbors.

use crate::partition::PartitionedGraph;
use epg_engine_api::{Counters, Trace};
use epg_graph::{VertexId, Weight};
use epg_parallel::{DisjointWriter, Schedule, ThreadPool};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Which incident edges a program's gather/scatter covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeDir {
    /// In-edges only.
    In,
    /// Out-edges only.
    Out,
    /// Both directions.
    Both,
    /// No edges (skip the step entirely).
    None,
}

/// A PowerGraph-style vertex program.
pub trait VertexProgram: Sync {
    /// Per-vertex state.
    type Data: Clone + Send + Sync;
    /// Gather accumulator.
    type Gather: Clone + Send + Sync;

    /// Edges covered by gather.
    fn gather_dir(&self) -> EdgeDir;
    /// Gather along one edge: `other` is the data of the neighbor on the
    /// far side, `w` the edge weight.
    fn gather(&self, v: VertexId, other: &Self::Data, w: Weight) -> Self::Gather;
    /// Merge two gather partials (associative, commutative).
    fn merge(&self, a: Self::Gather, b: Self::Gather) -> Self::Gather;
    /// Apply at the master. Returns true if the vertex value changed (which
    /// triggers mirror sync and scatter).
    fn apply(&self, v: VertexId, data: &mut Self::Data, acc: Option<Self::Gather>) -> bool;
    /// Edges covered by scatter (neighbors along them activate when the
    /// vertex changed).
    fn scatter_dir(&self) -> EdgeDir;
}

/// Result of one superstep.
pub struct StepStats {
    /// Vertices whose apply changed their value.
    pub changed: Vec<VertexId>,
    /// Edges gathered + scattered.
    pub edge_work: u64,
    /// Mirror synchronization messages sent.
    pub sync_messages: u64,
}

/// Runs one synchronous GAS superstep over `active`, updating `data` in
/// place and returning the next active set (sorted, deduplicated) plus
/// step statistics. Work and sync costs are charged to `counters`/`trace`.
pub fn superstep<P: VertexProgram>(
    prog: &P,
    g: &PartitionedGraph,
    active: &[VertexId],
    data: &mut [P::Data],
    pool: &ThreadPool,
    counters: &mut Counters,
    trace: &mut Trace,
) -> (Vec<VertexId>, StepStats) {
    let nparts = g.partitions.len();

    // ---- Gather (parallel over partitions) ----
    let mut edge_work = 0u64;
    let mut max_partial = 0u64;
    let mut merged: HashMap<VertexId, P::Gather> = HashMap::new();
    if prog.gather_dir() != EdgeDir::None {
        let data_ref: &[P::Data] = data;
        let partials: Mutex<Vec<(HashMap<VertexId, P::Gather>, u64, u64)>> = Mutex::new(Vec::new());
        pool.parallel_for_ranges(nparts, Schedule::Dynamic { chunk: 1 }, |_tid, lo, hi| {
            for pi in lo..hi {
                let part = &g.partitions[pi];
                let mut local: HashMap<VertexId, P::Gather> = HashMap::new();
                let mut work = 0u64;
                let mut maxv = 0u64;
                for &v in active {
                    if !g.replicas[v as usize].contains(&(pi as u16)) {
                        continue;
                    }
                    let mut acc: Option<P::Gather> = None;
                    let mut vwork = 0u64;
                    let dir = prog.gather_dir();
                    if dir == EdgeDir::In || dir == EdgeDir::Both {
                        if let Some(ins) = part.in_edges.get(&v) {
                            for &(src, w) in ins {
                                vwork += 1;
                                let gval = prog.gather(v, &data_ref[src as usize], w);
                                acc = Some(match acc {
                                    Some(a) => prog.merge(a, gval),
                                    None => gval,
                                });
                            }
                        }
                    }
                    if dir == EdgeDir::Out || dir == EdgeDir::Both {
                        if let Some(outs) = part.out_edges.get(&v) {
                            for &(dst, w) in outs {
                                vwork += 1;
                                let gval = prog.gather(v, &data_ref[dst as usize], w);
                                acc = Some(match acc {
                                    Some(a) => prog.merge(a, gval),
                                    None => gval,
                                });
                            }
                        }
                    }
                    work += vwork;
                    maxv = maxv.max(vwork);
                    if let Some(a) = acc {
                        local.insert(v, a);
                    }
                }
                partials.lock().push((local, work, maxv));
            }
        });
        // ---- Merge at masters (the replication synchronization) ----
        for (local, work, maxv) in partials.into_inner() {
            edge_work += work;
            max_partial = max_partial.max(maxv);
            for (v, acc) in local {
                match merged.remove(&v) {
                    Some(prev) => {
                        merged.insert(v, prog.merge(prev, acc));
                    }
                    None => {
                        merged.insert(v, acc);
                    }
                }
            }
        }
        trace.parallel(edge_work.max(1), max_partial.max(1), edge_work * 16);
        trace.serial(merged.len() as u64 + 1, merged.len() as u64 * 16);
    }

    // ---- Apply at masters (parallel over active) ----
    let changed: Mutex<Vec<VertexId>> = Mutex::new(Vec::new());
    {
        let cell = DisjointWriter::new(data);
        let merged_ref = &merged;
        pool.parallel_for_ranges(active.len(), Schedule::Static { chunk: None }, |_tid, lo, hi| {
            let mut local = Vec::with_capacity(hi - lo);
            for &v in &active[lo..hi] {
                // SAFETY: `active` is deduplicated, one thread per index.
                let d = unsafe { cell.get_raw(v as usize) };
                if prog.apply(v, d, merged_ref.get(&v).cloned()) {
                    local.push(v);
                }
            }
            if !local.is_empty() {
                changed.lock().append(&mut local);
            }
        });
    }
    let mut changed = changed.into_inner();
    changed.sort_unstable();

    // ---- Sync to mirrors ----
    let sync_messages: u64 =
        changed.iter().map(|&v| g.replicas[v as usize].len().saturating_sub(1) as u64).sum();
    counters.bytes_written += sync_messages * 16;
    trace.serial(sync_messages.max(1), sync_messages * 16);

    // ---- Scatter (parallel over partitions) ----
    let mut next: Vec<VertexId> = Vec::new();
    let mut scatter_work = 0u64;
    if prog.scatter_dir() != EdgeDir::None && !changed.is_empty() {
        let results: Mutex<(Vec<VertexId>, u64)> = Mutex::new((Vec::new(), 0));
        let changed_ref = &changed;
        pool.parallel_for_ranges(nparts, Schedule::Dynamic { chunk: 1 }, |_tid, lo, hi| {
            for pi in lo..hi {
                let part = &g.partitions[pi];
                let mut local: Vec<VertexId> = Vec::with_capacity(changed_ref.len());
                let mut work = 0u64;
                let dir = prog.scatter_dir();
                for &v in changed_ref {
                    if dir == EdgeDir::Out || dir == EdgeDir::Both {
                        if let Some(outs) = part.out_edges.get(&v) {
                            work += outs.len() as u64;
                            local.extend(outs.iter().map(|&(d, _)| d));
                        }
                    }
                    if dir == EdgeDir::In || dir == EdgeDir::Both {
                        if let Some(ins) = part.in_edges.get(&v) {
                            work += ins.len() as u64;
                            local.extend(ins.iter().map(|&(s, _)| s));
                        }
                    }
                }
                let mut guard = results.lock();
                guard.0.append(&mut local);
                guard.1 += work;
            }
        });
        let (mut collected, work) = results.into_inner();
        scatter_work = work;
        collected.sort_unstable();
        collected.dedup();
        next = collected;
        trace.parallel(scatter_work.max(1), 1, scatter_work * 8);
    }

    counters.edges_traversed += edge_work + scatter_work;
    counters.vertices_touched += active.len() as u64;
    counters.iterations += 1;

    (next, StepStats { changed, edge_work, sync_messages })
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::EdgeList;

    /// Min-distance program (SSSP step).
    struct MinDist;
    impl VertexProgram for MinDist {
        type Data = f32;
        type Gather = f32;
        fn gather_dir(&self) -> EdgeDir {
            EdgeDir::In
        }
        fn gather(&self, _v: VertexId, other: &f32, w: Weight) -> f32 {
            other + w
        }
        fn merge(&self, a: f32, b: f32) -> f32 {
            a.min(b)
        }
        fn apply(&self, _v: VertexId, data: &mut f32, acc: Option<f32>) -> bool {
            match acc {
                Some(a) if a < *data => {
                    *data = a;
                    true
                }
                _ => false,
            }
        }
        fn scatter_dir(&self) -> EdgeDir {
            EdgeDir::Out
        }
    }

    #[test]
    fn superstep_relaxes_and_activates() {
        let el = EdgeList::weighted(4, vec![(0, 1), (1, 2), (0, 3)], vec![1.0, 1.0, 5.0]);
        let g = PartitionedGraph::build(&el, 2);
        let pool = ThreadPool::new(2);
        let mut dist = vec![0.0f32, f32::INFINITY, f32::INFINITY, f32::INFINITY];
        let mut c = Counters::default();
        let mut t = Trace::default();
        // Activate 1 and 3 (the root's out-neighbors, as a scatter would).
        let (next, stats) = superstep(&MinDist, &g, &[1, 3], &mut dist, &pool, &mut c, &mut t);
        assert_eq!(dist[1], 1.0);
        assert_eq!(dist[3], 5.0);
        assert_eq!(stats.changed, vec![1, 3]);
        // 1 changed -> activates its out-neighbor 2.
        assert_eq!(next, vec![2]);
        assert!(c.edges_traversed > 0);
    }

    #[test]
    fn fixpoint_reaches_shortest_paths() {
        let el = epg_generator::uniform::generate(120, 900, true, 7).symmetrized().deduplicated();
        let g = PartitionedGraph::build(&el, 4);
        let pool = ThreadPool::new(3);
        let n = el.num_vertices;
        let mut dist = vec![f32::INFINITY; n];
        dist[0] = 0.0;
        let mut c = Counters::default();
        let mut t = Trace::default();
        // Seed with the root's out-neighbors: applying at the root itself
        // changes nothing (no gather can improve distance 0), so the engine
        // signals its neighbors first.
        let mut active: Vec<VertexId> = g
            .partitions
            .iter()
            .flat_map(|p| p.out_edges.get(&0).into_iter().flatten().map(|&(d, _)| d))
            .collect();
        active.sort_unstable();
        active.dedup();
        let mut rounds = 0;
        while !active.is_empty() && rounds < 10_000 {
            rounds += 1;
            let (next, _) = superstep(&MinDist, &g, &active, &mut dist, &pool, &mut c, &mut t);
            active = next;
        }
        let csr = epg_graph::Csr::from_edge_list(&el);
        let want = epg_graph::oracle::dijkstra(&csr, 0);
        for v in 0..n {
            if want[v].is_infinite() {
                assert!(dist[v].is_infinite());
            } else {
                assert!((dist[v] - want[v]).abs() < 1e-3, "vertex {v}");
            }
        }
    }

    #[test]
    fn sync_messages_track_mirrors_of_changed() {
        let edges: Vec<_> = (1..64u32).map(|v| (0, v)).collect();
        let el = EdgeList::new(64, edges).symmetrized();
        let g = PartitionedGraph::build(&el, 8);
        let pool = ThreadPool::new(2);
        let mut dist = vec![f32::INFINITY; 64];
        dist[1] = 0.0;
        let mut c = Counters::default();
        let mut t = Trace::default();
        // Hub 0 gathers from vertex 1 and changes; it has many mirrors.
        let (_, stats) = superstep(&MinDist, &g, &[0], &mut dist, &pool, &mut c, &mut t);
        assert_eq!(stats.changed, vec![0]);
        assert_eq!(
            stats.sync_messages,
            g.replicas[0].len() as u64 - 1,
            "hub sync must touch every mirror"
        );
    }
}
