//! LCC over the vertex-cut partitioning.
//!
//! PowerGraph's clustering-coefficient toolkit runs two passes: gather each
//! vertex's neighbor-id set (merged across partitions — the replication
//! cost again), then count closures by set intersection.

use crate::partition::PartitionedGraph;
use epg_engine_api::{AlgorithmResult, Counters, RunOutput, Trace};
use epg_graph::VertexId;
use epg_parallel::{DisjointWriter, Schedule, ThreadPool};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Computes per-vertex local clustering coefficients.
pub fn lcc(g: &PartitionedGraph, pool: &ThreadPool) -> RunOutput {
    let n = g.num_vertices;
    let mut counters = Counters::default();
    let mut trace = Trace::default();

    // Pass 1: per-partition neighbor sets, merged per vertex at masters.
    let partials: Mutex<Vec<(HashMap<VertexId, (Vec<VertexId>, Vec<VertexId>)>, u64)>> =
        Mutex::new(Vec::new());
    pool.parallel_for_ranges(g.partitions.len(), Schedule::Dynamic { chunk: 1 }, |_t, lo, hi| {
        for pi in lo..hi {
            let part = &g.partitions[pi];
            // (undirected neighborhood, out-neighbors) per local vertex.
            let mut local: HashMap<VertexId, (Vec<VertexId>, Vec<VertexId>)> = HashMap::new();
            let mut work = 0u64;
            for (&u, outs) in &part.out_edges {
                work += outs.len() as u64;
                let e = local.entry(u).or_default();
                for &(v, _) in outs {
                    e.0.push(v);
                    e.1.push(v);
                }
            }
            for (&v, ins) in &part.in_edges {
                work += ins.len() as u64;
                let e = local.entry(v).or_default();
                for &(u, _) in ins {
                    e.0.push(u);
                }
            }
            partials.lock().push((local, work));
        }
    });
    let mut nbrs: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut outs: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut gather_work = 0u64;
    for (local, work) in partials.into_inner() {
        gather_work += work;
        for (v, (nb, ob)) in local {
            nbrs[v as usize].extend(nb);
            outs[v as usize].extend(ob);
        }
    }
    // Finalize sets (sort/dedup/exclude self) in parallel; each index is
    // owned by exactly one thread, so in-place mutation through the writer
    // is race-free.
    {
        let nw = DisjointWriter::new(&mut nbrs);
        let ow = DisjointWriter::new(&mut outs);
        pool.parallel_for_ranges(n, Schedule::Guided { min_chunk: 64 }, |_t, lo, hi| {
            for v in lo..hi {
                let vid = v as VertexId;
                let finalize = |mut set: Vec<VertexId>| {
                    set.retain(|&u| u != vid);
                    set.sort_unstable();
                    set.dedup();
                    set
                };
                // SAFETY: one writer per index per region; the values being
                // replaced were populated before the region started.
                unsafe {
                    nw.write(v, finalize(std::mem::take(nw.get_raw(v))));
                    ow.write(v, finalize(std::mem::take(ow.get_raw(v))));
                }
            }
        });
    }
    trace.parallel(gather_work.max(1), 1, gather_work * 16);
    trace.serial(n as u64, n as u64 * 8);

    // Pass 2: closure counting by intersection, parallel over vertices.
    let mut out = vec![0.0f64; n];
    let work = AtomicU64::new(0);
    let max_cost = AtomicU64::new(0);
    {
        let w = DisjointWriter::new(&mut out);
        let (nbrs, outs) = (&nbrs, &outs);
        pool.parallel_for_ranges(n, Schedule::Dynamic { chunk: 16 }, |_t, lo, hi| {
            let mut lw = 0u64;
            let mut lm = 0u64;
            for v in lo..hi {
                let nb = &nbrs[v];
                let d = nb.len();
                if d < 2 {
                    continue;
                }
                let mut tri = 0u64;
                let mut cost = 0u64;
                for &u in nb {
                    cost += (outs[u as usize].len() + d) as u64;
                    tri += intersect(&outs[u as usize], nb);
                }
                lw += cost;
                lm = lm.max(cost);
                // SAFETY: one writer per index.
                unsafe { w.write(v, tri as f64 / (d as f64 * (d - 1) as f64)) };
            }
            work.fetch_add(lw, Ordering::Relaxed);
            max_cost.fetch_max(lm, Ordering::Relaxed);
        });
    }
    let work = work.load(Ordering::Relaxed);
    counters.edges_traversed = gather_work + work;
    counters.vertices_touched = n as u64;
    counters.iterations = 2; // two supersteps
    counters.bytes_read = work * 8;
    counters.bytes_written = n as u64 * 8;
    trace.parallel(work.max(1), max_cost.load(Ordering::Relaxed).max(1), work * 8);
    RunOutput::new(AlgorithmResult::Coefficients(out), counters, trace)
}

fn intersect(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut c) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::{oracle, Csr, EdgeList};

    #[test]
    fn matches_oracle_on_random_directed_graph() {
        let el = epg_generator::uniform::generate(70, 500, false, 17).deduplicated();
        let g = PartitionedGraph::build(&el, 4);
        let pool = ThreadPool::new(3);
        let out = lcc(&g, &pool);
        let AlgorithmResult::Coefficients(c) = out.result else { panic!() };
        let want = oracle::lcc(&Csr::from_edge_list(&el));
        for v in 0..want.len() {
            assert!((c[v] - want[v]).abs() < 1e-12, "vertex {v}: {} vs {}", c[v], want[v]);
        }
    }

    #[test]
    fn triangle_is_one_across_partitions() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 2), (2, 0)]).symmetrized();
        let g = PartitionedGraph::build(&el, 3);
        let pool = ThreadPool::new(2);
        let out = lcc(&g, &pool);
        let AlgorithmResult::Coefficients(c) = out.result else { panic!() };
        assert!(c.iter().all(|&x| (x - 1.0).abs() < 1e-12), "{c:?}");
    }
}

/// Global triangle count (§V extension): the PowerGraph
/// `undirected_triangle_count` toolkit — gather per-partition neighbor
/// sets, merge at masters, then count by ordered intersection.
pub fn triangle_count(g: &PartitionedGraph, pool: &ThreadPool) -> RunOutput {
    let n = g.num_vertices;
    let mut counters = Counters::default();
    let mut trace = Trace::default();
    // Phase 1: merged undirected neighbor sets (replication cost charged).
    let partials: Mutex<Vec<(HashMap<VertexId, Vec<VertexId>>, u64)>> = Mutex::new(Vec::new());
    pool.parallel_for_ranges(g.partitions.len(), Schedule::Dynamic { chunk: 1 }, |_t, lo, hi| {
        for pi in lo..hi {
            let part = &g.partitions[pi];
            let mut local: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
            let mut work = 0u64;
            for (&u, outs) in &part.out_edges {
                work += outs.len() as u64;
                local.entry(u).or_default().extend(outs.iter().map(|&(v, _)| v));
            }
            for (&v, ins) in &part.in_edges {
                work += ins.len() as u64;
                local.entry(v).or_default().extend(ins.iter().map(|&(u, _)| u));
            }
            partials.lock().push((local, work));
        }
    });
    let mut higher: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut gather_work = 0u64;
    for (local, work) in partials.into_inner() {
        gather_work += work;
        for (v, nb) in local {
            higher[v as usize].extend(nb);
        }
    }
    {
        let w = DisjointWriter::new(&mut higher);
        pool.parallel_for_ranges(n, Schedule::Guided { min_chunk: 64 }, |_t, lo, hi| {
            for v in lo..hi {
                let vid = v as VertexId;
                // SAFETY: one writer per index.
                unsafe {
                    let set = w.get_raw(v);
                    set.retain(|&u| u > vid);
                    set.sort_unstable();
                    set.dedup();
                }
            }
        });
    }
    trace.parallel(gather_work.max(1), 1, gather_work * 16);
    trace.serial(n as u64, n as u64 * 8);

    // Phase 2: count.
    let total = AtomicU64::new(0);
    let work = AtomicU64::new(0);
    {
        let higher = &higher;
        pool.parallel_for_ranges(n, Schedule::Dynamic { chunk: 32 }, |_t, lo, hi| {
            let mut local = 0u64;
            let mut lw = 0u64;
            for u in lo..hi {
                let hu = &higher[u];
                for &v in hu {
                    lw += (hu.len() + higher[v as usize].len()) as u64;
                    local += intersect(hu, &higher[v as usize]);
                }
            }
            total.fetch_add(local, Ordering::Relaxed);
            work.fetch_add(lw, Ordering::Relaxed);
        });
    }
    let work = work.load(Ordering::Relaxed);
    counters.edges_traversed = gather_work + work;
    counters.vertices_touched = n as u64;
    counters.iterations = 2;
    counters.bytes_read = work * 8;
    trace.parallel(work.max(1), 1, work * 8);
    RunOutput::new(AlgorithmResult::Triangles(total.load(Ordering::Relaxed)), counters, trace)
}

#[cfg(test)]
mod tc_tests {
    use super::*;
    use epg_graph::{oracle, Csr};

    #[test]
    fn tc_matches_oracle_across_partitions() {
        let el = epg_generator::uniform::generate(140, 1800, false, 15);
        let g = PartitionedGraph::build(&el, 6);
        let pool = ThreadPool::new(3);
        let out = triangle_count(&g, &pool);
        let AlgorithmResult::Triangles(t) = out.result else { panic!() };
        assert_eq!(t, oracle::triangle_count(&Csr::from_edge_list(&el)));
    }
}
