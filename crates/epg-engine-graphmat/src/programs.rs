//! The standard algorithms written as GraphMat vertex programs.

use crate::program::GraphProgram;
use crate::spmv::{run_iteration, SpmvStats};
use epg_engine_api::{
    AlgorithmResult, Counters, DeltaTracker, Dir, RecorderCtx, RunOutput, RunParams,
    StoppingCriterion, Tracer,
};
use epg_graph::{Dcsc, VertexId, Weight, INF_DIST, NO_VERTEX};
use epg_parallel::{DisjointWriter, Schedule, ThreadPool};

fn charge(counters: &mut Counters, trace: &mut Tracer<'_>, stats: &SpmvStats) {
    counters.edges_traversed += stats.edges;
    counters.vertices_touched += stats.touched;
    trace.parallel(stats.edges.max(1), stats.max_column.max(1), stats.edges * 12);
    // The accumulator merge is the serial portion of GraphMat's backend —
    // the constant overhead the paper attributes to "the sparse matrix
    // operations" on small inputs.
    trace.serial(stats.touched.max(1), stats.touched * 16);
}

// ---------------------------------------------------------------- BFS ----

#[derive(Clone, Copy)]
struct BfsValue {
    parent: VertexId,
    level: u32,
}

struct BfsProgram {
    depth: u32,
}

impl GraphProgram for BfsProgram {
    type VertexValue = BfsValue;
    type Message = VertexId;
    type Accum = VertexId;
    fn send(&self, v: VertexId, _value: &BfsValue) -> VertexId {
        v
    }
    fn process(&self, msg: &VertexId, _w: Weight, _dst: VertexId) -> VertexId {
        *msg
    }
    fn reduce(&self, a: VertexId, b: VertexId) -> VertexId {
        a.min(b) // deterministic parent choice
    }
    fn apply(&self, acc: VertexId, _v: VertexId, value: &mut BfsValue) -> bool {
        if value.level == u32::MAX {
            value.level = self.depth;
            value.parent = acc;
            true
        } else {
            false
        }
    }
}

/// BFS as iterated sparse matrix-vector products.
pub fn bfs(
    a: &Dcsc,
    n: usize,
    root: VertexId,
    pool: &ThreadPool,
    rec: RecorderCtx<'_>,
) -> RunOutput {
    let mut values = vec![BfsValue { parent: NO_VERTEX, level: u32::MAX }; n];
    values[root as usize].level = 0;
    let mut active = vec![root];
    let mut counters = Counters::default();
    let mut trace = Tracer::new(rec);
    let mut deltas = DeltaTracker::new();
    let mut depth = 0;
    let mut cancelled = false;
    rec.alloc_hwm("graphmat.bfs.values", n as u64 * 8);
    while !active.is_empty() {
        if pool.is_cancelled() {
            cancelled = true;
            break;
        }
        depth += 1;
        let frontier = active.len() as u64;
        let prog = BfsProgram { depth };
        let (next, stats) = run_iteration(&prog, &[a], &active, &mut values, pool);
        charge(&mut counters, &mut trace, &stats);
        counters.iterations += 1;
        deltas.flush("iteration", &counters, rec);
        // SpMSpV pushes along out-edge columns of the active set.
        rec.iteration(depth, frontier, Dir::Push);
        active = next;
    }
    counters.bytes_read = counters.edges_traversed * 12;
    counters.bytes_written = counters.vertices_touched * 8;
    deltas.flush("finalize", &counters, rec);
    RunOutput::new(
        AlgorithmResult::BfsTree {
            parent: values.iter().map(|v| v.parent).collect(),
            level: values.iter().map(|v| v.level).collect(),
        },
        counters,
        trace.into_trace(),
    )
    .cancelled(cancelled)
}

// --------------------------------------------------------------- SSSP ----

struct SsspProgram;

impl GraphProgram for SsspProgram {
    type VertexValue = Weight;
    type Message = Weight;
    type Accum = Weight;
    fn send(&self, _v: VertexId, value: &Weight) -> Weight {
        *value
    }
    fn process(&self, msg: &Weight, w: Weight, _dst: VertexId) -> Weight {
        msg + w
    }
    fn reduce(&self, a: Weight, b: Weight) -> Weight {
        a.min(b)
    }
    fn apply(&self, acc: Weight, _v: VertexId, value: &mut Weight) -> bool {
        if acc < *value {
            *value = acc;
            true
        } else {
            false
        }
    }
}

/// SSSP as iterated min-plus SpMSpV (Bellman-Ford over the semiring).
pub fn sssp(
    a: &Dcsc,
    n: usize,
    root: VertexId,
    pool: &ThreadPool,
    rec: RecorderCtx<'_>,
) -> RunOutput {
    let mut dist = vec![INF_DIST; n];
    dist[root as usize] = 0.0;
    let mut active = vec![root];
    let mut counters = Counters::default();
    let mut trace = Tracer::new(rec);
    let mut deltas = DeltaTracker::new();
    let mut round = 0u32;
    let mut cancelled = false;
    rec.alloc_hwm("graphmat.sssp.dist", n as u64 * 4);
    while !active.is_empty() {
        if pool.is_cancelled() {
            cancelled = true;
            break;
        }
        round += 1;
        let frontier = active.len() as u64;
        let (next, stats) = run_iteration(&SsspProgram, &[a], &active, &mut dist, pool);
        charge(&mut counters, &mut trace, &stats);
        counters.iterations += 1;
        deltas.flush("iteration", &counters, rec);
        rec.iteration(round, frontier, Dir::Push);
        active = next;
    }
    counters.bytes_read = counters.edges_traversed * 12;
    counters.bytes_written = counters.vertices_touched * 4;
    deltas.flush("finalize", &counters, rec);
    RunOutput::new(AlgorithmResult::Distances(dist), counters, trace.into_trace())
        .cancelled(cancelled)
}

// ----------------------------------------------------------- PageRank ----

const DAMPING: f64 = 0.85;

/// PageRank as dense SpMV over the pull matrix. GraphMat's native stopping
/// criterion is "no vertex's rank changes" (§IV-A); pass an explicit
/// criterion through [`RunParams::stopping`] to homogenize.
///
/// The first pass counts out-degrees — the "run algorithm 1 (count degree)"
/// phase in the paper's GraphMat log excerpt.
pub fn pagerank(a: &Dcsc, at: &Dcsc, n: usize, params: &RunParams<'_>) -> RunOutput {
    let pool = params.pool;
    let rec = params.recorder;
    // GraphMat's native criterion is NoChange (∞-norm at f32 granularity).
    let stopping = params.stopping.unwrap_or(StoppingCriterion::NoChange);
    let mut counters = Counters::default();
    let mut trace = Tracer::new(rec);
    let mut deltas = DeltaTracker::new();
    if n == 0 {
        return RunOutput::new(
            AlgorithmResult::Ranks { ranks: Vec::new(), iterations: 0 },
            counters,
            trace.into_trace(),
        );
    }
    rec.alloc_hwm("graphmat.pr.rank+next+contrib", n as u64 * 24);

    // Algorithm 1: count degree (an SpMV over columns of A).
    let mut out_deg = vec![0u32; n];
    for (i, &c) in a.col_ids.iter().enumerate() {
        out_deg[c as usize] = (a.col_ptr[i + 1] - a.col_ptr[i]) as u32;
    }
    trace.serial(a.num_nonempty_cols() as u64, a.num_nonempty_cols() as u64 * 8);

    // Algorithm 2: compute PageRank.
    let base = (1.0 - DAMPING) / n as f64;
    let m = a.nnz() as u64;
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let mut contrib = vec![0.0f64; n];
    let max_col =
        (0..at.num_nonempty_cols()).map(|i| at.col_ptr[i + 1] - at.col_ptr[i]).max().unwrap_or(0)
            as u64;
    let mut iterations = 0u32;
    let mut cancelled = false;
    loop {
        if pool.is_cancelled() {
            cancelled = true;
            break;
        }
        iterations += 1;
        let sink_mass = {
            let (rank_ref, deg_ref) = (&rank, &out_deg);
            pool.parallel_sum_f64(n, Schedule::Static { chunk: None }, |v| {
                if deg_ref[v] == 0 {
                    rank_ref[v]
                } else {
                    0.0
                }
            }) / n as f64
        };
        {
            let w = DisjointWriter::new(&mut contrib);
            let (rank_ref, deg_ref) = (&rank, &out_deg);
            // SAFETY: parallel_for hands each index v to exactly one worker.
            pool.parallel_for(n, Schedule::Static { chunk: None }, |v| unsafe {
                w.write(v, if deg_ref[v] > 0 { rank_ref[v] / deg_ref[v] as f64 } else { 0.0 });
            });
        }
        let fill = base + DAMPING * sink_mass;
        {
            let w = DisjointWriter::new(&mut next);
            // SAFETY: parallel_for hands each index v to exactly one worker.
            pool.parallel_for(n, Schedule::Static { chunk: None }, |v| unsafe {
                w.write(v, fill);
            });
        }
        {
            // Dense SpMV over the materialized in-edge columns; each column
            // id is unique, so writes are disjoint.
            let w = DisjointWriter::new(&mut next);
            let contrib_ref = &contrib;
            pool.parallel_for_ranges(
                at.num_nonempty_cols(),
                Schedule::Guided { min_chunk: 16 },
                |_tid, lo, hi| {
                    for ci in lo..hi {
                        let sum: f64 =
                            at.col_entries(ci).map(|(u, _)| contrib_ref[u as usize]).sum();
                        // SAFETY: one write per distinct column id.
                        unsafe {
                            w.write(at.col_ids[ci] as usize, fill + DAMPING * sum);
                        }
                    }
                },
            );
        }
        let (rank_ref, next_ref) = (&rank, &next);
        let l1 = pool.parallel_sum_f64(n, Schedule::Static { chunk: None }, |v| {
            (rank_ref[v] - next_ref[v]).abs()
        });
        let changed = pool.parallel_reduce(
            n,
            Schedule::Static { chunk: None },
            || 0u64,
            |acc, v| *acc += ((rank_ref[v] as f32) != (next_ref[v] as f32)) as u64,
            |x, y| x + y,
        );
        std::mem::swap(&mut rank, &mut next);
        counters.edges_traversed += m;
        counters.vertices_touched += n as u64;
        trace.parallel(m.max(1), max_col.max(1), m * 12 + n as u64 * 24);
        trace.parallel(n as u64, 1, n as u64 * 16);
        deltas.flush("iteration", &counters, rec);
        // Dense SpMV over the pull matrix: every vertex is active.
        rec.iteration(iterations, n as u64, Dir::Pull);
        if stopping.is_converged(l1, changed) || iterations >= params.max_iterations {
            break;
        }
    }
    counters.iterations = iterations;
    counters.bytes_read = counters.edges_traversed * 12;
    counters.bytes_written = counters.vertices_touched * 8;
    deltas.flush("finalize", &counters, rec);
    RunOutput::new(AlgorithmResult::Ranks { ranks: rank, iterations }, counters, trace.into_trace())
        .cancelled(cancelled)
}

// --------------------------------------------------------------- CDLP ----

struct CdlpProgram;

impl GraphProgram for CdlpProgram {
    type VertexValue = u64;
    type Message = u64;
    type Accum = Vec<u64>;
    fn send(&self, _v: VertexId, value: &u64) -> u64 {
        *value
    }
    fn process(&self, msg: &u64, _w: Weight, _dst: VertexId) -> Vec<u64> {
        vec![*msg]
    }
    fn reduce(&self, mut a: Vec<u64>, mut b: Vec<u64>) -> Vec<u64> {
        a.append(&mut b);
        a
    }
    fn apply(&self, acc: Vec<u64>, _v: VertexId, value: &mut u64) -> bool {
        // Most frequent label; ties broken toward the smallest label.
        let mut freq: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for l in acc {
            *freq.entry(l).or_insert(0) += 1;
        }
        if let Some((&l, _)) = freq.iter().max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0))) {
            *value = l;
        }
        true
    }
}

/// CDLP: synchronous label propagation over both edge orientations for a
/// fixed number of rounds (Graphalytics semantics).
pub fn cdlp(
    a: &Dcsc,
    at: &Dcsc,
    n: usize,
    pool: &ThreadPool,
    iterations: u32,
    rec: RecorderCtx<'_>,
) -> RunOutput {
    let mut labels: Vec<u64> = (0..n as u64).collect();
    let all: Vec<VertexId> = (0..n as VertexId).collect();
    let mut counters = Counters::default();
    let mut trace = Tracer::new(rec);
    let mut deltas = DeltaTracker::new();
    let mut cancelled = false;
    for round in 0..iterations {
        if pool.is_cancelled() {
            cancelled = true;
            break;
        }
        let (_, stats) = run_iteration(&CdlpProgram, &[a, at], &all, &mut labels, pool);
        charge(&mut counters, &mut trace, &stats);
        counters.iterations += 1;
        deltas.flush("iteration", &counters, rec);
        rec.iteration(round + 1, n as u64, Dir::Push);
    }
    counters.bytes_read = counters.edges_traversed * 16;
    counters.bytes_written = counters.vertices_touched * 8;
    deltas.flush("finalize", &counters, rec);
    RunOutput::new(AlgorithmResult::Labels(labels), counters, trace.into_trace())
        .cancelled(cancelled)
}

// ---------------------------------------------------------------- WCC ----

struct WccProgram;

impl GraphProgram for WccProgram {
    type VertexValue = u64;
    type Message = u64;
    type Accum = u64;
    fn send(&self, _v: VertexId, value: &u64) -> u64 {
        *value
    }
    fn process(&self, msg: &u64, _w: Weight, _dst: VertexId) -> u64 {
        *msg
    }
    fn reduce(&self, a: u64, b: u64) -> u64 {
        a.min(b)
    }
    fn apply(&self, acc: u64, _v: VertexId, value: &mut u64) -> bool {
        if acc < *value {
            *value = acc;
            true
        } else {
            false
        }
    }
}

/// WCC: min-label propagation over both orientations until fixpoint.
pub fn wcc(a: &Dcsc, at: &Dcsc, n: usize, pool: &ThreadPool, rec: RecorderCtx<'_>) -> RunOutput {
    let mut comp: Vec<u64> = (0..n as u64).collect();
    let mut active: Vec<VertexId> = (0..n as VertexId).collect();
    let mut counters = Counters::default();
    let mut trace = Tracer::new(rec);
    let mut deltas = DeltaTracker::new();
    let mut round = 0u32;
    let mut cancelled = false;
    while !active.is_empty() {
        if pool.is_cancelled() {
            cancelled = true;
            break;
        }
        round += 1;
        let frontier = active.len() as u64;
        let (next, stats) = run_iteration(&WccProgram, &[a, at], &active, &mut comp, pool);
        charge(&mut counters, &mut trace, &stats);
        counters.iterations += 1;
        deltas.flush("iteration", &counters, rec);
        rec.iteration(round, frontier, Dir::Push);
        active = next;
    }
    counters.bytes_read = counters.edges_traversed * 16;
    counters.bytes_written = counters.vertices_touched * 8;
    deltas.flush("finalize", &counters, rec);
    RunOutput::new(
        AlgorithmResult::Components(comp.into_iter().map(|c| c as VertexId).collect()),
        counters,
        trace.into_trace(),
    )
    .cancelled(cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::EdgeList;

    #[test]
    fn bfs_parent_choice_is_min_sender() {
        // Both 0 and 1 discover 2 in the same step: parent must be 0.
        let el = EdgeList::new(4, vec![(3, 0), (3, 1), (0, 2), (1, 2)]);
        let m = Dcsc::from_edge_list(&el);
        let pool = ThreadPool::new(4);
        let out = bfs(&m, 4, 3, &pool, RecorderCtx::none());
        let AlgorithmResult::BfsTree { parent, level } = out.result else { panic!() };
        assert_eq!(level, vec![1, 1, 2, 0]);
        assert_eq!(parent[2], 0);
    }

    #[test]
    fn wcc_active_set_shrinks_monotonically_to_empty() {
        let el = EdgeList::new(6, vec![(0, 1), (1, 2), (3, 4)]);
        let m = Dcsc::from_edge_list(&el);
        let mt = m.transpose();
        let pool = ThreadPool::new(2);
        let out = wcc(&m, &mt, 6, &pool, RecorderCtx::none());
        let AlgorithmResult::Components(c) = out.result else { panic!() };
        assert_eq!(c, vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn pagerank_trace_includes_degree_pass() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 2), (2, 0)]);
        let m = Dcsc::from_edge_list(&el);
        let mt = m.transpose();
        let pool = ThreadPool::new(1);
        let out = pagerank(&m, &mt, 3, &RunParams::new(&pool, None));
        // First trace record is the serial degree-count pass.
        assert!(!out.trace.records[0].parallel);
    }

    #[test]
    fn cdlp_runs_fixed_iterations() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 0), (2, 3), (3, 2)]);
        let m = Dcsc::from_edge_list(&el);
        let mt = m.transpose();
        let pool = ThreadPool::new(2);
        let out = cdlp(&m, &mt, 4, &pool, 7, RecorderCtx::none());
        assert_eq!(out.counters.iterations, 7);
    }
}
