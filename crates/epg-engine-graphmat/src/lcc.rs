//! LCC as a two-phase matrix kernel: neighborhood extraction from the DCSC
//! columns, then masked intersection counting (GraphMat expresses this as a
//! sequence of matrix products; the dominant cost — per-wedge intersection
//! work — is identical).

use epg_engine_api::{AlgorithmResult, Counters, RunOutput, Trace};
use epg_graph::{Dcsc, VertexId};
use epg_parallel::{DisjointWriter, Schedule, ThreadPool};
use std::sync::atomic::{AtomicU64, Ordering};

/// Computes the Graphalytics local clustering coefficient per vertex.
pub fn lcc(a: &Dcsc, at: &Dcsc, n: usize, pool: &ThreadPool) -> RunOutput {
    let mut counters = Counters::default();
    let mut trace = Trace::default();

    // Phase 1: undirected neighborhoods (columns of A merged with Aᵀ).
    let mut nbrs: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    {
        let w = DisjointWriter::new(&mut nbrs);
        pool.parallel_for_ranges(n, Schedule::Guided { min_chunk: 32 }, |_tid, lo, hi| {
            for v in lo..hi {
                let vid = v as VertexId;
                let mut nb: Vec<VertexId> = a.column(vid).to_vec();
                nb.extend_from_slice(at.column(vid));
                nb.retain(|&u| u != vid);
                nb.sort_unstable();
                nb.dedup();
                // SAFETY: one writer per index.
                unsafe { w.write(v, nb) };
            }
        });
    }
    let prep: u64 = nbrs.iter().map(|x| x.len() as u64 + 1).sum();
    trace.parallel(prep.max(1), 1, prep * 8);

    // Phase 2: wedge closure counting by sorted intersection.
    let mut out = vec![0.0f64; n];
    let work = AtomicU64::new(0);
    let max_cost = AtomicU64::new(0);
    {
        let w = DisjointWriter::new(&mut out);
        let nbrs = &nbrs;
        pool.parallel_for_ranges(n, Schedule::Dynamic { chunk: 16 }, |_tid, lo, hi| {
            let mut local_work = 0u64;
            let mut local_max = 0u64;
            for v in lo..hi {
                let nb = &nbrs[v];
                let d = nb.len();
                if d < 2 {
                    continue;
                }
                let mut tri = 0u64;
                let mut cost = 0u64;
                for &u in nb {
                    let outs = a.column(u);
                    cost += (outs.len() + d) as u64;
                    tri += intersect_count(outs, nb, u);
                }
                local_work += cost;
                local_max = local_max.max(cost);
                // SAFETY: one writer per index.
                unsafe { w.write(v, tri as f64 / (d as f64 * (d - 1) as f64)) };
            }
            work.fetch_add(local_work, Ordering::Relaxed);
            max_cost.fetch_max(local_max, Ordering::Relaxed);
        });
    }
    let work = work.load(Ordering::Relaxed);
    counters.edges_traversed = work;
    counters.vertices_touched = n as u64;
    counters.iterations = 1;
    counters.bytes_read = work * 8;
    counters.bytes_written = n as u64 * 8;
    trace.parallel(work.max(1), max_cost.load(Ordering::Relaxed).max(1), work * 8);
    RunOutput::new(AlgorithmResult::Coefficients(out), counters, trace)
}

fn intersect_count(a: &[VertexId], b: &[VertexId], exclude: VertexId) -> u64 {
    let (mut i, mut j, mut c) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        if a[i] == exclude {
            i += 1;
            continue;
        }
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::{oracle, Csr, EdgeList};

    #[test]
    fn triangle_is_one() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 2), (2, 0)]).symmetrized();
        let a = Dcsc::from_edge_list(&el);
        let at = a.transpose();
        let pool = ThreadPool::new(2);
        let out = lcc(&a, &at, 3, &pool);
        let AlgorithmResult::Coefficients(c) = out.result else { panic!() };
        assert!(c.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn directed_graph_matches_oracle() {
        let el = epg_generator::uniform::generate(60, 500, false, 11).deduplicated();
        let a = Dcsc::from_edge_list(&el);
        let at = a.transpose();
        let pool = ThreadPool::new(3);
        let out = lcc(&a, &at, el.num_vertices, &pool);
        let AlgorithmResult::Coefficients(c) = out.result else { panic!() };
        let want = oracle::lcc(&Csr::from_edge_list(&el));
        for v in 0..want.len() {
            assert!((c[v] - want[v]).abs() < 1e-12, "vertex {v}: {} vs {}", c[v], want[v]);
        }
    }
}

/// Global triangle count (§V extension): GraphMat's TC program — the same
/// ordered-intersection structure as LCC restricted to higher-numbered
/// neighborhoods, counting each triangle once.
pub fn triangle_count(a: &Dcsc, at: &Dcsc, n: usize, pool: &ThreadPool) -> RunOutput {
    let mut counters = Counters::default();
    let mut trace = Trace::default();
    let mut higher: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    {
        let w = DisjointWriter::new(&mut higher);
        pool.parallel_for_ranges(n, Schedule::Guided { min_chunk: 32 }, |_tid, lo, hi| {
            for v in lo..hi {
                let vid = v as VertexId;
                let mut set: Vec<VertexId> = a
                    .column(vid)
                    .iter()
                    .chain(at.column(vid))
                    .copied()
                    .filter(|&u| u > vid)
                    .collect();
                set.sort_unstable();
                set.dedup();
                // SAFETY: one writer per index.
                unsafe { w.write(v, set) };
            }
        });
    }
    let total = AtomicU64::new(0);
    let work = AtomicU64::new(0);
    {
        let higher = &higher;
        pool.parallel_for_ranges(n, Schedule::Dynamic { chunk: 32 }, |_tid, lo, hi| {
            let mut local = 0u64;
            let mut lw = 0u64;
            for u in lo..hi {
                let hu = &higher[u];
                for &v in hu {
                    lw += (hu.len() + higher[v as usize].len()) as u64;
                    local += intersect_count(hu, &higher[v as usize], VertexId::MAX);
                }
            }
            total.fetch_add(local, Ordering::Relaxed);
            work.fetch_add(lw, Ordering::Relaxed);
        });
    }
    let work = work.load(Ordering::Relaxed);
    counters.edges_traversed = work;
    counters.vertices_touched = n as u64;
    counters.iterations = 1;
    counters.bytes_read = work * 8;
    trace.parallel(work.max(1), 1, work * 8);
    // The final global reduction is a (tiny) serial step in GraphMat.
    trace.serial(1, 8);
    RunOutput::new(AlgorithmResult::Triangles(total.load(Ordering::Relaxed)), counters, trace)
}

#[cfg(test)]
mod tc_tests {
    use super::*;
    use epg_graph::{oracle, Csr};

    #[test]
    fn tc_matches_oracle() {
        let el = epg_generator::uniform::generate(130, 1700, false, 12);
        let a = Dcsc::from_edge_list(&el);
        let at = a.transpose();
        let pool = ThreadPool::new(3);
        let out = triangle_count(&a, &at, el.num_vertices, &pool);
        let AlgorithmResult::Triangles(t) = out.result else { panic!() };
        assert_eq!(t, oracle::triangle_count(&Csr::from_edge_list(&el)));
    }
}
