//! GraphMat's vertex-program abstraction.
//!
//! A `GraphProgram` is GraphMat's four-callback model: active vertices
//! SEND a message along their out-edges; each edge PROCESSes the message;
//! per-destination results are REDUCEd; APPLY folds the reduced value into
//! the destination's state and decides whether it activates. The backend
//! (`spmv`) executes one iteration as a masked sparse matrix-vector product.

use epg_graph::{VertexId, Weight};

/// A GraphMat-style vertex program.
pub trait GraphProgram: Sync {
    /// Per-vertex state.
    type VertexValue: Clone + Send + Sync;
    /// Message sent by active vertices.
    type Message: Clone + Send + Sync;
    /// Reduced per-destination accumulator.
    type Accum: Clone + Send + Sync;

    /// SEND: produce the message an active vertex emits this iteration.
    fn send(&self, v: VertexId, value: &Self::VertexValue) -> Self::Message;

    /// PROCESS: combine a message with the edge it crosses.
    fn process(&self, msg: &Self::Message, edge_weight: Weight, dst: VertexId) -> Self::Accum;

    /// REDUCE: merge two accumulators for the same destination
    /// (associative and commutative).
    fn reduce(&self, a: Self::Accum, b: Self::Accum) -> Self::Accum;

    /// APPLY: fold the reduced accumulator into the destination's value;
    /// return `true` if the destination becomes active next iteration.
    fn apply(&self, acc: Self::Accum, v: VertexId, value: &mut Self::VertexValue) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal "min-plus" program used to sanity-check the trait shape.
    struct MinPlus;
    impl GraphProgram for MinPlus {
        type VertexValue = f32;
        type Message = f32;
        type Accum = f32;
        fn send(&self, _v: VertexId, value: &f32) -> f32 {
            *value
        }
        fn process(&self, msg: &f32, w: Weight, _dst: VertexId) -> f32 {
            msg + w
        }
        fn reduce(&self, a: f32, b: f32) -> f32 {
            a.min(b)
        }
        fn apply(&self, acc: f32, _v: VertexId, value: &mut f32) -> bool {
            if acc < *value {
                *value = acc;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn callbacks_compose() {
        let p = MinPlus;
        let msg = p.send(0, &3.0);
        let a = p.process(&msg, 2.0, 1);
        let b = p.process(&msg, 1.0, 1);
        let red = p.reduce(a, b);
        let mut val = 10.0;
        assert!(p.apply(red, 1, &mut val));
        assert_eq!(val, 4.0);
        assert!(!p.apply(9.0, 1, &mut val));
    }
}
