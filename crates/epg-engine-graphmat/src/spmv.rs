//! The SpMSpV backend: one `GraphProgram` iteration as a masked sparse
//! matrix-vector product over the DCSC matrix.
//!
//! Active vertices form the sparse input vector; their matrix columns are
//! streamed in parallel, PROCESS/REDUCE results land in per-thread sparse
//! accumulators, accumulators merge, and APPLY runs once per touched
//! destination. The per-iteration bin/merge machinery is GraphMat's real
//! constant overhead — visible in the paper's small-graph results (§IV-C).

use crate::program::GraphProgram;
use epg_graph::{Dcsc, VertexId};
use epg_parallel::{DisjointWriter, Schedule, ThreadPool};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Work accounting for one iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpmvStats {
    /// Matrix entries processed.
    pub edges: u64,
    /// Longest single column streamed (span bound).
    pub max_column: u64,
    /// Destinations touched (accumulator size).
    pub touched: u64,
}

/// Runs one program iteration.
///
/// `matrices` lists the orientations to push along — `[A]` for pure
/// out-edge propagation, `[A, Aᵀ]` for programs whose semantics cover both
/// neighborhoods (CDLP, WCC). Returns the next active set (sorted,
/// deduplicated) and the iteration's work stats. `values` is updated in
/// place by APPLY; all SENDs observe pre-iteration values (synchronous
/// semantics).
pub fn run_iteration<P: GraphProgram>(
    prog: &P,
    matrices: &[&Dcsc],
    active: &[VertexId],
    values: &mut [P::VertexValue],
    pool: &ThreadPool,
) -> (Vec<VertexId>, SpmvStats) {
    // --- SEND + PROCESS + per-thread REDUCE ---
    let partials: Mutex<Vec<(HashMap<VertexId, P::Accum>, u64, u64)>> = Mutex::new(Vec::new());
    let values_ref: &[P::VertexValue] = values;
    pool.parallel_for_ranges(active.len(), Schedule::Guided { min_chunk: 8 }, |_tid, lo, hi| {
        let mut acc: HashMap<VertexId, P::Accum> = HashMap::new();
        let mut edges = 0u64;
        let mut max_col = 0u64;
        for &u in &active[lo..hi] {
            let msg = prog.send(u, &values_ref[u as usize]);
            for m in matrices {
                let Ok(ci) = m.col_ids.binary_search(&u) else { continue };
                let len = (m.col_ptr[ci + 1] - m.col_ptr[ci]) as u64;
                edges += len;
                max_col = max_col.max(len);
                for (dst, w) in m.col_entries(ci) {
                    let contrib = prog.process(&msg, w, dst);
                    match acc.remove(&dst) {
                        Some(prev) => {
                            acc.insert(dst, prog.reduce(prev, contrib));
                        }
                        None => {
                            acc.insert(dst, contrib);
                        }
                    }
                }
            }
        }
        partials.lock().push((acc, edges, max_col));
    });

    // --- merge per-thread accumulators ---
    let mut stats = SpmvStats::default();
    let mut merged: HashMap<VertexId, P::Accum> = HashMap::new();
    for (acc, edges, max_col) in partials.into_inner() {
        stats.edges += edges;
        stats.max_column = stats.max_column.max(max_col);
        for (dst, contrib) in acc {
            match merged.remove(&dst) {
                Some(prev) => {
                    merged.insert(dst, prog.reduce(prev, contrib));
                }
                None => {
                    merged.insert(dst, contrib);
                }
            }
        }
    }
    stats.touched = merged.len() as u64;

    // --- APPLY, parallel over touched destinations (unique per key) ---
    let entries: Vec<(VertexId, P::Accum)> = merged.into_iter().collect();
    let next: Mutex<Vec<VertexId>> = Mutex::new(Vec::new());
    {
        let cell = DisjointWriter::new(values);
        pool.parallel_for_ranges(
            entries.len(),
            Schedule::Static { chunk: None },
            |_tid, lo, hi| {
                let mut local = Vec::with_capacity(hi - lo);
                for (v, acc) in &entries[lo..hi] {
                    // SAFETY: keys are unique after the merge, so each index is
                    // mutated by exactly one thread.
                    let val = unsafe { cell.get_raw(*v as usize) };
                    if prog.apply(acc.clone(), *v, val) {
                        local.push(*v);
                    }
                }
                if !local.is_empty() {
                    next.lock().append(&mut local);
                }
            },
        );
    }
    let mut next = next.into_inner();
    next.sort_unstable();
    next.dedup();
    (next, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::EdgeList;

    /// Min-plus program = Bellman-Ford step.
    struct MinPlus;
    impl GraphProgram for MinPlus {
        type VertexValue = f32;
        type Message = f32;
        type Accum = f32;
        fn send(&self, _v: VertexId, value: &f32) -> f32 {
            *value
        }
        fn process(&self, msg: &f32, w: f32, _dst: VertexId) -> f32 {
            msg + w
        }
        fn reduce(&self, a: f32, b: f32) -> f32 {
            a.min(b)
        }
        fn apply(&self, acc: f32, _v: VertexId, value: &mut f32) -> bool {
            if acc < *value {
                *value = acc;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn one_iteration_relaxes_root_edges() {
        let el = EdgeList::weighted(4, vec![(0, 1), (0, 2), (2, 3)], vec![1.0, 4.0, 1.0]);
        let m = Dcsc::from_edge_list(&el);
        let pool = ThreadPool::new(2);
        let mut dist = vec![f32::INFINITY; 4];
        dist[0] = 0.0;
        let (next, stats) = run_iteration(&MinPlus, &[&m], &[0], &mut dist, &pool);
        assert_eq!(next, vec![1, 2]);
        assert_eq!(dist, vec![0.0, 1.0, 4.0, f32::INFINITY]);
        assert_eq!(stats.edges, 2);
        assert_eq!(stats.touched, 2);
    }

    #[test]
    fn iterating_to_fixpoint_gives_shortest_paths() {
        let el =
            EdgeList::weighted(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)], vec![1.0, 1.0, 5.0, 1.0]);
        let m = Dcsc::from_edge_list(&el);
        let pool = ThreadPool::new(3);
        let mut dist = vec![f32::INFINITY; 4];
        dist[0] = 0.0;
        let mut active = vec![0];
        while !active.is_empty() {
            let (next, _) = run_iteration(&MinPlus, &[&m], &active, &mut dist, &pool);
            active = next;
        }
        assert_eq!(dist, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn reduce_merges_parallel_contributions() {
        // Two sources reach the same destination in one iteration; the
        // smaller must win regardless of thread interleaving.
        let el = EdgeList::weighted(3, vec![(0, 2), (1, 2)], vec![5.0, 3.0]);
        let m = Dcsc::from_edge_list(&el);
        let pool = ThreadPool::new(4);
        let mut dist = vec![0.0, 0.0, f32::INFINITY];
        let (next, stats) = run_iteration(&MinPlus, &[&m], &[0, 1], &mut dist, &pool);
        assert_eq!(next, vec![2]);
        assert_eq!(dist[2], 3.0);
        assert_eq!(stats.touched, 1);
    }

    #[test]
    fn dual_matrix_pushes_both_directions() {
        let el = EdgeList::weighted(3, vec![(1, 0), (1, 2)], vec![1.0, 1.0]);
        let m = Dcsc::from_edge_list(&el);
        let mt = m.transpose();
        let pool = ThreadPool::new(2);
        // Activate vertex 0; pushing along A alone reaches nothing (0 has
        // no out-edges), along [A, Aᵀ] it reaches 1.
        let mut dist = vec![0.0, f32::INFINITY, f32::INFINITY];
        let (next, _) = run_iteration(&MinPlus, &[&m, &mt], &[0], &mut dist, &pool);
        assert_eq!(next, vec![1]);
    }

    #[test]
    fn empty_active_set_is_noop() {
        let el = EdgeList::new(2, vec![(0, 1)]);
        let m = Dcsc::from_edge_list(&el);
        let pool = ThreadPool::new(1);
        let mut vals = vec![1.0f32, 2.0];
        let (next, stats) = run_iteration(&MinPlus, &[&m], &[], &mut vals, &pool);
        assert!(next.is_empty());
        assert_eq!(stats, SpmvStats::default());
        assert_eq!(vals, vec![1.0, 2.0]);
    }
}
