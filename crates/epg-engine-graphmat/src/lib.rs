//! GraphMat-style engine.
//!
//! Models GraphMat (Sundaram et al., VLDB'15, §III-C item 4): graph
//! algorithms are written as *vertex programs* which the backend maps onto
//! generalized sparse matrix-vector products over a doubly-compressed
//! sparse matrix ([`epg_graph::Dcsc`]). This crate is a mini-GraphBLAS:
//!
//! - [`program::GraphProgram`] — GraphMat's SEND / PROCESS / REDUCE / APPLY
//!   abstraction;
//! - [`spmv`] — the SpMSpV backend that schedules a program iteration as a
//!   masked matrix-vector product;
//! - [`programs`] — BFS, SSSP, PR, CDLP, and WCC written as programs;
//! - LCC as a two-phase matrix kernel.
//!
//! Architectural signatures the paper observes and this engine reproduces:
//! the SpMV machinery has real constant overhead per iteration ("the
//! overhead of the sparse matrix operations... may pay off for larger
//! datasets", §IV-C); PageRank's *native* stopping criterion is "run until
//! **no** vertex's rank changes" (§IV-A), so with `RunParams::stopping =
//! None` this engine iterates far longer than the others — Fig. 4's
//! iteration-count gap; and PageRank first runs a degree-count pass, which
//! is exactly the "run algorithm 1 (count degree)" line in the paper's
//! GraphMat log excerpt.

#![allow(clippy::needless_range_loop, clippy::type_complexity)]
#![warn(missing_docs)]
pub mod program;
pub mod programs;
pub mod spmv;

mod lcc;

use epg_engine_api::{logfmt::LogStyle, Algorithm, Engine, EngineInfo, RunOutput, RunParams};
use epg_graph::{ingest, Dcsc, EdgeList};
use epg_parallel::ThreadPool;
use std::path::Path;

/// The GraphMat-style engine.
pub struct GraphMatEngine {
    edge_list: Option<EdgeList>,
    /// Entry (dst, src): columns hold out-edges, used for push iteration.
    matrix: Option<Dcsc>,
    /// Entry (src, dst): columns hold in-edges, used for pull iteration.
    matrix_t: Option<Dcsc>,
    num_vertices: usize,
}

impl GraphMatEngine {
    /// Creates an empty engine.
    pub fn new() -> GraphMatEngine {
        GraphMatEngine { edge_list: None, matrix: None, matrix_t: None, num_vertices: 0 }
    }

    /// The push-direction matrix (columns = out-edges).
    pub fn matrix(&self) -> &Dcsc {
        self.matrix.as_ref().expect("graph not constructed")
    }

    /// The pull-direction matrix (columns = in-edges).
    pub fn matrix_t(&self) -> &Dcsc {
        self.matrix_t.as_ref().expect("graph not constructed")
    }
}

impl Default for GraphMatEngine {
    fn default() -> Self {
        GraphMatEngine::new()
    }
}

impl Engine for GraphMatEngine {
    fn info(&self) -> EngineInfo {
        EngineInfo {
            name: "GraphMat",
            representation: "DCSC sparse matrix",
            parallelism: "OpenMP-style worksharing over matrix segments",
            distributed_capable: false, // v1.0, as used by the paper
            requires_proprietary_compiler: true, // "GraphMat requires the Intel compiler" (§VI)
        }
    }

    fn supports(&self, algo: Algorithm) -> bool {
        // All six Table I columns, plus triangle counting (GraphMat ships a
        // TC reference program); no betweenness centrality in v1.0.
        algo != Algorithm::Bc
    }

    fn load_file(&mut self, path: &Path, pool: &ThreadPool) -> std::io::Result<()> {
        let el = ingest::read_binary_file_parallel(path, pool)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.load_edge_list(&el);
        Ok(())
    }

    fn load_edge_list(&mut self, el: &EdgeList) {
        self.edge_list = Some(el.clone());
        self.matrix = None;
        self.matrix_t = None;
        self.num_vertices = el.num_vertices;
    }

    fn construct(&mut self, _pool: &ThreadPool) {
        let el = self.edge_list.as_ref().expect("no edge list loaded");
        let m = Dcsc::from_edge_list(el);
        self.matrix_t = Some(m.transpose());
        self.matrix = Some(m);
    }

    fn run(&mut self, algo: Algorithm, params: &RunParams<'_>) -> RunOutput {
        let (a, at) = (self.matrix(), self.matrix_t());
        match algo {
            Algorithm::Bfs => programs::bfs(
                a,
                self.num_vertices,
                params.root.expect("BFS needs a root"),
                params.pool,
                params.recorder,
            ),
            Algorithm::Sssp => programs::sssp(
                a,
                self.num_vertices,
                params.root.expect("SSSP needs a root"),
                params.pool,
                params.recorder,
            ),
            Algorithm::PageRank => programs::pagerank(a, at, self.num_vertices, params),
            Algorithm::Cdlp => {
                programs::cdlp(a, at, self.num_vertices, params.pool, 10, params.recorder)
            }
            Algorithm::Wcc => programs::wcc(a, at, self.num_vertices, params.pool, params.recorder),
            Algorithm::Lcc => lcc::lcc(a, at, self.num_vertices, params.pool),
            Algorithm::TriangleCount => lcc::triangle_count(a, at, self.num_vertices, params.pool),
            Algorithm::Bc => unreachable!(),
        }
    }

    fn log_style(&self) -> LogStyle {
        LogStyle::GraphMat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_engine_api::{AlgorithmResult, StoppingCriterion};
    use epg_graph::{oracle, Csr};

    fn build(el: &EdgeList, pool: &ThreadPool) -> GraphMatEngine {
        let mut e = GraphMatEngine::new();
        e.load_edge_list(el);
        e.construct(pool);
        e
    }

    fn random_graph(seed: u64) -> EdgeList {
        epg_generator::uniform::generate(250, 2000, false, seed).symmetrized().deduplicated()
    }

    #[test]
    fn bfs_matches_oracle() {
        let el = random_graph(1);
        let pool = ThreadPool::new(3);
        let mut e = build(&el, &pool);
        let g = Csr::from_edge_list(&el);
        let out = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(7)));
        let AlgorithmResult::BfsTree { parent, level } = out.result else { panic!() };
        assert_eq!(level, oracle::bfs(&g, 7).level);
        epg_graph::validate::validate_bfs_tree(&g, 7, &parent).unwrap();
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let el = epg_generator::uniform::generate(200, 1400, true, 5).symmetrized().deduplicated();
        let pool = ThreadPool::new(2);
        let mut e = build(&el, &pool);
        let g = Csr::from_edge_list(&el);
        let out = e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(3)));
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        let want = oracle::dijkstra(&g, 3);
        for v in 0..want.len() {
            if want[v].is_infinite() {
                assert!(d[v].is_infinite());
            } else {
                assert!((d[v] - want[v]).abs() < 1e-3, "vertex {v}");
            }
        }
    }

    #[test]
    fn pagerank_native_stop_iterates_longer_than_l1() {
        let el = random_graph(2);
        let pool = ThreadPool::new(2);
        let mut e = build(&el, &pool);
        // Native (None) = NoChange.
        let native = e.run(Algorithm::PageRank, &RunParams::new(&pool, None));
        let mut p = RunParams::new(&pool, None);
        p.stopping = Some(StoppingCriterion::paper_default());
        let l1 = e.run(Algorithm::PageRank, &p);
        let (ni, li) = (native.result.iterations().unwrap(), l1.result.iterations().unwrap());
        assert!(ni >= li, "native {ni} vs L1 {li}");
        // Ranks still correct.
        let AlgorithmResult::Ranks { ranks, .. } = l1.result else { panic!() };
        let (want, _) = oracle::pagerank(&Csr::from_edge_list(&el), 6e-8, 300);
        for v in 0..want.len() {
            assert!((ranks[v] - want[v]).abs() < 1e-5, "vertex {v}");
        }
    }

    #[test]
    fn cdlp_matches_oracle() {
        let el = random_graph(3);
        let pool = ThreadPool::new(2);
        let mut e = build(&el, &pool);
        let out = e.run(Algorithm::Cdlp, &RunParams::new(&pool, None));
        let AlgorithmResult::Labels(l) = out.result else { panic!() };
        assert_eq!(l, oracle::cdlp(&Csr::from_edge_list(&el), 10));
    }

    #[test]
    fn wcc_matches_oracle() {
        let el = epg_generator::uniform::generate(300, 400, false, 4);
        let pool = ThreadPool::new(3);
        let mut e = build(&el, &pool);
        let out = e.run(Algorithm::Wcc, &RunParams::new(&pool, None));
        let AlgorithmResult::Components(c) = out.result else { panic!() };
        assert_eq!(c, oracle::wcc(&Csr::from_edge_list(&el)));
    }

    #[test]
    fn lcc_matches_oracle() {
        let el = epg_generator::uniform::generate(100, 800, false, 6);
        let pool = ThreadPool::new(2);
        let mut e = build(&el, &pool);
        let out = e.run(Algorithm::Lcc, &RunParams::new(&pool, None));
        let AlgorithmResult::Coefficients(c) = out.result else { panic!() };
        let want = oracle::lcc(&Csr::from_edge_list(&el));
        for v in 0..want.len() {
            assert!((c[v] - want[v]).abs() < 1e-9, "vertex {v}");
        }
    }

    #[test]
    fn metadata_reflects_icc_requirement() {
        let e = GraphMatEngine::new();
        assert!(e.info().requires_proprietary_compiler);
        assert_eq!(e.log_style(), LogStyle::GraphMat);
    }
}
