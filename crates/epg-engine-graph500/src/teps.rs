//! TEPS (traversed edges per second) statistics.
//!
//! The Graph500 reports its headline number as the **harmonic mean** of
//! per-root TEPS, with the standard deviation computed on the reciprocals
//! (the spec's prescribed estimator). The harness uses these for the
//! Graph500 rows of its reports.

/// Summary statistics over a set of per-root BFS runs.
#[derive(Clone, Debug, PartialEq)]
pub struct TepsStats {
    /// Number of BFS runs.
    pub runs: usize,
    /// Input-scale edge count used as the numerator.
    pub edges: u64,
    /// Minimum per-root TEPS.
    pub min: f64,
    /// Maximum per-root TEPS.
    pub max: f64,
    /// Harmonic mean of TEPS (the official statistic).
    pub harmonic_mean: f64,
    /// Harmonic standard deviation (from the reciprocal-space stddev).
    pub harmonic_stddev: f64,
}

impl TepsStats {
    /// Computes TEPS statistics from per-root kernel times (seconds) on a
    /// graph with `edges` undirected input edges. Panics on empty input or
    /// non-positive times.
    pub fn from_times(edges: u64, times: &[f64]) -> TepsStats {
        assert!(!times.is_empty(), "need at least one run");
        assert!(times.iter().all(|&t| t > 0.0), "times must be positive");
        let teps: Vec<f64> = times.iter().map(|&t| edges as f64 / t).collect();
        // Harmonic mean via the mean of reciprocals = mean of times / edges.
        let recip_mean = teps.iter().map(|x| 1.0 / x).sum::<f64>() / teps.len() as f64;
        let hmean = 1.0 / recip_mean;
        let recip_var = teps.iter().map(|x| (1.0 / x - recip_mean).powi(2)).sum::<f64>()
            / (teps.len().max(2) - 1) as f64;
        // Delta-method propagation back to TEPS space, as the spec's
        // reference statistics code does.
        let hstd = recip_var.sqrt() * hmean * hmean;
        TepsStats {
            runs: times.len(),
            edges,
            min: teps.iter().cloned().fold(f64::INFINITY, f64::min),
            max: teps.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            harmonic_mean: hmean,
            harmonic_stddev: hstd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_times_give_exact_teps() {
        let s = TepsStats::from_times(1_000_000, &[0.5, 0.5, 0.5]);
        assert_eq!(s.runs, 3);
        assert!((s.harmonic_mean - 2_000_000.0).abs() < 1e-6);
        assert!((s.min - s.max).abs() < 1e-6);
        assert!(s.harmonic_stddev.abs() < 1e-3);
    }

    #[test]
    fn harmonic_mean_below_arithmetic_for_spread_times() {
        let s = TepsStats::from_times(100, &[0.1, 0.4]);
        let arith = (100.0 / 0.1 + 100.0 / 0.4) / 2.0;
        assert!(s.harmonic_mean < arith);
        // Harmonic mean of TEPS = edges / mean time = 100 / 0.25 = 400.
        assert!((s.harmonic_mean - 400.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_ordering() {
        let s = TepsStats::from_times(10, &[1.0, 2.0, 5.0]);
        assert!(s.min <= s.harmonic_mean && s.harmonic_mean <= s.max);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_time_rejected() {
        let _ = TepsStats::from_times(10, &[0.0]);
    }
}

impl TepsStats {
    /// Renders the official Graph500 results block (the `output_results`
    /// format of the reference code): scale/edgefactor, construction time,
    /// and the per-root time/TEPS statistics.
    pub fn official_output(
        &self,
        scale: u32,
        edge_factor: u32,
        construction_s: f64,
        times: &[f64],
    ) -> String {
        let mut sorted = times.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let q = |p: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let h = (sorted.len() - 1) as f64 * p;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
        };
        let mean = sorted.iter().sum::<f64>() / sorted.len().max(1) as f64;
        format!(
            "SCALE:                          {scale}\n\
             edgefactor:                     {edge_factor}\n\
             NBFS:                           {}\n\
             construction_time:              {construction_s:.8}\n\
             min_time:                       {:.8}\n\
             firstquartile_time:             {:.8}\n\
             median_time:                    {:.8}\n\
             thirdquartile_time:             {:.8}\n\
             max_time:                       {:.8}\n\
             mean_time:                      {mean:.8}\n\
             min_TEPS:                       {:.6e}\n\
             harmonic_mean_TEPS:             {:.6e}\n\
             harmonic_stddev_TEPS:           {:.6e}\n\
             max_TEPS:                       {:.6e}\n",
            self.runs,
            sorted.first().copied().unwrap_or(0.0),
            q(0.25),
            q(0.5),
            q(0.75),
            sorted.last().copied().unwrap_or(0.0),
            self.min,
            self.harmonic_mean,
            self.harmonic_stddev,
            self.max,
        )
    }
}

#[cfg(test)]
mod official_tests {
    use super::*;

    #[test]
    fn official_block_has_spec_fields() {
        let times = [0.5, 0.25, 1.0, 0.75];
        let s = TepsStats::from_times(1_000_000, &times);
        let block = s.official_output(22, 16, 3.4, &times);
        for field in [
            "SCALE:",
            "edgefactor:",
            "NBFS:",
            "construction_time:",
            "median_time:",
            "harmonic_mean_TEPS:",
        ] {
            assert!(block.contains(field), "missing {field}");
        }
        assert!(block.contains("NBFS:                           4"));
        // Median of {0.25,0.5,0.75,1.0} = 0.625.
        assert!(block.contains("median_time:                    0.62500000"));
    }
}
