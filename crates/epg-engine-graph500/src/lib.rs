//! Graph500 reference-style engine.
//!
//! Mirrors the OpenMP reference implementation (~v2.1.4) the paper uses
//! (§III-C item 1): Benchmark 1 ("Search") has two timed kernels — *graph
//! construction* from an unsorted edge list in RAM, run **once**, and
//! *BFS*, run per sampled root. The reference BFS is a level-synchronous
//! top-down queue sweep over CSR (no direction optimization — one reason
//! GAP overtakes it in Fig. 2). After every BFS the specification's
//! validation checks run on the parent tree (untimed); this engine runs
//! them by default.
//!
//! Because the Graph500 generates its input in memory, the engine performs
//! no file I/O during `ReadFile` beyond materializing the edge list — the
//! paper notes this makes its short runs "more sensitive to spikes in CPU
//! usage" (§IV-B).

#![warn(missing_docs)]
mod bfs;
pub mod teps;

use epg_engine_api::{logfmt::LogStyle, Algorithm, Engine, EngineInfo, RunOutput, RunParams};
use epg_graph::{ingest, validate, Csr, EdgeList};
use epg_parallel::ThreadPool;
use std::path::Path;

/// Graph500 engine configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph500Config {
    /// Run the spec's five validation checks after each BFS (untimed in
    /// the real benchmark; they run outside the harness's timers too).
    pub validate: bool,
}

impl Default for Graph500Config {
    fn default() -> Self {
        Graph500Config { validate: true }
    }
}

/// The Graph500-style engine. BFS only.
pub struct Graph500Engine {
    /// Configuration.
    pub config: Graph500Config,
    edge_list: Option<EdgeList>,
    csr: Option<Csr>,
}

impl Graph500Engine {
    /// Creates an engine with default configuration (validation on).
    pub fn new() -> Graph500Engine {
        Graph500Engine { config: Graph500Config::default(), edge_list: None, csr: None }
    }

    /// Creates an engine with explicit configuration.
    pub fn with_config(config: Graph500Config) -> Graph500Engine {
        Graph500Engine { config, edge_list: None, csr: None }
    }

    fn csr(&self) -> &Csr {
        self.csr.as_ref().expect("graph not constructed; call construct()")
    }
}

impl Default for Graph500Engine {
    fn default() -> Self {
        Graph500Engine::new()
    }
}

impl Engine for Graph500Engine {
    fn info(&self) -> EngineInfo {
        EngineInfo {
            name: "Graph500",
            representation: "CSR",
            parallelism: "OpenMP-style worksharing",
            distributed_capable: false, // we use only the OpenMP reference (§III-C)
            requires_proprietary_compiler: false,
        }
    }

    fn supports(&self, algo: Algorithm) -> bool {
        algo == Algorithm::Bfs
    }

    fn load_file(&mut self, path: &Path, pool: &ThreadPool) -> std::io::Result<()> {
        let el = ingest::read_binary_file_parallel(path, pool)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.load_edge_list(&el);
        Ok(())
    }

    fn load_edge_list(&mut self, el: &EdgeList) {
        self.edge_list = Some(el.clone());
        self.csr = None;
    }

    fn construct(&mut self, pool: &ThreadPool) {
        // Kernel 1: unsorted edge list -> adjacency. The spec treats edges
        // as undirected, so construction symmetrizes. The two-pass parallel
        // build is byte-identical to the serial counting sort, so using the
        // pool changes timing only, never the adjacency.
        let el = self.edge_list.as_ref().expect("no edge list loaded");
        self.csr = Some(Csr::from_edge_list_parallel(&el.symmetrized(), pool));
    }

    fn run(&mut self, algo: Algorithm, params: &RunParams<'_>) -> RunOutput {
        assert!(self.supports(algo), "Graph500 implements only BFS");
        let root = params.root.expect("BFS needs a root");
        let out = bfs::top_down_bfs(self.csr(), root, params.pool, params.recorder);
        if self.config.validate {
            let epg_engine_api::AlgorithmResult::BfsTree { parent, .. } = &out.result else {
                unreachable!()
            };
            validate::validate_bfs_tree(self.csr(), root, parent)
                .expect("Graph500 BFS validation failed");
        }
        out
    }

    fn log_style(&self) -> LogStyle {
        LogStyle::Graph500
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_engine_api::AlgorithmResult;
    use epg_graph::oracle;

    fn kron(scale: u32) -> EdgeList {
        epg_generator::kronecker::generate(
            &epg_generator::kronecker::KroneckerConfig {
                scale,
                edge_factor: 8,
                ..Default::default()
            },
            21,
        )
    }

    #[test]
    fn bfs_levels_match_oracle_on_symmetrized_graph() {
        let el = kron(9);
        let pool = ThreadPool::new(3);
        let mut e = Graph500Engine::new();
        e.load_edge_list(&el);
        e.construct(&pool);
        let sym = Csr::from_edge_list(&el.symmetrized());
        let root = epg_graph::degree::sample_roots(&el, 1, 5)[0];
        let out = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(root)));
        let AlgorithmResult::BfsTree { level, .. } = out.result else { panic!() };
        assert_eq!(level, oracle::bfs(&sym, root).level);
    }

    #[test]
    fn validation_runs_by_default() {
        // validate=true is exercised in the test above (no panic). Check
        // the flag defaults and can be turned off.
        assert!(Graph500Engine::new().config.validate);
        let e = Graph500Engine::with_config(Graph500Config { validate: false });
        assert!(!e.config.validate);
    }

    #[test]
    fn only_bfs_supported() {
        let e = Graph500Engine::new();
        assert!(e.supports(Algorithm::Bfs));
        for a in
            [Algorithm::Sssp, Algorithm::PageRank, Algorithm::Cdlp, Algorithm::Lcc, Algorithm::Wcc]
        {
            assert!(!e.supports(a));
        }
    }

    #[test]
    #[should_panic(expected = "only BFS")]
    fn running_unsupported_algorithm_panics() {
        let el = kron(5);
        let pool = ThreadPool::new(1);
        let mut e = Graph500Engine::new();
        e.load_edge_list(&el);
        e.construct(&pool);
        let _ = e.run(Algorithm::PageRank, &RunParams::new(&pool, None));
    }

    #[test]
    fn construction_symmetrizes() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 2)]);
        let pool = ThreadPool::new(1);
        let mut e = Graph500Engine::new();
        e.load_edge_list(&el);
        e.construct(&pool);
        // From vertex 2 we can reach 0 because edges are undirected.
        let out = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(2)));
        let AlgorithmResult::BfsTree { level, .. } = out.result else { panic!() };
        assert_eq!(level, vec![2, 1, 0]);
    }
}
