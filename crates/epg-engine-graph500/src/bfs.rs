//! Kernel 2: level-synchronous top-down BFS.
//!
//! The reference code keeps a shared output queue per level and claims
//! vertices with compare-and-swap on the parent array. Scheduling is plain
//! static worksharing, as in the reference's `#pragma omp parallel for`.

use epg_engine_api::{
    AlgorithmResult, Counters, DeltaTracker, Dir, RecorderCtx, RunOutput, Tracer,
};
use epg_graph::{Csr, VertexId, NO_VERTEX};
use epg_parallel::{Schedule, ThreadPool};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Runs top-down BFS from `root`.
pub fn top_down_bfs(g: &Csr, root: VertexId, pool: &ThreadPool, rec: RecorderCtx<'_>) -> RunOutput {
    let n = g.num_vertices();
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NO_VERTEX)).collect();
    let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    parent[root as usize].store(root, Ordering::Relaxed);
    level[root as usize].store(0, Ordering::Relaxed);
    rec.alloc_hwm("graph500.bfs.parent+level", n as u64 * 8);

    let mut counters = Counters::default();
    let mut trace = Tracer::new(rec);
    let mut deltas = DeltaTracker::new();
    let mut frontier = vec![root];
    let mut depth = 0u32;
    let mut cancelled = false;

    while !frontier.is_empty() {
        if pool.is_cancelled() {
            cancelled = true;
            break;
        }
        depth += 1;
        let checked = AtomicU64::new(0);
        let max_deg = AtomicU64::new(0);
        let next: Mutex<Vec<VertexId>> = Mutex::new(Vec::with_capacity(frontier.len()));
        pool.parallel_for_ranges(
            frontier.len(),
            Schedule::Static { chunk: None },
            |_tid, lo, hi| {
                let mut local: Vec<VertexId> = Vec::with_capacity(hi - lo);
                let mut local_checked = 0u64;
                let mut local_max = 0u64;
                for &u in &frontier[lo..hi] {
                    local_max = local_max.max(g.out_degree(u) as u64);
                    for &v in g.neighbors(u) {
                        local_checked += 1;
                        if parent[v as usize].load(Ordering::Relaxed) == NO_VERTEX
                            && parent[v as usize]
                                .compare_exchange(
                                    NO_VERTEX,
                                    u,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                        {
                            level[v as usize].store(depth, Ordering::Relaxed);
                            local.push(v);
                        }
                    }
                }
                checked.fetch_add(local_checked, Ordering::Relaxed);
                max_deg.fetch_max(local_max, Ordering::Relaxed);
                if !local.is_empty() {
                    next.lock().append(&mut local);
                }
            },
        );
        let checked = checked.load(Ordering::Relaxed);
        let next = next.into_inner();
        counters.edges_traversed += checked;
        counters.vertices_touched += next.len() as u64;
        counters.iterations += 1;
        trace.parallel(
            checked.max(1),
            max_deg.load(Ordering::Relaxed).max(1),
            checked * 8 + next.len() as u64 * 12,
        );
        deltas.flush("iteration", &counters, rec);
        rec.iteration(depth, frontier.len() as u64, Dir::Push);
        frontier = next;
    }

    counters.bytes_read = counters.edges_traversed * 8;
    counters.bytes_written = counters.vertices_touched * 12;
    deltas.flush("finalize", &counters, rec);
    parent[root as usize].store(NO_VERTEX, Ordering::Relaxed);
    RunOutput::new(
        AlgorithmResult::BfsTree {
            parent: parent.iter().map(|p| p.load(Ordering::Relaxed)).collect(),
            level: level.iter().map(|l| l.load(Ordering::Relaxed)).collect(),
        },
        counters,
        trace.into_trace(),
    )
    .cancelled(cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::{oracle, EdgeList};

    #[test]
    fn matches_oracle_on_random_graph() {
        let el = epg_generator::uniform::generate(500, 3000, false, 13).symmetrized();
        let g = Csr::from_edge_list(&el);
        let pool = ThreadPool::new(4);
        let out = top_down_bfs(&g, 3, &pool, RecorderCtx::none());
        let AlgorithmResult::BfsTree { parent, level } = out.result else { panic!() };
        assert_eq!(level, oracle::bfs(&g, 3).level);
        epg_graph::validate::validate_bfs_tree(&g, 3, &parent).unwrap();
    }

    #[test]
    fn iterations_equal_eccentricity() {
        // Path 0-1-2-3: four nonempty frontiers ([0],[1],[2],[3]); the last
        // discovers nothing but still scans its edges.
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]).symmetrized();
        let g = Csr::from_edge_list(&el);
        let pool = ThreadPool::new(1);
        let out = top_down_bfs(&g, 0, &pool, RecorderCtx::none());
        assert_eq!(out.counters.iterations, 4);
    }

    #[test]
    fn edge_traversal_count_is_sum_of_reached_degrees() {
        // Every edge out of a reached vertex is checked exactly once.
        let el = epg_generator::uniform::generate(64, 512, false, 7).symmetrized();
        let g = Csr::from_edge_list(&el);
        let pool = ThreadPool::new(2);
        let out = top_down_bfs(&g, 0, &pool, RecorderCtx::none());
        let AlgorithmResult::BfsTree { level, .. } = out.result else { panic!() };
        let expect: u64 = (0..g.num_vertices())
            .filter(|&v| level[v] != u32::MAX)
            .map(|v| g.out_degree(v as VertexId) as u64)
            .sum();
        assert_eq!(out.counters.edges_traversed, expect);
    }
}
