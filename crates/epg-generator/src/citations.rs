//! Synthetic stand-in for the SNAP `cit-Patents` dataset.
//!
//! The real dataset (NBER patent citations, 3,774,768 vertices and
//! 16,518,948 edges) is a time-ordered citation network: edges point from
//! newer patents to older ones, degree is heavy-tailed, the graph is sparse
//! (mean out-degree ~4.4) and **unweighted**. We reproduce those properties
//! with a preferential-attachment-with-recency citation process. See
//! DESIGN.md's substitution table for why this preserves the paper's use of
//! the dataset (a sparse, unweighted, real-world contrast to dota-league).

use epg_graph::{EdgeList, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Citation-graph generator parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct CitationsConfig {
    /// Number of patents (vertices).
    pub num_vertices: usize,
    /// Mean citations (out-edges) per patent; cit-Patents is ~4.38.
    pub mean_out_degree: f64,
    /// Probability a citation is drawn preferentially (by in-degree) rather
    /// than uniformly from the recent window.
    pub preferential_prob: f64,
    /// Recency window as a fraction of already-published patents.
    pub recency_window: f64,
}

impl Default for CitationsConfig {
    fn default() -> Self {
        CitationsConfig {
            num_vertices: 3_774_768 / 64,
            mean_out_degree: 4.38,
            preferential_prob: 0.6,
            recency_window: 0.25,
        }
    }
}

impl CitationsConfig {
    /// The real dataset's shape divided by `scale_div` (1 = full size).
    pub fn cit_patents_scaled(scale_div: u32) -> CitationsConfig {
        CitationsConfig {
            num_vertices: (3_774_768 / scale_div as usize).max(16),
            ..Default::default()
        }
    }
}

/// Generates the citation DAG. Edges always point from a newer vertex to a
/// strictly older one, so the output is acyclic and unweighted.
pub fn generate(cfg: &CitationsConfig, seed: u64) -> EdgeList {
    let n = cfg.num_vertices;
    assert!(n >= 2, "need at least two patents");
    let mut rng = StdRng::seed_from_u64(seed);
    let expected_edges = (n as f64 * cfg.mean_out_degree) as usize;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(expected_edges);
    // Repeated-endpoint list implements preferential attachment in O(1):
    // a vertex appears once per received citation plus once at birth.
    let mut attach_pool: Vec<VertexId> = Vec::with_capacity(expected_edges + n);
    attach_pool.push(0);
    for v in 1..n as VertexId {
        // Poisson-ish citation count via geometric mixture around the mean.
        let lam = cfg.mean_out_degree;
        let cites = sample_poisson(&mut rng, lam).min(v as u64) as usize;
        let window = ((v as f64 * cfg.recency_window).ceil() as u64).max(1);
        let mut chosen: Vec<VertexId> = Vec::with_capacity(cites);
        let mut attempts = 0;
        while chosen.len() < cites && attempts < cites * 8 {
            attempts += 1;
            let target = if rng.gen::<f64>() < cfg.preferential_prob {
                attach_pool[rng.gen_range(0..attach_pool.len())]
            } else {
                // Uniform over the recent window [v - window, v).
                (v as u64 - 1 - rng.gen_range(0..window.min(v as u64))) as VertexId
            };
            if target < v && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &t in &chosen {
            edges.push((v, t));
            attach_pool.push(t);
        }
        attach_pool.push(v);
    }
    EdgeList::new(n, edges)
}

/// Small-λ Poisson sampler by inversion (λ < ~30 here, fine numerically).
fn sample_poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // numerically unreachable guard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::degree::degree_stats;

    fn small() -> CitationsConfig {
        CitationsConfig { num_vertices: 4000, ..Default::default() }
    }

    #[test]
    fn edges_point_backward_in_time() {
        let el = generate(&small(), 1);
        for &(u, v) in &el.edges {
            assert!(v < u, "citation ({u},{v}) points forward in time");
        }
    }

    #[test]
    fn acyclic_by_construction() {
        // v < u for every edge implies a topological order exists; verify
        // no self loops as the degenerate case.
        let el = generate(&small(), 2);
        assert!(el.edges.iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn unweighted_and_sparse() {
        let el = generate(&small(), 3);
        assert!(!el.is_weighted());
        let s = degree_stats(&el);
        assert!(s.mean_degree > 2.0 && s.mean_degree < 8.0, "mean {}", s.mean_degree);
    }

    #[test]
    fn in_degree_is_heavy_tailed() {
        let el = generate(&small(), 4);
        let mut indeg = vec![0u32; el.num_vertices];
        for &(_, v) in &el.edges {
            indeg[v as usize] += 1;
        }
        let max = *indeg.iter().max().unwrap();
        let mean = el.num_edges() as f64 / el.num_vertices as f64;
        assert!(max as f64 > 8.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn no_duplicate_citations_from_one_patent() {
        let el = generate(&small(), 5);
        let mut sorted = el.edges.clone();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(sorted.len(), before);
    }

    #[test]
    fn scaled_config_tracks_real_shape() {
        let c = CitationsConfig::cit_patents_scaled(64);
        assert_eq!(c.num_vertices, 3_774_768 / 64);
        let full = CitationsConfig::cit_patents_scaled(1);
        assert_eq!(full.num_vertices, 3_774_768);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(&small(), 9), generate(&small(), 9));
    }
}
