//! Synthetic stand-in for the Game Trace Archive `dota-league` dataset.
//!
//! The real graph models co-play interactions between Defense of the
//! Ancients players: 61,670 vertices, 50,870,313 edges, average out-degree
//! 824 — *much* denser than typical real-world graphs — and **weighted**
//! (interaction multiplicities). The paper leans on it precisely for that
//! density (§III-B, §IV-C: PowerGraph's vertex-cut and GraphMat's SpMV pay
//! off on it). We reproduce it as a match-making process: players have
//! Zipf-distributed activity, matches sample small lobbies biased toward
//! similar activity ranks, and repeated pairings accumulate edge weight.

use epg_graph::{EdgeList, VertexId, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// dota-league generator parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct DotaLeagueConfig {
    /// Number of players. Full dataset: 61,670.
    pub num_vertices: usize,
    /// Target average out-degree. Full dataset: ~824.
    pub avg_degree: u32,
    /// Zipf exponent for player activity.
    pub zipf_exponent: f64,
    /// Players per match lobby.
    pub lobby_size: usize,
}

impl Default for DotaLeagueConfig {
    fn default() -> Self {
        DotaLeagueConfig {
            num_vertices: 61_670 / 32,
            avg_degree: 128,
            zipf_exponent: 0.8,
            lobby_size: 10,
        }
    }
}

impl DotaLeagueConfig {
    /// The full-size dataset's shape.
    pub fn full() -> DotaLeagueConfig {
        DotaLeagueConfig { num_vertices: 61_670, avg_degree: 824, ..Default::default() }
    }
}

/// Generates the weighted co-play graph. Symmetric by construction (each
/// pairing inserts both directions); weights count repeated pairings.
pub fn generate(cfg: &DotaLeagueConfig, seed: u64) -> EdgeList {
    let n = cfg.num_vertices;
    assert!(n >= cfg.lobby_size.max(2), "need at least one lobby of players");
    let mut rng = StdRng::seed_from_u64(seed);

    // Zipf sampling via precomputed cumulative weights over activity rank.
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for rank in 0..n {
        total += 1.0 / ((rank + 1) as f64).powf(cfg.zipf_exponent);
        cum.push(total);
    }
    let sample_player = |rng: &mut StdRng| -> VertexId {
        let x = rng.gen::<f64>() * total;
        cum.partition_point(|&c| c < x).min(n - 1) as VertexId
    };

    // Each lobby of k players contributes k*(k-1) directed pairings; run
    // enough matches to hit the requested density.
    let target_directed = n as u64 * cfg.avg_degree as u64;
    let per_match = (cfg.lobby_size * (cfg.lobby_size - 1)) as u64;
    let matches = (target_directed / per_match).max(1);

    let mut mult: HashMap<(VertexId, VertexId), u32> = HashMap::new();
    let mut lobby: Vec<VertexId> = Vec::with_capacity(cfg.lobby_size);
    for _ in 0..matches {
        lobby.clear();
        // Anchor player sets the lobby's skill neighborhood.
        let anchor = sample_player(&mut rng);
        lobby.push(anchor);
        let mut guard = 0;
        while lobby.len() < cfg.lobby_size && guard < cfg.lobby_size * 20 {
            guard += 1;
            // Mix global popularity with rank locality around the anchor.
            let cand = if rng.gen::<f64>() < 0.5 {
                sample_player(&mut rng)
            } else {
                let spread = (n / 50).max(2) as i64;
                let off = rng.gen_range(-spread..=spread);
                (anchor as i64 + off).rem_euclid(n as i64) as VertexId
            };
            if !lobby.contains(&cand) {
                lobby.push(cand);
            }
        }
        for i in 0..lobby.len() {
            for j in 0..lobby.len() {
                if i != j {
                    *mult.entry((lobby[i], lobby[j])).or_insert(0) += 1;
                }
            }
        }
    }

    let mut pairs: Vec<((VertexId, VertexId), u32)> = mult.into_iter().collect();
    pairs.sort_unstable_by_key(|&(e, _)| e);
    let mut edges = Vec::with_capacity(pairs.len());
    let mut weights = Vec::with_capacity(pairs.len());
    for ((u, v), count) in pairs {
        edges.push((u, v));
        weights.push(count as Weight);
    }
    EdgeList::weighted(n, edges, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::degree::degree_stats;

    fn small() -> DotaLeagueConfig {
        DotaLeagueConfig { num_vertices: 600, avg_degree: 60, ..Default::default() }
    }

    #[test]
    fn weighted_and_dense() {
        let el = generate(&small(), 1);
        assert!(el.is_weighted());
        let s = degree_stats(&el);
        // Dense relative to typical graphs: mean degree within 2x of target
        // (dedup of repeated pairings pulls it below the raw target).
        assert!(s.mean_degree > 15.0, "mean degree {}", s.mean_degree);
    }

    #[test]
    fn symmetric_with_symmetric_weights() {
        let el = generate(&small(), 2);
        let map: std::collections::HashMap<(VertexId, VertexId), Weight> =
            el.iter().map(|(u, v, w)| ((u, v), w)).collect();
        for (&(u, v), &w) in &map {
            assert_eq!(map.get(&(v, u)), Some(&w), "asymmetry at ({u},{v})");
        }
    }

    #[test]
    fn weights_are_positive_integers_as_multiplicities() {
        let el = generate(&small(), 3);
        for (_, _, w) in el.iter() {
            assert!(w >= 1.0 && w.fract() == 0.0, "weight {w}");
        }
    }

    #[test]
    fn popular_players_accumulate_heavier_weights() {
        let el = generate(&small(), 4);
        let max_w = el.weights.as_ref().unwrap().iter().cloned().fold(0.0f32, f32::max);
        assert!(max_w >= 2.0, "no repeated pairings (max weight {max_w})");
    }

    #[test]
    fn no_self_loops() {
        let el = generate(&small(), 5);
        assert!(el.edges.iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(&small(), 6), generate(&small(), 6));
    }

    #[test]
    fn full_config_matches_real_shape() {
        let f = DotaLeagueConfig::full();
        assert_eq!(f.num_vertices, 61_670);
        assert_eq!(f.avg_degree, 824);
    }
}
