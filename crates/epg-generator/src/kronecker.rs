//! The Graph500 Kronecker generator.
//!
//! Implements the Graph500 specification's synthetic graph: each edge is
//! placed by descending `scale` levels of a 2x2 initiator matrix with
//! probabilities `A=0.57, B=0.19, C=0.19, D=0.05` (a Kronecker graph, the
//! generalization of R-MAT the paper cites), after which vertex labels are
//! scrambled by a pseudorandom permutation so that vertex id gives no hint
//! of degree. Weighted variants draw uniform (0,1] weights, as the SSSP
//! extension of Graph500 does.

use epg_graph::{EdgeList, VertexId, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Kronecker generator parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct KroneckerConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average directed edges per vertex (Graph500: 16).
    pub edge_factor: u32,
    /// Initiator probabilities; must be positive and sum to 1.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// Draw uniform (0,1] edge weights.
    pub weighted: bool,
}

impl Default for KroneckerConfig {
    fn default() -> Self {
        // The paper's parameters (§III-B): A=0.57, B=0.19, C=0.19, D=0.05.
        KroneckerConfig { scale: 16, edge_factor: 16, a: 0.57, b: 0.19, c: 0.19, weighted: false }
    }
}

impl KroneckerConfig {
    /// D = 1 - (A + B + C).
    pub fn d(&self) -> f64 {
        1.0 - (self.a + self.b + self.c)
    }

    /// Number of vertices, `2^scale`.
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Number of directed edges, `edge_factor * 2^scale`.
    pub fn num_edges(&self) -> usize {
        self.edge_factor as usize * self.num_vertices()
    }
}

/// Feistel-style invertible scramble of vertex labels within `0..2^scale`.
/// The Graph500 permutes vertex labels after generation; a bijective bit
/// mixer gives the same effect without materializing a permutation array.
fn scramble(v: u64, scale: u32, key: u64) -> u64 {
    let mask = (1u64 << scale) - 1;
    let mut x = v & mask;
    // Additive offset first so 0 is not a fixed point (multiplication and
    // xor-shift both map 0 to 0); addition is bijective mod 2^scale.
    x = x.wrapping_add(key | 1) & mask;
    // Three rounds of multiply-xor-shift, each reduced back into range.
    for round in 0..3u64 {
        let k = key.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(round);
        // Odd multiplier: bijective mod 2^scale.
        x = x.wrapping_mul(k.wrapping_mul(2).wrapping_add(1)) & mask;
        x ^= x >> (scale / 2).max(1);
        x &= mask;
        // xor-shift above is not bijective on its own for all widths; undoing
        // is unnecessary — we only need *a* permutation, so re-mix with an
        // odd multiply keeps the map bijective: multiply is bijective, the
        // xor-shift is bijective for shifts >= 1 over `scale` bits.
    }
    x & mask
}

/// Validates the config and precomputes the conditional quadrant
/// probabilities `(ab, a_norm, c_norm)`.
fn prepare(cfg: &KroneckerConfig) -> (f64, f64, f64) {
    assert!(cfg.scale >= 1 && cfg.scale <= 32, "scale out of range");
    let (a, b, c, d) = (cfg.a, cfg.b, cfg.c, cfg.d());
    // D is defined as 1-(A+B+C), so positivity of all four is the whole
    // well-formedness condition.
    assert!(a > 0.0 && b > 0.0 && c > 0.0 && d > 0.0, "initiator must be positive");
    (a + b, a / (a + b), c / (c + d))
}

/// Draws one edge from `rng`: `scale` levels of the 2x2 recursion, then the
/// label scramble. Shared by the serial and parallel generators so the
/// distribution logic has a single source.
#[inline]
fn draw_edge(
    rng: &mut StdRng,
    cfg: &KroneckerConfig,
    seed: u64,
    (ab, a_norm, c_norm): (f64, f64, f64),
) -> (VertexId, VertexId) {
    let (mut u, mut v) = (0u64, 0u64);
    for bit in 0..cfg.scale {
        // The Graph500 v2 recursion with per-level noise-free quadrant
        // choice: pick row bit then column bit conditionally.
        let row = rng.gen::<f64>() > ab;
        let col = rng.gen::<f64>() > if row { c_norm } else { a_norm };
        u |= (row as u64) << bit;
        v |= (col as u64) << bit;
    }
    let u = scramble(u, cfg.scale, seed ^ 0xA5A5_5A5A) as VertexId;
    let v = scramble(v, cfg.scale, seed ^ 0xA5A5_5A5A) as VertexId;
    (u, v)
}

/// Uniform (0,1] weight: avoid zero-weight edges (paper §IV-A notes the
/// hazards of weights rounding to 0).
#[inline]
fn draw_weight(rng: &mut StdRng) -> Weight {
    (1.0 - rng.gen::<f32>()).max(f32::MIN_POSITIVE) as Weight
}

/// Generates a Kronecker edge list. Deterministic in `seed`.
pub fn generate(cfg: &KroneckerConfig, seed: u64) -> EdgeList {
    let probs = prepare(cfg);
    let m = cfg.num_edges();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    let mut weights = cfg.weighted.then(|| Vec::with_capacity(m));
    for _ in 0..m {
        edges.push(draw_edge(&mut rng, cfg, seed, probs));
        if let Some(ws) = weights.as_mut() {
            ws.push(draw_weight(&mut rng));
        }
    }
    EdgeList { num_vertices: cfg.num_vertices(), edges, weights }
}

/// Edges per deterministic generation block. Fixed — never derived from the
/// thread count — so parallel output is a pure function of the seed.
pub(crate) const GEN_BLOCK: usize = 8192;

/// SplitMix64 finalizer; decorrelates per-block RNG seeds.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Parallel Kronecker generation. Edges are drawn in fixed blocks of
/// [`GEN_BLOCK`], each from its own `StdRng` seeded by `mix64(seed, block)`,
/// so the result is deterministic per seed *regardless of thread count* —
/// though it is a different (equally distributed) stream than the serial
/// [`generate`], whose single-RNG sequence cannot be split.
pub fn generate_parallel(
    cfg: &KroneckerConfig,
    seed: u64,
    pool: &epg_parallel::ThreadPool,
) -> EdgeList {
    use epg_parallel::{DisjointWriter, Schedule};

    let probs = prepare(cfg);
    let m = cfg.num_edges();
    let nblocks = m.div_ceil(GEN_BLOCK);
    let mut edges = vec![(0 as VertexId, 0 as VertexId); m];
    let mut weights = cfg.weighted.then(|| vec![0.0 as Weight; m]);
    {
        let ew = DisjointWriter::new(&mut edges);
        let ww = weights.as_mut().map(|w| DisjointWriter::new(w.as_mut_slice()));
        pool.parallel_for(nblocks, Schedule::Dynamic { chunk: 1 }, |b| {
            let lo = b * GEN_BLOCK;
            let hi = ((b + 1) * GEN_BLOCK).min(m);
            let mut rng = StdRng::seed_from_u64(mix64(seed ^ mix64(b as u64 + 1)));
            let (es, mut ws) =
                // SAFETY: blocks map 1:1 to disjoint index ranges.
                unsafe { (ew.range_mut(lo, hi), ww.as_ref().map(|w| w.range_mut(lo, hi))) };
            for k in 0..hi - lo {
                es[k] = draw_edge(&mut rng, cfg, seed, probs);
                if let Some(ws) = ws.as_deref_mut() {
                    ws[k] = draw_weight(&mut rng);
                }
            }
        });
    }
    EdgeList { num_vertices: cfg.num_vertices(), edges, weights }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::degree::degree_stats;

    #[test]
    fn sizes_match_spec() {
        let cfg = KroneckerConfig { scale: 10, edge_factor: 16, ..Default::default() };
        let el = generate(&cfg, 1);
        assert_eq!(el.num_vertices, 1024);
        assert_eq!(el.num_edges(), 16 * 1024);
        assert!(!el.is_weighted());
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = KroneckerConfig { scale: 8, ..Default::default() };
        assert_eq!(generate(&cfg, 5), generate(&cfg, 5));
        assert_ne!(generate(&cfg, 5), generate(&cfg, 6));
    }

    #[test]
    fn parallel_deterministic_across_thread_counts() {
        let cfg =
            KroneckerConfig { scale: 10, edge_factor: 8, weighted: true, ..Default::default() };
        let reference = generate_parallel(&cfg, 5, &epg_parallel::ThreadPool::new(1));
        for nthreads in [2, 4] {
            let pool = epg_parallel::ThreadPool::new(nthreads);
            assert_eq!(generate_parallel(&cfg, 5, &pool), reference, "nthreads={nthreads}");
        }
        assert_ne!(generate_parallel(&cfg, 6, &epg_parallel::ThreadPool::new(2)), reference);
        assert_eq!(reference.num_vertices, cfg.num_vertices());
        assert_eq!(reference.num_edges(), cfg.num_edges());
        assert!(reference.weights.as_ref().unwrap().iter().all(|&w| w > 0.0 && w <= 1.0));
    }

    #[test]
    fn parallel_stream_keeps_kronecker_shape() {
        // The block-split stream must preserve the heavy tail, not just run.
        let cfg = KroneckerConfig { scale: 12, edge_factor: 16, ..Default::default() };
        let el = generate_parallel(&cfg, 7, &epg_parallel::ThreadPool::new(4));
        let stats = degree_stats(&el);
        assert!(stats.top1pct_edge_share > 0.10, "share {}", stats.top1pct_edge_share);
    }

    #[test]
    fn weighted_weights_in_unit_interval() {
        let cfg =
            KroneckerConfig { scale: 8, edge_factor: 4, weighted: true, ..Default::default() };
        let el = generate(&cfg, 3);
        let ws = el.weights.as_ref().unwrap();
        assert!(ws.iter().all(|&w| w > 0.0 && w <= 1.0));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Kronecker graphs are heavy-tailed: the top 1% of vertices should
        // own far more than 1% of the edges, unlike a uniform graph.
        let cfg = KroneckerConfig { scale: 12, edge_factor: 16, ..Default::default() };
        let el = generate(&cfg, 7);
        let stats = degree_stats(&el);
        assert!(
            stats.top1pct_edge_share > 0.10,
            "expected heavy tail, got share {}",
            stats.top1pct_edge_share
        );
        assert!(stats.max_degree as f64 > 20.0 * stats.mean_degree);
    }

    #[test]
    fn scramble_is_a_permutation() {
        for scale in [1u32, 2, 5, 10] {
            let n = 1u64 << scale;
            let mut seen = vec![false; n as usize];
            for v in 0..n {
                let s = scramble(v, scale, 42);
                assert!(s < n);
                assert!(!seen[s as usize], "collision at {v} (scale {scale})");
                seen[s as usize] = true;
            }
        }
    }

    #[test]
    fn scrambling_spreads_hubs_across_id_space() {
        // Without scrambling, low vertex ids get the highest degrees. After
        // scrambling, the max-degree vertex should usually not be vertex 0.
        let cfg = KroneckerConfig { scale: 10, edge_factor: 16, ..Default::default() };
        let el = generate(&cfg, 9);
        let deg = el.out_degrees();
        let argmax = deg.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0;
        assert_ne!(argmax, 0, "hub sat at vertex 0; labels look unscrambled");
    }

    #[test]
    #[should_panic(expected = "initiator must be positive")]
    fn bad_initiator_rejected() {
        let cfg = KroneckerConfig { a: 0.9, b: 0.3, c: 0.3, ..Default::default() };
        let _ = generate(&cfg, 0);
    }
}
