//! Uniform (Erdős–Rényi G(n, m)) generator, mainly for tests and as the
//! "no skew" contrast case in ablation benches.

use epg_graph::{EdgeList, VertexId, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `num_edges` directed edges with endpoints uniform over
/// `0..num_vertices` (duplicates and self-loops possible, as in a true
/// G(n, m) multigraph draw). Optional uniform (0,1] weights.
pub fn generate(num_vertices: usize, num_edges: usize, weighted: bool, seed: u64) -> EdgeList {
    assert!(num_vertices >= 1, "need at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    let mut weights = weighted.then(|| Vec::with_capacity(num_edges));
    for _ in 0..num_edges {
        let u = rng.gen_range(0..num_vertices) as VertexId;
        let v = rng.gen_range(0..num_vertices) as VertexId;
        edges.push((u, v));
        if let Some(ws) = weights.as_mut() {
            ws.push((1.0 - rng.gen::<f32>()).max(f32::MIN_POSITIVE) as Weight);
        }
    }
    EdgeList { num_vertices, edges, weights }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::degree::degree_stats;

    #[test]
    fn sizes_and_determinism() {
        let el = generate(100, 500, true, 1);
        assert_eq!(el.num_vertices, 100);
        assert_eq!(el.num_edges(), 500);
        assert_eq!(el, generate(100, 500, true, 1));
    }

    #[test]
    fn degrees_are_not_skewed() {
        let el = generate(2000, 32_000, false, 2);
        let s = degree_stats(&el);
        // Binomial degrees: the top 1% should own only slightly more than
        // 1% of edges — far from Kronecker's heavy tail.
        assert!(s.top1pct_edge_share < 0.05, "share {}", s.top1pct_edge_share);
    }
}
