//! Uniform (Erdős–Rényi G(n, m)) generator, mainly for tests and as the
//! "no skew" contrast case in ablation benches.

use epg_graph::{EdgeList, VertexId, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `num_edges` directed edges with endpoints uniform over
/// `0..num_vertices` (duplicates and self-loops possible, as in a true
/// G(n, m) multigraph draw). Optional uniform (0,1] weights.
pub fn generate(num_vertices: usize, num_edges: usize, weighted: bool, seed: u64) -> EdgeList {
    assert!(num_vertices >= 1, "need at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    let mut weights = weighted.then(|| Vec::with_capacity(num_edges));
    for _ in 0..num_edges {
        let u = rng.gen_range(0..num_vertices) as VertexId;
        let v = rng.gen_range(0..num_vertices) as VertexId;
        edges.push((u, v));
        if let Some(ws) = weights.as_mut() {
            ws.push((1.0 - rng.gen::<f32>()).max(f32::MIN_POSITIVE) as Weight);
        }
    }
    EdgeList { num_vertices, edges, weights }
}

/// Parallel uniform generation: fixed blocks of
/// [`crate::kronecker::GEN_BLOCK`] edges, each from its own block-seeded
/// `StdRng` — deterministic per seed regardless of thread count (a
/// different stream than the serial [`generate`]).
pub fn generate_parallel(
    num_vertices: usize,
    num_edges: usize,
    weighted: bool,
    seed: u64,
    pool: &epg_parallel::ThreadPool,
) -> EdgeList {
    use crate::kronecker::{mix64, GEN_BLOCK};
    use epg_parallel::{DisjointWriter, Schedule};

    assert!(num_vertices >= 1, "need at least one vertex");
    let nblocks = num_edges.div_ceil(GEN_BLOCK);
    let mut edges = vec![(0 as VertexId, 0 as VertexId); num_edges];
    let mut weights = weighted.then(|| vec![0.0 as Weight; num_edges]);
    {
        let ew = DisjointWriter::new(&mut edges);
        let ww = weights.as_mut().map(|w| DisjointWriter::new(w.as_mut_slice()));
        pool.parallel_for(nblocks, Schedule::Dynamic { chunk: 1 }, |b| {
            let lo = b * GEN_BLOCK;
            let hi = ((b + 1) * GEN_BLOCK).min(num_edges);
            let mut rng = StdRng::seed_from_u64(mix64(seed ^ mix64(b as u64 + 1)));
            let (es, mut ws) =
                // SAFETY: blocks map 1:1 to disjoint index ranges.
                unsafe { (ew.range_mut(lo, hi), ww.as_ref().map(|w| w.range_mut(lo, hi))) };
            for k in 0..hi - lo {
                let u = rng.gen_range(0..num_vertices) as VertexId;
                let v = rng.gen_range(0..num_vertices) as VertexId;
                es[k] = (u, v);
                if let Some(ws) = ws.as_deref_mut() {
                    ws[k] = (1.0 - rng.gen::<f32>()).max(f32::MIN_POSITIVE) as Weight;
                }
            }
        });
    }
    EdgeList { num_vertices, edges, weights }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::degree::degree_stats;

    #[test]
    fn parallel_deterministic_across_thread_counts() {
        let reference = generate_parallel(500, 20_000, true, 9, &epg_parallel::ThreadPool::new(1));
        for nthreads in [2, 4] {
            let pool = epg_parallel::ThreadPool::new(nthreads);
            assert_eq!(generate_parallel(500, 20_000, true, 9, &pool), reference);
        }
        assert_ne!(
            generate_parallel(500, 20_000, true, 10, &epg_parallel::ThreadPool::new(2)),
            reference
        );
        assert_eq!(reference.num_edges(), 20_000);
        assert!(reference.weights.as_ref().unwrap().iter().all(|&w| w > 0.0 && w <= 1.0));
    }

    #[test]
    fn sizes_and_determinism() {
        let el = generate(100, 500, true, 1);
        assert_eq!(el.num_vertices, 100);
        assert_eq!(el.num_edges(), 500);
        assert_eq!(el, generate(100, 500, true, 1));
    }

    #[test]
    fn degrees_are_not_skewed() {
        let el = generate(2000, 32_000, false, 2);
        let s = degree_stats(&el);
        // Binomial degrees: the top 1% should own only slightly more than
        // 1% of edges — far from Kronecker's heavy tail.
        assert!(s.top1pct_edge_share < 0.05, "share {}", s.top1pct_edge_share);
    }
}
