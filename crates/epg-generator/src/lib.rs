//! Graph generators for `easy-parallel-graph-rs`.
//!
//! Three families (§III-B and the substitution table in DESIGN.md):
//!
//! - [`kronecker`]: the Graph500 synthetic generator — a Kronecker/R-MAT
//!   recursion with initiator `A=0.57, B=0.19, C=0.19, D=0.05`, edge factor
//!   16, and scrambled vertex labels. "A graph with scale S has 2^S
//!   vertices and approximately 16 * 2^S edges."
//! - [`citations`]: a stand-in for SNAP `cit-Patents` (3,774,768 vertices /
//!   16,518,948 edges): a time-ordered preferential-attachment citation DAG,
//!   sparse and **unweighted** — the unweightedness is what produces the
//!   SSSP "N/A" cells in Table I.
//! - [`dota_league`]: a stand-in for the Game Trace Archive `dota-league`
//!   graph (61,670 vertices / 50,870,313 edges, average out-degree 824):
//!   a *dense*, **weighted** co-play multigraph collapsed to weighted edges
//!   with Zipf-popular players.
//!
//! Everything is deterministic in a `u64` seed.

#![warn(missing_docs)]
pub mod citations;
pub mod dota_league;
pub mod kronecker;
pub mod uniform;

use epg_graph::EdgeList;

/// A named, parameterized workload, the unit the harness's homogenizer
/// materializes into per-engine files.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSpec {
    /// Graph500 Kronecker graph.
    Kronecker {
        /// log2 of the vertex count.
        scale: u32,
        /// Average (directed) edges per vertex; the Graph500 uses 16.
        edge_factor: u32,
        /// Attach uniform (0,1] weights (for SSSP runs).
        weighted: bool,
    },
    /// cit-Patents stand-in. `scale_div` divides both vertex and edge
    /// counts (1 = full size).
    CitPatents {
        /// Divisor applied to the real dataset's size (power of two).
        scale_div: u32,
    },
    /// dota-league stand-in at explicit size.
    DotaLeague {
        /// Number of players (vertices). Full dataset: 61,670.
        num_vertices: usize,
        /// Average out-degree. Full dataset: ~824.
        avg_degree: u32,
    },
    /// Erdős–Rényi style uniform G(n, m), mostly for tests.
    Uniform {
        /// Vertices.
        num_vertices: usize,
        /// Directed edges.
        num_edges: usize,
        /// Attach uniform (0,1] weights.
        weighted: bool,
    },
}

impl GraphSpec {
    /// Short identifier used in log and output file names.
    pub fn name(&self) -> String {
        match self {
            GraphSpec::Kronecker { scale, weighted, .. } => {
                format!("kron{scale}{}", if *weighted { "w" } else { "" })
            }
            GraphSpec::CitPatents { scale_div } => format!("cit-Patents_div{scale_div}"),
            GraphSpec::DotaLeague { num_vertices, .. } => format!("dota-league_n{num_vertices}"),
            GraphSpec::Uniform { num_vertices, num_edges, .. } => {
                format!("uniform_{num_vertices}x{num_edges}")
            }
        }
    }

    /// True when edges carry weights (drives SSSP eligibility, as in
    /// Graphalytics: "does not perform SSSP on unweighted graphs").
    pub fn is_weighted(&self) -> bool {
        match self {
            GraphSpec::Kronecker { weighted, .. } => *weighted,
            GraphSpec::CitPatents { .. } => false,
            GraphSpec::DotaLeague { .. } => true,
            GraphSpec::Uniform { weighted, .. } => *weighted,
        }
    }

    /// Materializes the edge list.
    pub fn generate(&self, seed: u64) -> EdgeList {
        match *self {
            GraphSpec::Kronecker { scale, edge_factor, weighted } => kronecker::generate(
                &kronecker::KroneckerConfig { scale, edge_factor, weighted, ..Default::default() },
                seed,
            ),
            GraphSpec::CitPatents { scale_div } => citations::generate(
                &citations::CitationsConfig::cit_patents_scaled(scale_div),
                seed,
            ),
            GraphSpec::DotaLeague { num_vertices, avg_degree } => dota_league::generate(
                &dota_league::DotaLeagueConfig { num_vertices, avg_degree, ..Default::default() },
                seed,
            ),
            GraphSpec::Uniform { num_vertices, num_edges, weighted } => {
                uniform::generate(num_vertices, num_edges, weighted, seed)
            }
        }
    }

    /// Materializes the edge list using the pool where a parallel generator
    /// exists (Kronecker, Uniform — both deterministic per seed regardless
    /// of thread count, though a different stream than [`GraphSpec::generate`]).
    /// The citation and dota-league stand-ins model inherently sequential
    /// attachment processes and fall back to the serial path.
    pub fn generate_parallel(&self, seed: u64, pool: &epg_parallel::ThreadPool) -> EdgeList {
        match *self {
            GraphSpec::Kronecker { scale, edge_factor, weighted } => kronecker::generate_parallel(
                &kronecker::KroneckerConfig { scale, edge_factor, weighted, ..Default::default() },
                seed,
                pool,
            ),
            GraphSpec::Uniform { num_vertices, num_edges, weighted } => {
                uniform::generate_parallel(num_vertices, num_edges, weighted, seed, pool)
            }
            GraphSpec::CitPatents { .. } | GraphSpec::DotaLeague { .. } => self.generate(seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_and_stable() {
        let a = GraphSpec::Kronecker { scale: 10, edge_factor: 16, weighted: false };
        let b = GraphSpec::Kronecker { scale: 10, edge_factor: 16, weighted: true };
        assert_eq!(a.name(), "kron10");
        assert_eq!(b.name(), "kron10w");
        assert_ne!(GraphSpec::CitPatents { scale_div: 64 }.name(), a.name());
    }

    #[test]
    fn weightedness_matches_dataset_semantics() {
        assert!(!GraphSpec::CitPatents { scale_div: 64 }.is_weighted());
        assert!(GraphSpec::DotaLeague { num_vertices: 100, avg_degree: 10 }.is_weighted());
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        let spec = GraphSpec::Kronecker { scale: 8, edge_factor: 8, weighted: true };
        assert_eq!(spec.generate(11), spec.generate(11));
        assert_ne!(spec.generate(11), spec.generate(12));
    }
}
