//! Graph generators for `easy-parallel-graph-rs`.
//!
//! Three families (§III-B and the substitution table in DESIGN.md):
//!
//! - [`kronecker`]: the Graph500 synthetic generator — a Kronecker/R-MAT
//!   recursion with initiator `A=0.57, B=0.19, C=0.19, D=0.05`, edge factor
//!   16, and scrambled vertex labels. "A graph with scale S has 2^S
//!   vertices and approximately 16 * 2^S edges."
//! - [`citations`]: a stand-in for SNAP `cit-Patents` (3,774,768 vertices /
//!   16,518,948 edges): a time-ordered preferential-attachment citation DAG,
//!   sparse and **unweighted** — the unweightedness is what produces the
//!   SSSP "N/A" cells in Table I.
//! - [`dota_league`]: a stand-in for the Game Trace Archive `dota-league`
//!   graph (61,670 vertices / 50,870,313 edges, average out-degree 824):
//!   a *dense*, **weighted** co-play multigraph collapsed to weighted edges
//!   with Zipf-popular players.
//!
//! Everything is deterministic in a `u64` seed.

#![warn(missing_docs)]
pub mod adversarial;
pub mod citations;
pub mod dota_league;
pub mod kronecker;
pub mod uniform;

use epg_graph::EdgeList;

/// A named, parameterized workload, the unit the harness's homogenizer
/// materializes into per-engine files.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSpec {
    /// Graph500 Kronecker graph.
    Kronecker {
        /// log2 of the vertex count.
        scale: u32,
        /// Average (directed) edges per vertex; the Graph500 uses 16.
        edge_factor: u32,
        /// Attach uniform (0,1] weights (for SSSP runs).
        weighted: bool,
    },
    /// cit-Patents stand-in. `scale_div` divides both vertex and edge
    /// counts (1 = full size).
    CitPatents {
        /// Divisor applied to the real dataset's size (power of two).
        scale_div: u32,
    },
    /// dota-league stand-in at explicit size.
    DotaLeague {
        /// Number of players (vertices). Full dataset: 61,670.
        num_vertices: usize,
        /// Average out-degree. Full dataset: ~824.
        avg_degree: u32,
    },
    /// Erdős–Rényi style uniform G(n, m), mostly for tests.
    Uniform {
        /// Vertices.
        num_vertices: usize,
        /// Directed edges.
        num_edges: usize,
        /// Attach uniform (0,1] weights.
        weighted: bool,
    },
    /// Adversarial: detour-gadget spine punishing label-correcting queues
    /// (see [`adversarial::spfa_killer`]).
    SpfaKiller {
        /// Number of detour gadgets along the spine.
        levels: usize,
    },
    /// Adversarial: hub whose label improves with every later arrival
    /// (see [`adversarial::wrong_dijkstra_killer`]).
    WrongDijkstraKiller {
        /// Chain vertices feeding the hub.
        chain: usize,
        /// Downstream fan size behind the hub.
        fan: usize,
    },
    /// Adversarial: grid whose cheap edges trace an inward spiral (see
    /// [`adversarial::grid_swirl`]).
    GridSwirl {
        /// Grid side length (vertices = width²).
        width: usize,
    },
    /// Adversarial: long path with a few heavier chords (see
    /// [`adversarial::almost_line`]).
    AlmostLine {
        /// Path length in vertices.
        num_vertices: usize,
        /// Number of hashed chord edges.
        extra_edges: usize,
    },
    /// Adversarial: complete directed graph, all weights 0.0 (see
    /// [`adversarial::max_dense_zero`]).
    MaxDenseZero {
        /// Vertex count (edges = n·(n−1)).
        num_vertices: usize,
    },
}

impl GraphSpec {
    /// Every family name, in declaration order. Paired with
    /// [`GraphSpec::family`]'s exhaustive match and
    /// [`GraphSpec::test_corpus`], this is the registry the differential
    /// suite iterates — adding a variant without extending all three fails
    /// the registry tests.
    pub const FAMILIES: [&'static str; 9] = [
        "kronecker",
        "cit_patents",
        "dota_league",
        "uniform",
        "spfa_killer",
        "wrong_dijkstra_killer",
        "grid_swirl",
        "almost_line",
        "max_dense_zero",
    ];

    /// The adversarial SSSP families (subset of [`GraphSpec::FAMILIES`]).
    pub const ADVERSARIAL_FAMILIES: [&'static str; 5] =
        ["spfa_killer", "wrong_dijkstra_killer", "grid_swirl", "almost_line", "max_dense_zero"];

    /// Family name of this spec (size-independent, machine-friendly).
    pub fn family(&self) -> &'static str {
        match self {
            GraphSpec::Kronecker { .. } => "kronecker",
            GraphSpec::CitPatents { .. } => "cit_patents",
            GraphSpec::DotaLeague { .. } => "dota_league",
            GraphSpec::Uniform { .. } => "uniform",
            GraphSpec::SpfaKiller { .. } => "spfa_killer",
            GraphSpec::WrongDijkstraKiller { .. } => "wrong_dijkstra_killer",
            GraphSpec::GridSwirl { .. } => "grid_swirl",
            GraphSpec::AlmostLine { .. } => "almost_line",
            GraphSpec::MaxDenseZero { .. } => "max_dense_zero",
        }
    }

    /// One small instance of every family, sized for exhaustive kernel
    /// differential testing (seconds, not minutes, per kernel × family ×
    /// thread-count combination).
    pub fn test_corpus() -> Vec<GraphSpec> {
        vec![
            GraphSpec::Kronecker { scale: 7, edge_factor: 8, weighted: true },
            GraphSpec::CitPatents { scale_div: 8192 },
            GraphSpec::DotaLeague { num_vertices: 150, avg_degree: 8 },
            GraphSpec::Uniform { num_vertices: 300, num_edges: 2400, weighted: true },
            GraphSpec::SpfaKiller { levels: 60 },
            GraphSpec::WrongDijkstraKiller { chain: 40, fan: 60 },
            GraphSpec::GridSwirl { width: 12 },
            GraphSpec::AlmostLine { num_vertices: 220, extra_edges: 12 },
            GraphSpec::MaxDenseZero { num_vertices: 40 },
        ]
    }

    /// Short identifier used in log and output file names.
    pub fn name(&self) -> String {
        match self {
            GraphSpec::Kronecker { scale, weighted, .. } => {
                format!("kron{scale}{}", if *weighted { "w" } else { "" })
            }
            GraphSpec::CitPatents { scale_div } => format!("cit-Patents_div{scale_div}"),
            GraphSpec::DotaLeague { num_vertices, .. } => format!("dota-league_n{num_vertices}"),
            GraphSpec::Uniform { num_vertices, num_edges, .. } => {
                format!("uniform_{num_vertices}x{num_edges}")
            }
            GraphSpec::SpfaKiller { levels } => format!("spfa-killer_l{levels}"),
            GraphSpec::WrongDijkstraKiller { chain, fan } => {
                format!("wrong-dijkstra_c{chain}f{fan}")
            }
            GraphSpec::GridSwirl { width } => format!("grid-swirl_w{width}"),
            GraphSpec::AlmostLine { num_vertices, extra_edges } => {
                format!("almost-line_{num_vertices}+{extra_edges}")
            }
            GraphSpec::MaxDenseZero { num_vertices } => format!("max-dense-zero_{num_vertices}"),
        }
    }

    /// True when edges carry weights (drives SSSP eligibility, as in
    /// Graphalytics: "does not perform SSSP on unweighted graphs").
    pub fn is_weighted(&self) -> bool {
        match self {
            GraphSpec::Kronecker { weighted, .. } => *weighted,
            GraphSpec::CitPatents { .. } => false,
            GraphSpec::DotaLeague { .. } => true,
            GraphSpec::Uniform { weighted, .. } => *weighted,
            // Adversarial families exist for SSSP — always weighted.
            GraphSpec::SpfaKiller { .. }
            | GraphSpec::WrongDijkstraKiller { .. }
            | GraphSpec::GridSwirl { .. }
            | GraphSpec::AlmostLine { .. }
            | GraphSpec::MaxDenseZero { .. } => true,
        }
    }

    /// Materializes the edge list.
    pub fn generate(&self, seed: u64) -> EdgeList {
        match *self {
            GraphSpec::Kronecker { scale, edge_factor, weighted } => kronecker::generate(
                &kronecker::KroneckerConfig { scale, edge_factor, weighted, ..Default::default() },
                seed,
            ),
            GraphSpec::CitPatents { scale_div } => citations::generate(
                &citations::CitationsConfig::cit_patents_scaled(scale_div),
                seed,
            ),
            GraphSpec::DotaLeague { num_vertices, avg_degree } => dota_league::generate(
                &dota_league::DotaLeagueConfig { num_vertices, avg_degree, ..Default::default() },
                seed,
            ),
            GraphSpec::Uniform { num_vertices, num_edges, weighted } => {
                uniform::generate(num_vertices, num_edges, weighted, seed)
            }
            GraphSpec::SpfaKiller { levels } => adversarial::spfa_killer(levels, seed),
            GraphSpec::WrongDijkstraKiller { chain, fan } => {
                adversarial::wrong_dijkstra_killer(chain, fan)
            }
            GraphSpec::GridSwirl { width } => adversarial::grid_swirl(width, seed),
            GraphSpec::AlmostLine { num_vertices, extra_edges } => {
                adversarial::almost_line(num_vertices, extra_edges, seed)
            }
            GraphSpec::MaxDenseZero { num_vertices } => adversarial::max_dense_zero(num_vertices),
        }
    }

    /// Materializes the edge list using the pool where a parallel generator
    /// exists (Kronecker, Uniform — both deterministic per seed regardless
    /// of thread count, though a different stream than [`GraphSpec::generate`]).
    /// The citation and dota-league stand-ins model inherently sequential
    /// attachment processes and fall back to the serial path.
    pub fn generate_parallel(&self, seed: u64, pool: &epg_parallel::ThreadPool) -> EdgeList {
        match *self {
            GraphSpec::Kronecker { scale, edge_factor, weighted } => kronecker::generate_parallel(
                &kronecker::KroneckerConfig { scale, edge_factor, weighted, ..Default::default() },
                seed,
                pool,
            ),
            GraphSpec::Uniform { num_vertices, num_edges, weighted } => {
                uniform::generate_parallel(num_vertices, num_edges, weighted, seed, pool)
            }
            GraphSpec::CitPatents { .. } | GraphSpec::DotaLeague { .. } => self.generate(seed),
            // The adversarial families are index-pure: their parallel path
            // is byte-identical to the serial one, not merely a different
            // deterministic stream.
            GraphSpec::SpfaKiller { levels } => {
                adversarial::spfa_killer_parallel(levels, seed, pool)
            }
            GraphSpec::WrongDijkstraKiller { chain, fan } => {
                adversarial::wrong_dijkstra_killer_parallel(chain, fan, pool)
            }
            GraphSpec::GridSwirl { width } => adversarial::grid_swirl_parallel(width, seed, pool),
            GraphSpec::AlmostLine { num_vertices, extra_edges } => {
                adversarial::almost_line_parallel(num_vertices, extra_edges, seed, pool)
            }
            GraphSpec::MaxDenseZero { num_vertices } => {
                adversarial::max_dense_zero_parallel(num_vertices, pool)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_and_stable() {
        let a = GraphSpec::Kronecker { scale: 10, edge_factor: 16, weighted: false };
        let b = GraphSpec::Kronecker { scale: 10, edge_factor: 16, weighted: true };
        assert_eq!(a.name(), "kron10");
        assert_eq!(b.name(), "kron10w");
        assert_ne!(GraphSpec::CitPatents { scale_div: 64 }.name(), a.name());
    }

    #[test]
    fn weightedness_matches_dataset_semantics() {
        assert!(!GraphSpec::CitPatents { scale_div: 64 }.is_weighted());
        assert!(GraphSpec::DotaLeague { num_vertices: 100, avg_degree: 10 }.is_weighted());
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        let spec = GraphSpec::Kronecker { scale: 8, edge_factor: 8, weighted: true };
        assert_eq!(spec.generate(11), spec.generate(11));
        assert_ne!(spec.generate(11), spec.generate(12));
    }

    #[test]
    fn test_corpus_covers_every_family_exactly_once() {
        let corpus = GraphSpec::test_corpus();
        let mut families: Vec<&str> = corpus.iter().map(|s| s.family()).collect();
        families.sort_unstable();
        let mut want = GraphSpec::FAMILIES.to_vec();
        want.sort_unstable();
        assert_eq!(families, want, "test_corpus must hold one instance per family");
        for f in GraphSpec::ADVERSARIAL_FAMILIES {
            assert!(GraphSpec::FAMILIES.contains(&f), "adversarial family {f} unregistered");
        }
        // Corpus instances must be usable for SSSP differentials.
        for spec in &corpus {
            if spec.family() != "cit_patents" {
                assert!(spec.is_weighted(), "{} must be weighted", spec.name());
            }
        }
    }

    /// FNV-1a over the structural content of an edge list: counts, edge
    /// endpoints, and weight bits. Stable across platforms (no float
    /// formatting, no pointer order).
    fn fingerprint(el: &EdgeList) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(el.num_vertices as u64);
        eat(el.edges.len() as u64);
        for &(u, v) in &el.edges {
            eat(((u as u64) << 32) | v as u64);
        }
        if let Some(w) = &el.weights {
            for x in w {
                eat(x.to_bits() as u64);
            }
        }
        h
    }

    /// Every family's generator is a pure function of (spec, seed): the
    /// golden fingerprints below fail if a generator's output drifts —
    /// a silent drift would invalidate every recorded benchmark and every
    /// cross-session differential. Regenerate goldens deliberately when a
    /// generator change is intended.
    #[test]
    fn corpus_fingerprints_are_seed_stable() {
        let golden: &[(&str, u64)] = &[
            ("kronecker", 0xce239a670c93c3ae),
            ("cit_patents", 0xacab40aeca304c97),
            ("dota_league", 0xb8ca891cff8b3522),
            ("uniform", 0x82503da497939b81),
            ("spfa_killer", 0x5edeea9745befb53),
            ("wrong_dijkstra_killer", 0xc201c74950ea91a9),
            ("grid_swirl", 0x7b91feb15464338a),
            ("almost_line", 0xb7e0e489a73a2e08),
            ("max_dense_zero", 0x420b1633f68d45b3),
        ];
        let corpus = GraphSpec::test_corpus();
        assert_eq!(corpus.len(), golden.len(), "corpus grew: extend the golden table");
        for spec in &corpus {
            let want = golden
                .iter()
                .find(|(f, _)| *f == spec.family())
                .unwrap_or_else(|| panic!("no golden fingerprint for {}", spec.family()))
                .1;
            let el = spec.generate(42);
            assert!(el.num_edges() > 0, "{}: empty corpus instance", spec.name());
            assert_eq!(
                fingerprint(&el),
                want,
                "{}: generator output drifted (fingerprint {:#018x})",
                spec.name(),
                fingerprint(&el)
            );
            // Same seed → same bytes; different seed must not collide for
            // the seeded families.
            assert_eq!(el, spec.generate(42));
        }
    }

    /// `generate_parallel` must be deterministic at every thread count, and
    /// for the index-pure adversarial families byte-identical to the serial
    /// path (the stream-split Kronecker/Uniform generators are a different
    /// — but thread-count-independent — stream).
    #[test]
    fn generate_parallel_is_thread_count_invariant() {
        for spec in GraphSpec::test_corpus() {
            let serial = spec.generate(7);
            let reference = spec.generate_parallel(7, &epg_parallel::ThreadPool::new(1));
            for nthreads in [2usize, 4, 8] {
                let pool = epg_parallel::ThreadPool::new(nthreads);
                assert_eq!(
                    spec.generate_parallel(7, &pool),
                    reference,
                    "{}: parallel generation varies with thread count {nthreads}",
                    spec.name()
                );
            }
            if GraphSpec::ADVERSARIAL_FAMILIES.contains(&spec.family()) {
                assert_eq!(reference, serial, "{}: parallel != serial", spec.name());
            }
        }
    }

    #[test]
    fn corpus_names_are_distinct() {
        let corpus = GraphSpec::test_corpus();
        let mut names: Vec<String> = corpus.iter().map(|s| s.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), corpus.len());
    }
}
