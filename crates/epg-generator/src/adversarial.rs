//! Adversarial SSSP case families.
//!
//! Each family is engineered to punish one class of shortest-path
//! algorithm shortcut, and together they form the stress corpus for the
//! raw-speed kernel tier (DESIGN.md §13):
//!
//! - [`spfa_killer`]: a spine of detour gadgets where the direct edge is
//!   always slightly worse than a two-hop detour, forcing label-correcting
//!   queues (SPFA, naive Bellman-Ford) to re-relax the whole downstream
//!   spine once per gadget.
//! - [`wrong_dijkstra_killer`]: a hub reached by a chain of sources whose
//!   arrival order at the hub is the reverse of the relaxation order,
//!   so any "settle on first arrival" shortcut broadcasts a wrong label
//!   to a wide fan before the correction lands.
//! - [`grid_swirl`]: a square grid whose cheap edges trace an inward
//!   spiral — the shortest-path tree is a single long snake, maximizing
//!   Δ-stepping bucket rounds and frontier-based algorithms' depth.
//! - [`almost_line`]: a long path with a sprinkle of heavier chords; the
//!   diameter stays near n, the worst case for level-synchronous engines.
//! - [`max_dense_zero`]: every ordered pair at weight 0.0 — all distances
//!   tie at zero, stressing tie-breaking and monotone-queue edge cases.
//!
//! Every generator is a pure function of the edge *index* (hashed through
//! [`crate::kronecker::mix64`]), so the serial and parallel paths produce
//! byte-identical edge lists regardless of thread count — unlike the
//! stream-split RNG generators, which document a serial/parallel
//! divergence. All families are weighted (they exist for SSSP).

use crate::kronecker::{mix64, GEN_BLOCK};
use epg_graph::{EdgeList, VertexId, Weight};
use epg_parallel::{DisjointWriter, Schedule, ThreadPool};

/// Maps a hash to a uniform float in [0, 1).
#[inline]
fn unit01(h: u64) -> f32 {
    (h >> 40) as f32 / (1u64 << 24) as f32
}

/// Materializes `m` edges of an index-pure family serially.
fn materialize(
    num_vertices: usize,
    m: usize,
    f: impl Fn(usize) -> ((VertexId, VertexId), Weight),
) -> EdgeList {
    let mut edges = Vec::with_capacity(m);
    let mut weights = Vec::with_capacity(m);
    for i in 0..m {
        let ((u, v), w) = f(i);
        edges.push((u, v));
        weights.push(w);
    }
    EdgeList { num_vertices, edges, weights: Some(weights) }
}

/// Materializes the same index-pure family on the pool. Because each edge
/// is a pure function of its index, the output is byte-identical to
/// [`materialize`] for every thread count.
fn materialize_parallel(
    num_vertices: usize,
    m: usize,
    pool: &ThreadPool,
    f: impl Fn(usize) -> ((VertexId, VertexId), Weight) + Sync,
) -> EdgeList {
    let mut edges = vec![(0 as VertexId, 0 as VertexId); m];
    let mut weights = vec![0.0 as Weight; m];
    {
        let ew = DisjointWriter::new(&mut edges);
        let ww = DisjointWriter::new(weights.as_mut_slice());
        let nblocks = m.div_ceil(GEN_BLOCK);
        pool.parallel_for(nblocks, Schedule::Dynamic { chunk: 1 }, |b| {
            let lo = b * GEN_BLOCK;
            let hi = ((b + 1) * GEN_BLOCK).min(m);
            // SAFETY: blocks map 1:1 to disjoint index ranges.
            let (es, ws) = unsafe { (ew.range_mut(lo, hi), ww.range_mut(lo, hi)) };
            for k in 0..hi - lo {
                let ((u, v), w) = f(lo + k);
                es[k] = (u, v);
                ws[k] = w;
            }
        });
    }
    EdgeList { num_vertices, edges, weights: Some(weights) }
}

// ---------------------------------------------------------------- spfa_killer

/// Vertex/edge layout for [`spfa_killer`]: spine `0..=levels`, one mid
/// vertex per gadget, three edges per gadget.
fn spfa_dims(levels: usize) -> (usize, usize) {
    if levels == 0 {
        return (1, 0);
    }
    (2 * levels + 1, 3 * levels)
}

fn spfa_edge(levels: usize, seed: u64, i: usize) -> ((VertexId, VertexId), Weight) {
    let gadget = i / 3;
    let mid = (levels + 1 + gadget) as VertexId;
    let a = gadget as VertexId;
    let b = (gadget + 1) as VertexId;
    // The direct edge shrinks geometrically so later gadgets sit in ever
    // finer distance strata; the detour is 10% cheaper than direct, with
    // a hashed jitter that keeps the two detour halves asymmetric.
    let direct = 2.0_f32 * 0.95_f32.powi(gadget as i32);
    let jitter = 0.05 * unit01(mix64(seed ^ mix64(gadget as u64 + 1)));
    match i % 3 {
        0 => ((a, b), direct),
        1 => ((a, mid), direct * (0.45 + jitter)),
        _ => ((mid, b), direct * (0.45 - jitter)),
    }
}

/// Generates the SPFA-killer spine with `levels` detour gadgets.
pub fn spfa_killer(levels: usize, seed: u64) -> EdgeList {
    let (n, m) = spfa_dims(levels);
    materialize(n, m, |i| spfa_edge(levels, seed, i))
}

/// Parallel [`spfa_killer`]; byte-identical to the serial path.
pub fn spfa_killer_parallel(levels: usize, seed: u64, pool: &ThreadPool) -> EdgeList {
    let (n, m) = spfa_dims(levels);
    materialize_parallel(n, m, pool, |i| spfa_edge(levels, seed, i))
}

// ------------------------------------------------------ wrong_dijkstra_killer

/// Layout for [`wrong_dijkstra_killer`]: source 0, chain vertices
/// `1..=chain`, hub `chain + 1`, fan targets after the hub.
fn wrong_dims(chain: usize, fan: usize) -> (usize, usize) {
    if chain == 0 {
        return (1, 0);
    }
    (chain + 2 + fan, 2 * chain + fan)
}

fn wrong_edge(chain: usize, i: usize) -> ((VertexId, VertexId), Weight) {
    let hub = (chain + 1) as VertexId;
    if i < 2 * chain {
        let idx = i / 2 + 1; // chain vertex 1..=chain
        let x = idx as VertexId;
        if i.is_multiple_of(2) {
            // Source reaches x_idx at cost idx: relaxation order 1, 2, ...
            ((0, x), idx as f32)
        } else {
            // x_idx reaches the hub at (chain - idx) + 1/(idx + 1): the
            // hub's tentative label *improves* with every later arrival,
            // so settling it on first touch is wrong by almost `chain`.
            ((x, hub), (chain - idx) as f32 + 1.0 / (idx as f32 + 1.0))
        }
    } else {
        let t = (chain + 2 + (i - 2 * chain)) as VertexId;
        ((hub, t), 0.01)
    }
}

/// Generates the wrong-label hub graph: `chain` sources feed a hub whose
/// label improves with each arrival, then a `fan` of downstream targets.
pub fn wrong_dijkstra_killer(chain: usize, fan: usize) -> EdgeList {
    let (n, m) = wrong_dims(chain, fan);
    materialize(n, m, |i| wrong_edge(chain, i))
}

/// Parallel [`wrong_dijkstra_killer`]; byte-identical to the serial path.
pub fn wrong_dijkstra_killer_parallel(chain: usize, fan: usize, pool: &ThreadPool) -> EdgeList {
    let (n, m) = wrong_dims(chain, fan);
    materialize_parallel(n, m, pool, |i| wrong_edge(chain, i))
}

// ----------------------------------------------------------------- grid_swirl

/// Position of cell `(r, c)` along the inward clockwise spiral of a
/// `width × width` grid (0 at the top-left corner).
fn spiral_index(r: usize, c: usize, width: usize) -> usize {
    let k = r.min(c).min(width - 1 - r).min(width - 1 - c);
    let before = width * width - (width - 2 * k) * (width - 2 * k);
    let side = width - 2 * k;
    if side == 1 {
        return before;
    }
    if r == k {
        before + (c - k)
    } else if c == width - 1 - k {
        before + (side - 1) + (r - k)
    } else if r == width - 1 - k {
        before + 2 * (side - 1) + (width - 1 - k - c)
    } else {
        before + 3 * (side - 1) + (width - 1 - k - r)
    }
}

fn grid_dims(width: usize) -> (usize, usize) {
    if width == 0 {
        return (0, 0);
    }
    // Both directions of every horizontal and vertical adjacency.
    (width * width, 4 * width * (width - 1))
}

fn grid_edge(width: usize, seed: u64, i: usize) -> ((VertexId, VertexId), Weight) {
    let half = 2 * width * (width - 1);
    let (a, b) = if i < half {
        // Horizontal adjacency j between (r, c) and (r, c + 1).
        let j = i / 2;
        let (r, c) = (j / (width - 1), j % (width - 1));
        let (p, q) = (r * width + c, r * width + c + 1);
        if i.is_multiple_of(2) {
            (p, q)
        } else {
            (q, p)
        }
    } else {
        // Vertical adjacency j between (r, c) and (r + 1, c).
        let j = (i - half) / 2;
        let (r, c) = (j / width, j % width);
        let (p, q) = (r * width + c, (r + 1) * width + c);
        if i.is_multiple_of(2) {
            (p, q)
        } else {
            (q, p)
        }
    };
    let sa = spiral_index(a / width, a % width, width);
    let sb = spiral_index(b / width, b % width, width);
    // Following the spiral is nearly free; cutting across it costs real
    // distance, so the shortest-path tree snakes through all n cells.
    let w =
        if sb == sa + 1 { 0.001 } else { 0.5 + 0.5 * unit01(mix64(seed ^ mix64(i as u64 + 1))) };
    ((a as VertexId, b as VertexId), w)
}

/// Generates the `width × width` spiral grid.
pub fn grid_swirl(width: usize, seed: u64) -> EdgeList {
    let (n, m) = grid_dims(width);
    materialize(n, m, |i| grid_edge(width, seed, i))
}

/// Parallel [`grid_swirl`]; byte-identical to the serial path.
pub fn grid_swirl_parallel(width: usize, seed: u64, pool: &ThreadPool) -> EdgeList {
    let (n, m) = grid_dims(width);
    materialize_parallel(n, m, pool, |i| grid_edge(width, seed, i))
}

// ---------------------------------------------------------------- almost_line

fn line_dims(num_vertices: usize, extra_edges: usize) -> (usize, usize) {
    if num_vertices == 0 {
        return (0, 0);
    }
    (num_vertices, num_vertices - 1 + extra_edges)
}

fn line_edge(num_vertices: usize, seed: u64, i: usize) -> ((VertexId, VertexId), Weight) {
    let path = num_vertices - 1;
    if i < path {
        let h = mix64(seed ^ mix64(i as u64 + 1));
        ((i as VertexId, (i + 1) as VertexId), 0.9 + 0.2 * unit01(h))
    } else {
        // Hashed chords whose weight scales with the span they skip, so
        // no chord collapses the diameter — it stays ~n, the worst case
        // for level-synchronous engines.
        let h = mix64(seed ^ mix64((path + i) as u64 + 101));
        let u = (h % num_vertices as u64) as VertexId;
        let v = (mix64(h) % num_vertices as u64) as VertexId;
        let span = u.abs_diff(v).max(1) as f32;
        ((u, v), span * (1.0 + unit01(mix64(h ^ 0x9e37))))
    }
}

/// Generates a near-line graph: an `num_vertices`-long path plus
/// `extra_edges` heavier hashed chords.
pub fn almost_line(num_vertices: usize, extra_edges: usize, seed: u64) -> EdgeList {
    let (n, m) = line_dims(num_vertices, extra_edges);
    materialize(n, m, |i| line_edge(num_vertices, seed, i))
}

/// Parallel [`almost_line`]; byte-identical to the serial path.
pub fn almost_line_parallel(
    num_vertices: usize,
    extra_edges: usize,
    seed: u64,
    pool: &ThreadPool,
) -> EdgeList {
    let (n, m) = line_dims(num_vertices, extra_edges);
    materialize_parallel(n, m, pool, |i| line_edge(num_vertices, seed, i))
}

// ------------------------------------------------------------- max_dense_zero

fn dense_dims(num_vertices: usize) -> (usize, usize) {
    (num_vertices, num_vertices.saturating_sub(1) * num_vertices)
}

fn dense_edge(num_vertices: usize, i: usize) -> ((VertexId, VertexId), Weight) {
    let u = i / (num_vertices - 1);
    let r = i % (num_vertices - 1);
    let v = r + usize::from(r >= u);
    ((u as VertexId, v as VertexId), 0.0)
}

/// Generates the complete directed graph on `num_vertices` vertices with
/// every weight exactly 0.0.
pub fn max_dense_zero(num_vertices: usize) -> EdgeList {
    let (n, m) = dense_dims(num_vertices);
    materialize(n, m, |i| dense_edge(num_vertices, i))
}

/// Parallel [`max_dense_zero`]; byte-identical to the serial path.
pub fn max_dense_zero_parallel(num_vertices: usize, pool: &ThreadPool) -> EdgeList {
    let (n, m) = dense_dims(num_vertices);
    materialize_parallel(n, m, pool, |i| dense_edge(num_vertices, i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::{oracle, Csr};

    #[test]
    fn spfa_detour_always_beats_direct() {
        let el = spfa_killer(40, 7);
        let g = Csr::from_edge_list(&el);
        let d = oracle::dijkstra(&g, 0);
        // Distance along the spine must use every detour: strictly less
        // than the sum of direct edges.
        let direct_sum: f32 = (0..40).map(|i| 2.0 * 0.95_f32.powi(i)).sum();
        assert!(d[40] < direct_sum * 0.95, "detours unused: {} vs {}", d[40], direct_sum);
        assert!(d[40] > 0.0);
    }

    #[test]
    fn wrong_dijkstra_hub_label_improves_with_later_arrivals() {
        let chain = 30;
        let el = wrong_dijkstra_killer(chain, 50);
        let g = Csr::from_edge_list(&el);
        let d = oracle::dijkstra(&g, 0);
        let hub = chain + 1;
        // The best hub path goes through the *last* chain vertex.
        let want = chain as f32 + 1.0 / (chain as f32 + 1.0);
        assert_eq!(d[hub].to_bits(), want.to_bits());
        for t in 0..50 {
            assert_eq!(d[chain + 2 + t].to_bits(), (want + 0.01).to_bits());
        }
    }

    #[test]
    fn spiral_index_is_a_permutation() {
        for width in [1usize, 2, 3, 5, 8] {
            let mut seen = vec![false; width * width];
            for r in 0..width {
                for c in 0..width {
                    let s = spiral_index(r, c, width);
                    assert!(!seen[s], "duplicate spiral index {s} at ({r},{c})");
                    seen[s] = true;
                }
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn grid_swirl_shortest_paths_snake_through_the_spiral() {
        let width = 9;
        let el = grid_swirl(width, 3);
        let g = Csr::from_edge_list(&el);
        let d = oracle::dijkstra(&g, 0);
        // The spiral's last cell is ~n cheap hops away: its distance must
        // be far below a single cross-cut edge (≥ 0.5).
        let mut last = 0;
        let mut best = 0;
        for r in 0..width {
            for c in 0..width {
                let s = spiral_index(r, c, width);
                if s > best {
                    best = s;
                    last = r * width + c;
                }
            }
        }
        assert!(d[last] < 0.5, "spiral not cheap: {}", d[last]);
        assert!((d[last] - best as f32 * 0.001).abs() < 1e-4);
    }

    #[test]
    fn almost_line_keeps_long_diameter() {
        let el = almost_line(200, 10, 5);
        let g = Csr::from_edge_list(&el);
        let d = oracle::dijkstra(&g, 0);
        // Path weights are ≥ 0.9, chords ≥ 1.5: the end of the line is at
        // least ~0.9 * a long hop count away.
        assert!(d[199] > 60.0, "diameter collapsed: {}", d[199]);
        assert!(d[199].is_finite());
    }

    #[test]
    fn max_dense_zero_is_complete_and_all_zero() {
        let el = max_dense_zero(12);
        assert_eq!(el.num_edges(), 12 * 11);
        let g = Csr::from_edge_list(&el);
        let d = oracle::dijkstra(&g, 7);
        assert!(d.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn zero_size_families_are_empty_but_valid() {
        assert_eq!(spfa_killer(0, 1).num_edges(), 0);
        assert_eq!(wrong_dijkstra_killer(0, 0).num_edges(), 0);
        assert_eq!(grid_swirl(0, 1).num_edges(), 0);
        assert_eq!(grid_swirl(1, 1).num_edges(), 0);
        assert_eq!(almost_line(0, 5, 1).num_edges(), 0);
        assert_eq!(almost_line(1, 0, 1).num_edges(), 0);
        assert_eq!(max_dense_zero(0).num_edges(), 0);
        assert_eq!(max_dense_zero(1).num_edges(), 0);
    }

    #[test]
    fn parallel_matches_serial_bytewise() {
        for nthreads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(nthreads);
            assert_eq!(spfa_killer(100, 9), spfa_killer_parallel(100, 9, &pool));
            assert_eq!(
                wrong_dijkstra_killer(64, 128),
                wrong_dijkstra_killer_parallel(64, 128, &pool)
            );
            assert_eq!(grid_swirl(20, 9), grid_swirl_parallel(20, 9, &pool));
            assert_eq!(almost_line(3000, 100, 9), almost_line_parallel(3000, 100, 9, &pool));
            assert_eq!(max_dense_zero(50), max_dense_zero_parallel(50, &pool));
        }
    }
}
