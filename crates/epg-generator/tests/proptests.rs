//! Property tests for the generators: determinism, size contracts, and the
//! structural traits each stand-in exists to preserve.

use epg_generator::{citations, dota_league, kronecker, uniform, GraphSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kronecker_size_contract(scale in 4u32..12, ef in 1u32..20, seed in 0u64..500) {
        let cfg = kronecker::KroneckerConfig {
            scale,
            edge_factor: ef,
            ..Default::default()
        };
        let el = kronecker::generate(&cfg, seed);
        prop_assert_eq!(el.num_vertices, 1usize << scale);
        prop_assert_eq!(el.num_edges(), (ef as usize) << scale);
        let in_range = el
            .edges
            .iter()
            .all(|&(u, v)| (u as usize) < el.num_vertices && (v as usize) < el.num_vertices);
        prop_assert!(in_range);
    }

    #[test]
    fn kronecker_weighted_weights_in_unit_interval(scale in 4u32..10, seed in 0u64..100) {
        let cfg = kronecker::KroneckerConfig {
            scale,
            edge_factor: 4,
            weighted: true,
            ..Default::default()
        };
        let el = kronecker::generate(&cfg, seed);
        let ws = el.weights.as_ref().unwrap();
        prop_assert!(ws.iter().all(|&w| w > 0.0 && w <= 1.0));
    }

    #[test]
    fn generators_are_deterministic(seed in 0u64..200) {
        let spec = GraphSpec::Kronecker { scale: 7, edge_factor: 4, weighted: true };
        prop_assert_eq!(spec.generate(seed), spec.generate(seed));
        let c = citations::CitationsConfig { num_vertices: 300, ..Default::default() };
        prop_assert_eq!(citations::generate(&c, seed), citations::generate(&c, seed));
        let d = dota_league::DotaLeagueConfig {
            num_vertices: 200, avg_degree: 20, ..Default::default()
        };
        prop_assert_eq!(dota_league::generate(&d, seed), dota_league::generate(&d, seed));
    }

    #[test]
    fn citations_always_acyclic(n in 10usize..500, seed in 0u64..200) {
        let cfg = citations::CitationsConfig { num_vertices: n, ..Default::default() };
        let el = citations::generate(&cfg, seed);
        // Time-ordered: every edge points strictly backward, so acyclic.
        prop_assert!(el.edges.iter().all(|&(u, v)| v < u));
        prop_assert!(!el.is_weighted());
    }

    #[test]
    fn dota_always_symmetric_weighted_loopfree(
        n in 50usize..300,
        deg in 8u32..40,
        seed in 0u64..200,
    ) {
        let cfg = dota_league::DotaLeagueConfig {
            num_vertices: n,
            avg_degree: deg,
            ..Default::default()
        };
        let el = dota_league::generate(&cfg, seed);
        prop_assert!(el.is_weighted());
        prop_assert!(el.edges.iter().all(|&(u, v)| u != v));
        let set: std::collections::HashMap<_, _> =
            el.iter().map(|(u, v, w)| ((u, v), w)).collect();
        for (&(u, v), &w) in &set {
            prop_assert_eq!(set.get(&(v, u)), Some(&w), "asymmetry at ({}, {})", u, v);
        }
    }

    #[test]
    fn uniform_exact_sizes(n in 1usize..500, m in 0usize..2000, seed in 0u64..100) {
        let el = uniform::generate(n, m, false, seed);
        prop_assert_eq!(el.num_vertices, n);
        prop_assert_eq!(el.num_edges(), m);
    }

    #[test]
    fn spec_names_are_filesystem_safe(scale in 1u32..20) {
        for spec in [
            GraphSpec::Kronecker { scale, edge_factor: 16, weighted: true },
            GraphSpec::CitPatents { scale_div: scale },
            GraphSpec::DotaLeague { num_vertices: scale as usize + 10, avg_degree: 2 },
        ] {
            let name = spec.name();
            prop_assert!(!name.is_empty());
            prop_assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || "-_".contains(c)),
                "unsafe name {:?}", name);
        }
    }
}
