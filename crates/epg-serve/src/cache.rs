//! The bounded LRU source cache.
//!
//! The unit of caching is a whole per-source result array — the level
//! array of one BFS, the distance array of one SSSP, the rank array of
//! one PageRank — because one expansion answers *every* point query
//! sharing that source (the same amortization the batcher exploits in
//! time, applied in space). Entries are `Arc`-shared: a hit hands the
//! caller a reference to the exact bytes the traversal produced, so
//! cached answers are byte-identical to uncached recomputation (pinned
//! by a proptest in `tests/`).
//!
//! Counter discipline follows epg-trace's `DeltaTracker` style: every
//! lookup increments exactly one of `hits`/`misses`, every insert
//! increments `insertions` and at most one `evictions`, and all four
//! live under the same lock as the map so a [`CacheStats`] snapshot is
//! internally consistent (`hits + misses == lookups` exactly, never
//! approximately).

use epg_engine_api::Algorithm;
use epg_graph::{VertexId, Weight};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: one traversal source under one algorithm. PageRank has no
/// source; its single whole-graph result is keyed under source 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SourceKey {
    /// The algorithm whose result array this is.
    pub algo: Algorithm,
    /// The traversal source (0 for PageRank).
    pub source: VertexId,
}

/// One per-source result array, as produced by a kernel.
#[derive(Clone, Debug, PartialEq)]
pub enum SourceArray {
    /// BFS levels: hop count per vertex, `u32::MAX` when unreached.
    Levels(Vec<u32>),
    /// SSSP distances: `INF_DIST` when unreached.
    Dists(Vec<Weight>),
    /// PageRank ranks.
    Ranks(Vec<f64>),
}

impl SourceArray {
    /// The answer for target vertex `v`, widened to `f64` with
    /// unreachable encoded as `+∞`. BFS levels and SSSP distances widen
    /// losslessly, so equality on the returned value is equality on the
    /// stored bytes.
    pub fn value_at(&self, v: VertexId) -> f64 {
        match self {
            SourceArray::Levels(l) => {
                let hops = l[v as usize];
                if hops == u32::MAX {
                    f64::INFINITY
                } else {
                    f64::from(hops)
                }
            }
            SourceArray::Dists(d) => f64::from(d[v as usize]),
            SourceArray::Ranks(r) => r[v as usize],
        }
    }

    /// Number of vertices the array covers.
    pub fn len(&self) -> usize {
        match self {
            SourceArray::Levels(l) => l.len(),
            SourceArray::Dists(d) => d.len(),
            SourceArray::Ranks(r) => r.len(),
        }
    }

    /// True when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct Entry {
    value: Arc<SourceArray>,
    /// Monotone recency stamp; the minimum stamp is the LRU victim.
    stamp: u64,
}

struct Lru {
    cap: usize,
    clock: u64,
    map: HashMap<SourceKey, Entry>,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

/// Consistent snapshot of the cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a resident array.
    pub hits: u64,
    /// Lookups that found nothing (every lookup is exactly one of the
    /// two: `hits + misses` is the exact lookup count).
    pub misses: u64,
    /// Arrays offered to the cache (including re-inserts of a resident
    /// key and inserts dropped by a zero capacity).
    pub insertions: u64,
    /// Resident arrays displaced to make room.
    pub evictions: u64,
    /// Arrays resident at snapshot time.
    pub resident: usize,
}

/// A bounded least-recently-used map from traversal source to its whole
/// result array. Capacity zero is legal and caches nothing (every
/// lookup misses, every insert is counted but dropped, nothing is ever
/// evicted — eviction means displacing a *resident* entry).
pub struct SourceCache {
    inner: Mutex<Lru>,
}

impl SourceCache {
    /// Creates a cache holding at most `capacity` source arrays.
    pub fn new(capacity: usize) -> SourceCache {
        SourceCache {
            inner: Mutex::new(Lru {
                cap: capacity,
                clock: 0,
                map: HashMap::new(),
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
            }),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn lookup(&self, key: &SourceKey) -> Option<Arc<SourceArray>> {
        let mut lru = self.inner.lock();
        lru.clock += 1;
        let stamp = lru.clock;
        match lru.map.get_mut(key) {
            Some(e) => {
                e.stamp = stamp;
                let value = Arc::clone(&e.value);
                lru.hits += 1;
                Some(value)
            }
            None => {
                lru.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// resident entry if the cache is full.
    pub fn insert(&self, key: SourceKey, value: Arc<SourceArray>) {
        let mut lru = self.inner.lock();
        lru.insertions += 1;
        if lru.cap == 0 {
            return;
        }
        lru.clock += 1;
        let stamp = lru.clock;
        if let Some(e) = lru.map.get_mut(&key) {
            e.value = value;
            e.stamp = stamp;
            return;
        }
        if lru.map.len() >= lru.cap {
            // O(resident) victim scan; capacities are tens of arrays, and
            // each array is megabytes — the scan is noise next to one.
            let victim = lru
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("full cache has a victim");
            lru.map.remove(&victim);
            lru.evictions += 1;
        }
        lru.map.insert(key, Entry { value, stamp });
    }

    /// Consistent counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let lru = self.inner.lock();
        CacheStats {
            hits: lru.hits,
            misses: lru.misses,
            insertions: lru.insertions,
            evictions: lru.evictions,
            resident: lru.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(algo: Algorithm, source: VertexId) -> SourceKey {
        SourceKey { algo, source }
    }

    fn levels(xs: &[u32]) -> Arc<SourceArray> {
        Arc::new(SourceArray::Levels(xs.to_vec()))
    }

    #[test]
    fn eviction_follows_recency_order() {
        let c = SourceCache::new(2);
        let (a, b, d) = (key(Algorithm::Bfs, 1), key(Algorithm::Bfs, 2), key(Algorithm::Bfs, 3));
        c.insert(a, levels(&[0]));
        c.insert(b, levels(&[1]));
        // Touch `a`: `b` becomes the LRU victim.
        assert!(c.lookup(&a).is_some());
        c.insert(d, levels(&[2]));
        assert!(c.lookup(&b).is_none(), "b was least recently used");
        assert!(c.lookup(&a).is_some(), "a was refreshed by the hit");
        assert!(c.lookup(&d).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().resident, 2);
    }

    #[test]
    fn same_source_different_algorithms_are_distinct_keys() {
        let c = SourceCache::new(4);
        c.insert(key(Algorithm::Bfs, 5), levels(&[1]));
        c.insert(key(Algorithm::Sssp, 5), Arc::new(SourceArray::Dists(vec![0.5])));
        assert!(matches!(
            c.lookup(&key(Algorithm::Bfs, 5)).unwrap().as_ref(),
            SourceArray::Levels(_)
        ));
        assert!(matches!(
            c.lookup(&key(Algorithm::Sssp, 5)).unwrap().as_ref(),
            SourceArray::Dists(_)
        ));
    }

    #[test]
    fn capacity_zero_caches_nothing_and_evicts_nothing() {
        let c = SourceCache::new(0);
        let k = key(Algorithm::Bfs, 0);
        c.insert(k, levels(&[0]));
        assert!(c.lookup(&k).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions, s.resident), (0, 1, 1, 0, 0));
    }

    #[test]
    fn reinsert_of_resident_key_refreshes_without_eviction() {
        let c = SourceCache::new(2);
        let (a, b) = (key(Algorithm::Bfs, 1), key(Algorithm::Bfs, 2));
        c.insert(a, levels(&[0]));
        c.insert(b, levels(&[1]));
        c.insert(a, levels(&[9])); // refresh, not displace
        let s = c.stats();
        assert_eq!((s.insertions, s.evictions, s.resident), (3, 0, 2));
        let SourceArray::Levels(l) = c.lookup(&a).unwrap().as_ref().clone() else { panic!() };
        assert_eq!(l, vec![9], "refresh must replace the value");
    }

    #[test]
    fn hit_and_miss_counters_sum_to_lookups_exactly() {
        // DeltaTracker-style exactness, including under concurrency:
        // every lookup lands in exactly one bucket.
        let c = SourceCache::new(8);
        for s in 0..8 {
            c.insert(key(Algorithm::Bfs, s), levels(&[s]));
        }
        let lookups = 64 * 4;
        std::thread::scope(|scope| {
            for t in 0..4 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..64u32 {
                        // Half the keys are resident, half never inserted.
                        let _ = c.lookup(&key(Algorithm::Bfs, (t * 64 + i) % 16));
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.hits + s.misses, lookups, "exact sum, no lost updates");
        assert!(s.hits > 0 && s.misses > 0);
    }

    #[test]
    fn value_at_widens_unreachable_to_infinity() {
        let l = SourceArray::Levels(vec![0, 3, u32::MAX]);
        assert_eq!(l.value_at(1), 3.0);
        assert!(l.value_at(2).is_infinite());
        let d = SourceArray::Dists(vec![0.0, epg_graph::INF_DIST]);
        assert!(d.value_at(1).is_infinite());
        let r = SourceArray::Ranks(vec![0.25]);
        assert_eq!(r.value_at(0), 0.25);
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }
}
