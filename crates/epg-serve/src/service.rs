//! The serving pipeline: admission → landmark → cache → batcher → kernel.
//!
//! [`ServeService`] composes the crate's stages over any
//! [`QueryEngine`]. Each request flows through the stages in order and
//! stops at the first one that can answer it; the stage that answered
//! is stamped on the [`Answer`] (and, when a recorder is attached, on a
//! [`TraceEvent::Query`]), so the load generator can attribute
//! throughput to amortization rather than guessing. Every path is
//! answer-preserving: landmarks answer only when provably exact, the
//! cache and batcher hand back the very `Arc` a kernel produced, so all
//! four paths are byte-identical to a fresh sequential traversal
//! (pinned by differential tests in `tests/`).

use crate::admission::Admission;
use crate::batch::{BatchStats, Batcher, FlightError, Role};
use crate::cache::{CacheStats, SourceArray, SourceCache, SourceKey};
use crate::landmark::LandmarkIndex;
use crate::ServeError;
use epg_engine_api::{Algorithm, AlgorithmResult, QueryEngine, RunParams};
use epg_graph::VertexId;
use epg_parallel::{CancelToken, ThreadPool};
use epg_trace::{Recorder, TraceEvent};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serving knobs. [`ServeConfig::default`] is the full pipeline;
/// [`ServeConfig::naive`] disables every amortization stage and is the
/// baseline `epg serve-bench` compares against.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeConfig {
    /// Source arrays the LRU cache holds (0 disables caching entirely).
    pub cache_capacity: usize,
    /// Landmarks to precompute (0 disables the oracle stage). Sound
    /// only on symmetrized graphs — see the `landmark` module docs.
    pub landmarks: usize,
    /// Concurrent requests admitted before shedding load.
    pub max_pending: usize,
    /// Per-request SLO: a traversal running past this budget unwinds
    /// cooperatively and the request reports `DeadlineExceeded` (DNF).
    pub request_budget: Option<Duration>,
    /// Attach same-source requests to an in-flight traversal.
    pub batching: bool,
    /// Keep finished source arrays for later requests.
    pub caching: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            cache_capacity: 32,
            landmarks: 0,
            max_pending: 1024,
            request_budget: None,
            batching: true,
            caching: true,
        }
    }
}

impl ServeConfig {
    /// The unamortized baseline: every request runs its own traversal.
    pub fn naive() -> ServeConfig {
        ServeConfig {
            cache_capacity: 0,
            landmarks: 0,
            batching: false,
            caching: false,
            ..ServeConfig::default()
        }
    }
}

/// One point query, the unit of serving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointQuery {
    /// Hop distance from `source` to `target` (BFS).
    BfsDist {
        /// Traversal source.
        source: VertexId,
        /// Vertex whose hop count is wanted.
        target: VertexId,
    },
    /// Weighted shortest-path distance from `source` to `target` (SSSP).
    SsspDist {
        /// Traversal source.
        source: VertexId,
        /// Vertex whose distance is wanted.
        target: VertexId,
    },
    /// PageRank rank of one vertex.
    PrRank {
        /// Vertex whose rank is wanted.
        vertex: VertexId,
    },
}

impl PointQuery {
    /// The algorithm that computes this query's source array.
    pub fn algo(&self) -> Algorithm {
        match self {
            PointQuery::BfsDist { .. } => Algorithm::Bfs,
            PointQuery::SsspDist { .. } => Algorithm::Sssp,
            PointQuery::PrRank { .. } => Algorithm::PageRank,
        }
    }

    /// Cache/batch key: the traversal that answers this query. PageRank
    /// has no source; its one whole-graph result is keyed at source 0.
    pub fn source_key(&self) -> SourceKey {
        let source = match self {
            PointQuery::BfsDist { source, .. } | PointQuery::SsspDist { source, .. } => *source,
            PointQuery::PrRank { .. } => 0,
        };
        SourceKey { algo: self.algo(), source }
    }

    /// `(s, t)` for distance queries (the landmark stage's shape);
    /// `None` for rank lookups.
    pub fn endpoints(&self) -> Option<(VertexId, VertexId)> {
        match self {
            PointQuery::BfsDist { source, target } | PointQuery::SsspDist { source, target } => {
                Some((*source, *target))
            }
            PointQuery::PrRank { .. } => None,
        }
    }

    /// The vertex whose entry in the source array is the answer.
    pub fn lookup_vertex(&self) -> VertexId {
        match self {
            PointQuery::BfsDist { target, .. } | PointQuery::SsspDist { target, .. } => *target,
            PointQuery::PrRank { vertex } => *vertex,
        }
    }

    fn vertices(&self) -> [VertexId; 2] {
        match self {
            PointQuery::BfsDist { source, target } | PointQuery::SsspDist { source, target } => {
                [*source, *target]
            }
            PointQuery::PrRank { vertex } => [*vertex, *vertex],
        }
    }
}

/// Which pipeline stage produced an answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnswerPath {
    /// A fresh traversal ran for this request (it led the flight).
    Exact,
    /// Attached to another request's in-flight traversal.
    Batched,
    /// Served from a resident source array.
    Cached,
    /// Pinned exactly by the landmark index's triangle bounds.
    Landmark,
}

impl AnswerPath {
    /// Stable label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            AnswerPath::Exact => "exact",
            AnswerPath::Batched => "batched",
            AnswerPath::Cached => "cached",
            AnswerPath::Landmark => "landmark",
        }
    }
}

/// An answered point query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Answer {
    /// The answer, widened to `f64` (`+∞` means unreachable).
    pub value: f64,
    /// The pipeline stage that produced it.
    pub path: AnswerPath,
}

/// Consistent-at-quiescence snapshot of the service counters. Two exact
/// invariants hold whenever no request is mid-flight:
/// `submitted == answered + rejected + dnf + failed` and
/// `answered == exact + batched + cached + landmark`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServeStats {
    /// Requests received (before admission).
    pub submitted: u64,
    /// Requests that produced an answer.
    pub answered: u64,
    /// Requests shed at admission (`Overloaded`) or refused up front
    /// (`Unsupported`, `BadVertex`).
    pub rejected: u64,
    /// Requests whose budget tripped mid-traversal (serving DNFs).
    pub dnf: u64,
    /// Requests that failed internally (leader unwound).
    pub failed: u64,
    /// Answers from a fresh traversal.
    pub exact: u64,
    /// Answers attached to an in-flight traversal.
    pub batched: u64,
    /// Answers from the source cache.
    pub cached: u64,
    /// Answers pinned by the landmark index.
    pub landmark: u64,
    /// Distance queries the landmark stage saw but could not pin.
    pub landmark_fallthroughs: u64,
    /// Source-cache counters.
    pub cache: CacheStats,
    /// Batcher counters.
    pub batch: BatchStats,
    /// Requests holding an admission permit right now.
    pub pending: usize,
}

#[derive(Default)]
struct PathCounters {
    submitted: AtomicU64,
    answered: AtomicU64,
    rejected: AtomicU64,
    dnf: AtomicU64,
    failed: AtomicU64,
    exact: AtomicU64,
    batched: AtomicU64,
    cached: AtomicU64,
    landmark: AtomicU64,
    landmark_fallthroughs: AtomicU64,
}

/// The resident-graph query service.
pub struct ServeService {
    engine: Arc<dyn QueryEngine>,
    pool: Arc<ThreadPool>,
    config: ServeConfig,
    admission: Admission,
    cache: SourceCache,
    batcher: Batcher,
    landmarks: Option<LandmarkIndex>,
    counters: PathCounters,
    recorder: Option<Arc<dyn Recorder>>,
}

/// One full traversal through the engine's query surface, with an
/// optional cancellation budget.
fn run_source(
    engine: &dyn QueryEngine,
    pool: &ThreadPool,
    algo: Algorithm,
    source: VertexId,
    budget: Option<Duration>,
) -> Result<Arc<SourceArray>, ServeError> {
    let mut params = RunParams::new(pool, Some(source));
    params.cancel = budget.map(CancelToken::with_deadline);
    let out = engine.query(algo, &params);
    if out.cancelled {
        return Err(ServeError::DeadlineExceeded);
    }
    match out.result {
        AlgorithmResult::BfsTree { level, .. } => Ok(Arc::new(SourceArray::Levels(level))),
        AlgorithmResult::Distances(d) => Ok(Arc::new(SourceArray::Dists(d))),
        AlgorithmResult::Ranks { ranks, .. } => Ok(Arc::new(SourceArray::Ranks(ranks))),
        _ => Err(ServeError::Internal),
    }
}

impl ServeService {
    /// Builds the service over a constructed engine, precomputing the
    /// landmark index when `config.landmarks > 0` (each landmark row is
    /// one unbudgeted traversal through the same exact pipeline queries
    /// use; SSSP rows are built only when the engine supports SSSP).
    pub fn new(
        engine: Arc<dyn QueryEngine>,
        pool: Arc<ThreadPool>,
        config: ServeConfig,
    ) -> ServeService {
        let landmarks = (config.landmarks > 0).then(|| {
            LandmarkIndex::build(
                config.landmarks,
                engine.num_vertices(),
                |v| engine.out_degree(v),
                |algo, v| run_source(&*engine, &pool, algo, v, None).ok(),
                engine.supports(Algorithm::Sssp),
            )
        });
        ServeService {
            admission: Admission::new(config.max_pending),
            cache: SourceCache::new(config.cache_capacity),
            batcher: Batcher::new(),
            landmarks,
            counters: PathCounters::default(),
            recorder: None,
            engine,
            pool,
            config,
        }
    }

    /// Attaches a trace sink; each request emits one
    /// [`TraceEvent::Query`].
    pub fn set_recorder(&mut self, recorder: Option<Arc<dyn Recorder>>) {
        self.recorder = recorder;
    }

    /// Vertices in the resident graph.
    pub fn num_vertices(&self) -> usize {
        self.engine.num_vertices()
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Answers one point query through the pipeline.
    pub fn answer(&self, q: &PointQuery) -> Result<Answer, ServeError> {
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let result = self.answer_inner(q);
        let (bucket, label) = match &result {
            Ok(a) => (
                match a.path {
                    AnswerPath::Exact => &self.counters.exact,
                    AnswerPath::Batched => &self.counters.batched,
                    AnswerPath::Cached => &self.counters.cached,
                    AnswerPath::Landmark => &self.counters.landmark,
                },
                a.path.label(),
            ),
            Err(ServeError::DeadlineExceeded) => (&self.counters.dnf, "dnf"),
            Err(ServeError::Internal) => (&self.counters.failed, "failed"),
            Err(ServeError::Overloaded { .. }) => (&self.counters.rejected, "overloaded"),
            Err(ServeError::Unsupported(_)) => (&self.counters.rejected, "unsupported"),
            Err(ServeError::BadVertex { .. }) => (&self.counters.rejected, "bad_vertex"),
        };
        bucket.fetch_add(1, Ordering::Relaxed);
        if result.is_ok() {
            self.counters.answered.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(rec) = &self.recorder {
            rec.record(TraceEvent::Query {
                algo: q.algo().abbrev().to_string(),
                path: label.to_string(),
                latency_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                ok: result.is_ok(),
            });
        }
        result
    }

    fn answer_inner(&self, q: &PointQuery) -> Result<Answer, ServeError> {
        let algo = q.algo();
        if !self.engine.supports(algo) {
            return Err(ServeError::Unsupported(algo));
        }
        let n = self.engine.num_vertices();
        for v in q.vertices() {
            if (v as usize) >= n {
                return Err(ServeError::BadVertex { vertex: v, num_vertices: n });
            }
        }
        let Some(_permit) = self.admission.try_acquire() else {
            return Err(ServeError::Overloaded {
                pending: self.admission.pending(),
                max_pending: self.admission.max_pending(),
            });
        };

        // Landmark stage: O(landmarks), answers only when provably exact.
        if let (Some(idx), Some((s, t))) = (&self.landmarks, q.endpoints()) {
            if let Some(value) = idx.estimate(algo, s, t) {
                return Ok(Answer { value, path: AnswerPath::Landmark });
            }
            self.counters.landmark_fallthroughs.fetch_add(1, Ordering::Relaxed);
        }

        let key = q.source_key();
        if self.config.caching {
            if let Some(arr) = self.cache.lookup(&key) {
                return Ok(Answer {
                    value: arr.value_at(q.lookup_vertex()),
                    path: AnswerPath::Cached,
                });
            }
        }

        if !self.config.batching {
            let arr = run_source(
                &*self.engine,
                &self.pool,
                algo,
                key.source,
                self.config.request_budget,
            )?;
            if self.config.caching {
                self.cache.insert(key, Arc::clone(&arr));
            }
            return Ok(Answer { value: arr.value_at(q.lookup_vertex()), path: AnswerPath::Exact });
        }

        match self.batcher.join_or_lead(key) {
            Role::Follower(flight) => match flight.wait() {
                Ok(arr) => {
                    Ok(Answer { value: arr.value_at(q.lookup_vertex()), path: AnswerPath::Batched })
                }
                Err(FlightError::Cancelled) => Err(ServeError::DeadlineExceeded),
                Err(FlightError::Failed) => Err(ServeError::Internal),
            },
            Role::Leader(guard) => {
                match run_source(
                    &*self.engine,
                    &self.pool,
                    algo,
                    key.source,
                    self.config.request_budget,
                ) {
                    Ok(arr) => {
                        if self.config.caching {
                            self.cache.insert(key, Arc::clone(&arr));
                        }
                        guard.publish(Ok(Arc::clone(&arr)));
                        Ok(Answer {
                            value: arr.value_at(q.lookup_vertex()),
                            path: AnswerPath::Exact,
                        })
                    }
                    Err(e) => {
                        guard.publish(Err(match e {
                            ServeError::DeadlineExceeded => FlightError::Cancelled,
                            _ => FlightError::Failed,
                        }));
                        Err(e)
                    }
                }
            }
        }
    }

    /// Counter snapshot (see [`ServeStats`] for its invariants).
    pub fn stats(&self) -> ServeStats {
        let c = &self.counters;
        ServeStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            answered: c.answered.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            dnf: c.dnf.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            exact: c.exact.load(Ordering::Relaxed),
            batched: c.batched.load(Ordering::Relaxed),
            cached: c.cached.load(Ordering::Relaxed),
            landmark: c.landmark.load(Ordering::Relaxed),
            landmark_fallthroughs: c.landmark_fallthroughs.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            batch: self.batcher.stats(),
            pending: self.admission.pending(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_engine_api::{EngineInfo, RunOutput};
    use epg_trace::RunRecorder;
    use parking_lot::{Condvar, Mutex};
    use std::sync::atomic::AtomicUsize;

    /// A path graph 0–1–…–(n−1) with closed-form answers, plus a gate
    /// the tests can hold closed to pin traversals in flight.
    struct PathEngine {
        n: usize,
        calls: AtomicUsize,
        gate: Mutex<bool>, // true = closed
        cv: Condvar,
    }

    impl PathEngine {
        fn new(n: usize) -> PathEngine {
            PathEngine {
                n,
                calls: AtomicUsize::new(0),
                gate: Mutex::new(false),
                cv: Condvar::new(),
            }
        }

        fn close_gate(&self) {
            *self.gate.lock() = true;
        }

        fn open_gate(&self) {
            *self.gate.lock() = false;
            self.cv.notify_all();
        }

        fn calls(&self) -> usize {
            self.calls.load(Ordering::Relaxed)
        }
    }

    impl QueryEngine for PathEngine {
        fn info(&self) -> EngineInfo {
            EngineInfo {
                name: "path-mock",
                representation: "closed form",
                parallelism: "none",
                distributed_capable: false,
                requires_proprietary_compiler: false,
            }
        }

        fn supports(&self, algo: Algorithm) -> bool {
            matches!(algo, Algorithm::Bfs | Algorithm::Sssp | Algorithm::PageRank)
        }

        fn num_vertices(&self) -> usize {
            self.n
        }

        fn out_degree(&self, v: VertexId) -> usize {
            if v as usize == 0 || v as usize == self.n - 1 {
                1
            } else {
                2
            }
        }

        fn query(&self, algo: Algorithm, params: &RunParams<'_>) -> RunOutput {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let mut gate = self.gate.lock();
            while *gate {
                self.cv.wait(&mut gate);
            }
            drop(gate);
            if params.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                return RunOutput::new(
                    AlgorithmResult::Distances(vec![]),
                    Default::default(),
                    Default::default(),
                )
                .cancelled(true);
            }
            let root = params.root.unwrap_or(0);
            let result = match algo {
                Algorithm::Bfs => AlgorithmResult::BfsTree {
                    parent: vec![0; self.n],
                    level: (0..self.n as u32).map(|v| v.abs_diff(root)).collect(),
                },
                Algorithm::Sssp => AlgorithmResult::Distances(
                    (0..self.n as u32).map(|v| v.abs_diff(root) as f32).collect(),
                ),
                Algorithm::PageRank => AlgorithmResult::Ranks {
                    ranks: vec![1.0 / self.n as f64; self.n],
                    iterations: 1,
                },
                _ => unreachable!("unsupported algo dispatched"),
            };
            RunOutput::new(result, Default::default(), Default::default())
        }
    }

    fn service(n: usize, config: ServeConfig) -> (Arc<PathEngine>, ServeService) {
        let engine = Arc::new(PathEngine::new(n));
        let pool = Arc::new(ThreadPool::new(1));
        let svc = ServeService::new(Arc::clone(&engine) as Arc<dyn QueryEngine>, pool, config);
        (engine, svc)
    }

    #[test]
    fn second_same_source_query_is_served_from_cache() {
        let (engine, svc) = service(8, ServeConfig::default());
        let q1 = PointQuery::BfsDist { source: 2, target: 5 };
        let q2 = PointQuery::BfsDist { source: 2, target: 7 };
        let a1 = svc.answer(&q1).unwrap();
        let a2 = svc.answer(&q2).unwrap();
        assert_eq!((a1.value, a1.path), (3.0, AnswerPath::Exact));
        assert_eq!((a2.value, a2.path), (5.0, AnswerPath::Cached));
        assert_eq!(engine.calls(), 1, "one traversal answers both");
    }

    #[test]
    fn naive_config_recomputes_every_request() {
        let (engine, svc) = service(8, ServeConfig::naive());
        for _ in 0..3 {
            let a = svc.answer(&PointQuery::SsspDist { source: 0, target: 4 }).unwrap();
            assert_eq!((a.value, a.path), (4.0, AnswerPath::Exact));
        }
        assert_eq!(engine.calls(), 3, "no amortization in naive mode");
    }

    #[test]
    fn concurrent_same_source_queries_batch_onto_one_traversal() {
        let (engine, svc) = service(16, ServeConfig { caching: false, ..ServeConfig::default() });
        engine.close_gate();
        let mut answers = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let svc = &svc;
                    s.spawn(move || svc.answer(&PointQuery::BfsDist { source: 3, target: 3 + i }))
                })
                .collect();
            // Wait until the leader is in the kernel and both followers
            // have attached to its flight, then let the traversal finish.
            while svc.stats().batch.joins < 2 {
                std::thread::yield_now();
            }
            engine.open_gate();
            answers.extend(handles.into_iter().map(|h| h.join().unwrap().unwrap()));
        });
        assert_eq!(engine.calls(), 1, "three requests, one traversal");
        let mut paths: Vec<_> = answers.iter().map(|a| a.path).collect();
        paths.sort_by_key(|p| p.label());
        assert_eq!(paths, [AnswerPath::Batched, AnswerPath::Batched, AnswerPath::Exact]);
        for a in &answers {
            assert!(a.value <= 2.0, "hop distances 0/1/2 from source 3");
        }
        assert_eq!(svc.stats().batch, BatchStats { flights: 1, joins: 2 });
    }

    #[test]
    fn landmark_stage_answers_exactly_or_falls_through() {
        // One landmark: the highest-degree vertex is an interior one.
        let (engine, svc) = service(8, ServeConfig { landmarks: 1, ..ServeConfig::default() });
        let built = engine.calls();
        assert!(built >= 1, "landmark rows were precomputed");
        // A query whose source is the landmark is answered from the row.
        let landmark = svc.landmarks.as_ref().unwrap().landmarks()[0];
        let a = svc.answer(&PointQuery::BfsDist { source: landmark, target: 0 }).unwrap();
        assert_eq!(a.path, AnswerPath::Landmark);
        assert_eq!(a.value, f64::from(landmark));
        assert_eq!(engine.calls(), built, "no traversal ran");
        // An unpinnable query falls through to the exact path, same answer.
        let far = PointQuery::BfsDist { source: 0, target: 7 };
        let b = svc.answer(&far).unwrap();
        assert_eq!((b.value, b.path), (7.0, AnswerPath::Exact));
        assert!(svc.stats().landmark_fallthroughs >= 1);
    }

    #[test]
    fn admission_bound_rejects_with_context() {
        let (_engine, svc) = service(4, ServeConfig { max_pending: 0, ..ServeConfig::default() });
        let err = svc.answer(&PointQuery::PrRank { vertex: 1 }).unwrap_err();
        assert_eq!(err, ServeError::Overloaded { pending: 0, max_pending: 0 });
        assert_eq!(svc.stats().rejected, 1);
    }

    #[test]
    fn bad_requests_are_refused_before_admission() {
        let (engine, svc) = service(4, ServeConfig::default());
        assert_eq!(
            svc.answer(&PointQuery::BfsDist { source: 0, target: 9 }),
            Err(ServeError::BadVertex { vertex: 9, num_vertices: 4 })
        );
        assert_eq!(engine.calls(), 0);
        assert_eq!(svc.stats().rejected, 1);
    }

    #[test]
    fn expired_budget_reports_a_serving_dnf() {
        let (_engine, svc) = service(
            8,
            ServeConfig { request_budget: Some(Duration::ZERO), ..ServeConfig::default() },
        );
        let err = svc.answer(&PointQuery::BfsDist { source: 1, target: 2 }).unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        assert_eq!(svc.stats().dnf, 1);
    }

    #[test]
    fn stats_buckets_partition_submissions_exactly() {
        let (_engine, svc) = service(8, ServeConfig::default());
        let _ = svc.answer(&PointQuery::BfsDist { source: 0, target: 3 }); // exact
        let _ = svc.answer(&PointQuery::BfsDist { source: 0, target: 5 }); // cached
        let _ = svc.answer(&PointQuery::BfsDist { source: 0, target: 99 }); // rejected
        let _ = svc.answer(&PointQuery::PrRank { vertex: 2 }); // exact
        let s = svc.stats();
        assert_eq!(s.submitted, s.answered + s.rejected + s.dnf + s.failed);
        assert_eq!(s.answered, s.exact + s.batched + s.cached + s.landmark);
        assert_eq!((s.exact, s.cached, s.rejected), (2, 1, 1));
    }

    #[test]
    fn each_request_emits_one_query_trace_event() {
        let (_engine, mut svc) = service(8, ServeConfig::default());
        let rec = Arc::new(RunRecorder::new());
        svc.set_recorder(Some(Arc::clone(&rec) as Arc<dyn Recorder>));
        let _ = svc.answer(&PointQuery::SsspDist { source: 1, target: 4 });
        let _ = svc.answer(&PointQuery::SsspDist { source: 1, target: 6 });
        let _ = svc.answer(&PointQuery::BfsDist { source: 0, target: 99 });
        let events = rec.events();
        let paths: Vec<(String, String, bool)> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Query { algo, path, ok, .. } => Some((algo.clone(), path.clone(), *ok)),
                _ => None,
            })
            .collect();
        assert_eq!(
            paths,
            vec![
                ("SSSP".into(), "exact".into(), true),
                ("SSSP".into(), "cached".into(), true),
                ("BFS".into(), "bad_vertex".into(), false),
            ]
        );
    }
}
