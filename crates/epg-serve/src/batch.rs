//! Same-source query batching.
//!
//! The GAP paper's observation, applied across concurrent clients: one
//! frontier expansion from source `s` answers *every* query whose
//! source is `s`. While a traversal for `(algo, s)` is in flight, any
//! request landing on the same key attaches to that flight instead of
//! dispatching its own; when the leader publishes the result array, all
//! attached followers resolve from the one traversal.
//!
//! The protocol is leader/follower: [`Batcher::join_or_lead`] returns
//! [`Role::Leader`] to exactly one caller per key (who must compute and
//! [`LeadGuard::publish`]) and [`Role::Follower`] to everyone else (who
//! [`Flight::wait`]s). The leader's guard publishes a failure on drop
//! if the leader unwinds, so followers can never deadlock on a dead
//! flight. A published flight is removed from the in-flight map before
//! followers wake — later requests for the same source start a fresh
//! flight (or, in the full service pipeline, hit the source cache).

use crate::cache::{SourceArray, SourceKey};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;

/// How a flight ended without a result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightError {
    /// The leader's traversal was abandoned by its cancellation budget.
    Cancelled,
    /// The leader unwound without publishing (panic in the kernel).
    Failed,
}

/// What a flight resolves to.
pub type FlightResult = Result<Arc<SourceArray>, FlightError>;

/// One in-flight traversal that many requests may wait on.
pub struct Flight {
    slot: Mutex<Option<FlightResult>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight { slot: Mutex::new(None), cv: Condvar::new() }
    }

    /// Blocks until the leader publishes, then returns the result.
    pub fn wait(&self) -> FlightResult {
        let mut slot = self.slot.lock();
        while slot.is_none() {
            self.cv.wait(&mut slot);
        }
        slot.clone().expect("loop exits only when published")
    }

    fn publish(&self, result: FlightResult) {
        // Notify after unlocking: followers re-check the slot under the
        // lock, so the wakeup cannot be lost, and woken followers do not
        // stall on the slot mutex the leader would still hold.
        {
            let mut slot = self.slot.lock();
            *slot = Some(result);
        }
        self.cv.notify_all();
    }
}

/// The caller's role for one key, decided atomically per request.
pub enum Role<'b> {
    /// This caller starts the traversal and must publish through the
    /// guard (dropping it unpublished counts as [`FlightError::Failed`]).
    Leader(LeadGuard<'b>),
    /// A traversal for this key is already in flight; wait on it.
    Follower(Arc<Flight>),
}

/// Publication obligation held by a flight's leader.
pub struct LeadGuard<'b> {
    batcher: &'b Batcher,
    key: SourceKey,
    flight: Arc<Flight>,
    published: bool,
}

impl LeadGuard<'_> {
    /// Publishes the flight's result, waking every follower, and retires
    /// the flight so later requests start fresh.
    pub fn publish(mut self, result: FlightResult) {
        self.publish_inner(result);
    }

    fn publish_inner(&mut self, result: FlightResult) {
        debug_assert!(!self.published, "a flight publishes exactly once");
        self.published = true;
        // Retire the flight *before* waking followers: a request that
        // arrives after the wake must not attach to a finished flight.
        self.batcher.inner.lock().map.remove(&self.key);
        self.flight.publish(result);
    }
}

impl Drop for LeadGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.publish_inner(Err(FlightError::Failed));
        }
    }
}

/// Consistent snapshot of the batching counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Flights started (requests that became leaders).
    pub flights: u64,
    /// Requests that attached to an existing flight. Every
    /// `join_or_lead` call lands in exactly one of the two buckets.
    pub joins: u64,
}

struct Flights {
    map: HashMap<SourceKey, Arc<Flight>>,
    flights: u64,
    joins: u64,
}

/// The in-flight traversal registry.
pub struct Batcher {
    inner: Mutex<Flights>,
}

impl Default for Batcher {
    fn default() -> Self {
        Batcher::new()
    }
}

impl Batcher {
    /// Creates an empty registry.
    pub fn new() -> Batcher {
        Batcher { inner: Mutex::new(Flights { map: HashMap::new(), flights: 0, joins: 0 }) }
    }

    /// Atomically either starts a flight for `key` (returning the
    /// leader's publication guard) or attaches to the one in flight.
    pub fn join_or_lead(&self, key: SourceKey) -> Role<'_> {
        let mut inner = self.inner.lock();
        if let Some(flight) = inner.map.get(&key) {
            let flight = Arc::clone(flight);
            inner.joins += 1;
            return Role::Follower(flight);
        }
        inner.flights += 1;
        let flight = Arc::new(Flight::new());
        inner.map.insert(key, Arc::clone(&flight));
        Role::Leader(LeadGuard { batcher: self, key, flight, published: false })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BatchStats {
        let inner = self.inner.lock();
        BatchStats { flights: inner.flights, joins: inner.joins }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_engine_api::Algorithm;

    fn key(source: u32) -> SourceKey {
        SourceKey { algo: Algorithm::Bfs, source }
    }

    #[test]
    fn second_caller_attaches_to_the_flight() {
        let b = Batcher::new();
        let Role::Leader(lead) = b.join_or_lead(key(3)) else { panic!("first caller leads") };
        let Role::Follower(f) = b.join_or_lead(key(3)) else { panic!("second caller follows") };
        lead.publish(Ok(Arc::new(SourceArray::Levels(vec![0, 1]))));
        let got = f.wait().expect("published ok");
        assert_eq!(*got, SourceArray::Levels(vec![0, 1]));
        assert_eq!(b.stats(), BatchStats { flights: 1, joins: 1 });
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let b = Batcher::new();
        assert!(matches!(b.join_or_lead(key(1)), Role::Leader(_)));
        assert!(matches!(b.join_or_lead(key(2)), Role::Leader(_)));
        assert_eq!(b.stats(), BatchStats { flights: 2, joins: 0 });
    }

    #[test]
    fn published_flight_retires_before_followers_wake() {
        let b = Batcher::new();
        let Role::Leader(lead) = b.join_or_lead(key(7)) else { panic!() };
        lead.publish(Ok(Arc::new(SourceArray::Levels(vec![0]))));
        // After publication the key is free again: a new request leads.
        assert!(matches!(b.join_or_lead(key(7)), Role::Leader(_)));
    }

    #[test]
    fn dropped_leader_fails_followers_instead_of_hanging() {
        let b = Batcher::new();
        let Role::Leader(lead) = b.join_or_lead(key(4)) else { panic!() };
        let Role::Follower(f) = b.join_or_lead(key(4)) else { panic!() };
        drop(lead); // leader unwound without publishing
        assert_eq!(f.wait(), Err(FlightError::Failed));
        // And the key is free for a retry.
        assert!(matches!(b.join_or_lead(key(4)), Role::Leader(_)));
    }

    #[test]
    fn many_followers_all_resolve_from_one_flight() {
        let b = Batcher::new();
        let Role::Leader(lead) = b.join_or_lead(key(9)) else { panic!() };
        let followers: Vec<Arc<Flight>> = (0..8)
            .map(|_| {
                let Role::Follower(f) = b.join_or_lead(key(9)) else { panic!("must follow") };
                f
            })
            .collect();
        let payload = Arc::new(SourceArray::Dists(vec![0.0, 2.5]));
        std::thread::scope(|s| {
            for f in &followers {
                let payload = &payload;
                s.spawn(move || {
                    let got = f.wait().expect("ok");
                    assert!(Arc::ptr_eq(&got, payload), "followers share the leader's bytes");
                });
            }
            // Publish from the scope so waiters are plausibly parked.
            lead.publish(Ok(Arc::clone(&payload)));
        });
        assert_eq!(b.stats(), BatchStats { flights: 1, joins: 8 });
    }
}
