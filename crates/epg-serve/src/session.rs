//! The client session: a line protocol over any reader/writer pair.
//!
//! One session serves one client. Requests are single lines —
//!
//! ```text
//! bfs <source> <target>     hop distance
//! sssp <source> <target>    weighted shortest-path distance
//! pr <vertex>               PageRank rank
//! stats                     one-line counter snapshot
//! quit                      end the session
//! ```
//!
//! — and every request gets exactly one response line: `ok <value>
//! path=<label>` for answers (`inf` when unreachable), `err <reason>`
//! for anything else, so a client can drive the service with `nc` or a
//! pipe. The `epg serve` CLI binds sessions to stdio or to accepted TCP
//! connections (thread-per-connection; the [`crate::ServeService`] is
//! shared, so sessions batch against each other's traversals).

use crate::service::{PointQuery, ServeService};
use std::io::{self, BufRead, Write};

/// What one session did, for the CLI's goodbye line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionSummary {
    /// Point queries received (well-formed or not).
    pub requests: u64,
    /// Requests answered with `ok`.
    pub answered: u64,
}

/// One parsed request line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Command {
    Query(PointQuery),
    Stats,
    Quit,
}

fn parse_vertex(tok: Option<&str>) -> Result<u32, String> {
    let tok = tok.ok_or("missing vertex id")?;
    tok.parse::<u32>().map_err(|_| format!("bad vertex id {tok:?}"))
}

fn parse_command(line: &str) -> Result<Command, String> {
    let mut toks = line.split_whitespace();
    let cmd = toks.next().ok_or("empty request")?;
    let parsed = match cmd {
        "bfs" => Command::Query(PointQuery::BfsDist {
            source: parse_vertex(toks.next())?,
            target: parse_vertex(toks.next())?,
        }),
        "sssp" => Command::Query(PointQuery::SsspDist {
            source: parse_vertex(toks.next())?,
            target: parse_vertex(toks.next())?,
        }),
        "pr" => Command::Query(PointQuery::PrRank { vertex: parse_vertex(toks.next())? }),
        "stats" => Command::Stats,
        "quit" | "exit" => Command::Quit,
        other => return Err(format!("unknown command {other:?} (bfs/sssp/pr/stats/quit)")),
    };
    if toks.next().is_some() {
        return Err(format!("trailing arguments after {cmd:?}"));
    }
    Ok(parsed)
}

/// Renders an answer value: finite distances and ranks print plainly,
/// unreachable prints `inf`.
fn render_value(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Runs one session to completion: EOF or `quit` ends it. Every
/// request line produces exactly one response line, flushed.
pub fn serve_session<R: BufRead, W: Write>(
    service: &ServeService,
    input: R,
    mut output: W,
) -> io::Result<SessionSummary> {
    let mut summary = SessionSummary::default();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_command(&line) {
            Ok(Command::Quit) => break,
            Ok(Command::Stats) => {
                let s = service.stats();
                writeln!(
                    output,
                    "ok stats submitted={} answered={} rejected={} dnf={} failed={} \
                     exact={} batched={} cached={} landmark={} cache_hits={} cache_misses={} \
                     flights={} joins={}",
                    s.submitted,
                    s.answered,
                    s.rejected,
                    s.dnf,
                    s.failed,
                    s.exact,
                    s.batched,
                    s.cached,
                    s.landmark,
                    s.cache.hits,
                    s.cache.misses,
                    s.batch.flights,
                    s.batch.joins,
                )?;
            }
            Ok(Command::Query(q)) => {
                summary.requests += 1;
                match service.answer(&q) {
                    Ok(a) => {
                        summary.answered += 1;
                        writeln!(output, "ok {} path={}", render_value(a.value), a.path.label())?;
                    }
                    Err(e) => writeln!(output, "err {e}")?,
                }
            }
            Err(reason) => {
                summary.requests += 1;
                writeln!(output, "err {reason}")?;
            }
        }
        output.flush()?;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use epg_engine_api::{
        Algorithm, AlgorithmResult, EngineInfo, QueryEngine, RunOutput, RunParams,
    };
    use epg_graph::VertexId;
    use epg_parallel::ThreadPool;
    use std::io::Cursor;
    use std::sync::Arc;

    struct Ring {
        n: usize,
    }

    impl QueryEngine for Ring {
        fn info(&self) -> EngineInfo {
            EngineInfo {
                name: "ring-mock",
                representation: "closed form",
                parallelism: "none",
                distributed_capable: false,
                requires_proprietary_compiler: false,
            }
        }

        fn supports(&self, algo: Algorithm) -> bool {
            matches!(algo, Algorithm::Bfs | Algorithm::PageRank)
        }

        fn num_vertices(&self) -> usize {
            self.n
        }

        fn out_degree(&self, _v: VertexId) -> usize {
            2
        }

        fn query(&self, algo: Algorithm, params: &RunParams<'_>) -> RunOutput {
            let root = params.root.unwrap_or(0);
            let result = match algo {
                Algorithm::Bfs => AlgorithmResult::BfsTree {
                    parent: vec![0; self.n],
                    level: (0..self.n as u32)
                        .map(|v| v.abs_diff(root).min(self.n as u32 - v.abs_diff(root)))
                        .collect(),
                },
                Algorithm::PageRank => AlgorithmResult::Ranks {
                    ranks: vec![1.0 / self.n as f64; self.n],
                    iterations: 1,
                },
                _ => unreachable!(),
            };
            RunOutput::new(result, Default::default(), Default::default())
        }
    }

    fn session_over(input: &str) -> (String, SessionSummary) {
        let svc = ServeService::new(
            Arc::new(Ring { n: 8 }),
            Arc::new(ThreadPool::new(1)),
            ServeConfig::default(),
        );
        let mut out = Vec::new();
        let summary = serve_session(&svc, Cursor::new(input.as_bytes()), &mut out).unwrap();
        (String::from_utf8(out).unwrap(), summary)
    }

    #[test]
    fn every_request_gets_exactly_one_response_line() {
        let (out, summary) = session_over("bfs 0 3\nbfs 0 4\npr 2\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "ok 3 path=exact");
        assert_eq!(lines[1], "ok 4 path=cached", "same source served from cache");
        assert_eq!(lines[2], "ok 0.125 path=exact");
        assert_eq!(summary, SessionSummary { requests: 3, answered: 3 });
    }

    #[test]
    fn errors_are_reported_inline_and_do_not_end_the_session() {
        let (out, summary) =
            session_over("bfs 0 99\nsssp 0 1\nfly 1 2\nbfs zero 1\nbfs 1\nbfs 1 2\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("err vertex 99 out of range"));
        assert!(lines[1].starts_with("err unsupported algorithm SSSP"));
        assert!(lines[2].starts_with("err unknown command \"fly\""));
        assert!(lines[3].starts_with("err bad vertex id"));
        assert!(lines[4].starts_with("err missing vertex id"));
        assert!(lines[5].starts_with("ok 1 path="), "session survives errors");
        assert_eq!(summary.requests, 6);
        assert_eq!(summary.answered, 1);
    }

    #[test]
    fn quit_and_blank_lines_behave() {
        let (out, summary) = session_over("\n   \nbfs 0 0\nquit\nbfs 0 1\n");
        assert_eq!(out.lines().count(), 1, "nothing after quit is served");
        assert_eq!(summary, SessionSummary { requests: 1, answered: 1 });
    }

    #[test]
    fn stats_line_reflects_the_counters() {
        let (out, _) = session_over("bfs 0 1\nbfs 0 2\nstats\n");
        let stats_line = out.lines().nth(2).unwrap();
        assert!(stats_line.starts_with("ok stats submitted=2 answered=2"));
        assert!(stats_line.contains("cached=1"));
    }

    #[test]
    fn unreachable_prints_inf_and_trailing_args_are_rejected() {
        assert!(render_value(f64::INFINITY) == "inf");
        assert_eq!(render_value(2.5), "2.5");
        assert_eq!(parse_command("pr 1 2"), Err("trailing arguments after \"pr\"".to_string()));
    }
}
