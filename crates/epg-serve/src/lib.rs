//! `epg-serve` — the resident-graph query service.
//!
//! The paper's harness measures batch trials: one process, one `run()`,
//! one result. The ROADMAP's north star is the opposite shape — a
//! long-lived process that loads the CSR once and answers *point
//! queries* (BFS hop distance, SSSP distance, PageRank rank lookup)
//! from many concurrent clients, where throughput comes from
//! amortization rather than raw kernel speed. This crate is that
//! serving layer, a pipeline of four stages (DESIGN.md §14):
//!
//! ```text
//! request → admission → landmark → cache → batcher → kernel
//!             (bounded   (O(1)     (LRU of  (same-   (QueryEngine
//!              queue,     exact     per-     source    through the
//!              DNF-aware  estimates source    attach)   pool's
//!              rejection) or fall   arrays)             exclusive
//!                         through)                      gate)
//! ```
//!
//! * [`admission::Admission`] bounds the number of requests in flight;
//!   excess load is rejected immediately (`Overloaded`), and each
//!   admitted request carries a [`epg_parallel::CancelToken`] deadline
//!   so a query past its SLO unwinds cooperatively and reports DNF
//!   instead of stalling the queue.
//! * [`landmark::LandmarkIndex`] optionally answers distance queries in
//!   O(landmarks) time from precomputed per-landmark arrays — only when
//!   the triangle bounds pin the answer *exactly*; anything else falls
//!   through to the exact path, so landmark mode never changes answers.
//! * [`cache::SourceCache`] is a bounded LRU of whole per-source result
//!   arrays: one cached BFS from source `s` answers every `(s, *)` hop
//!   query for free.
//! * [`batch::Batcher`] implements the GAP same-source trick across
//!   concurrent clients: requests landing on a source while an
//!   expansion for it is in flight attach to that flight, and all of
//!   them resolve from one traversal.
//!
//! [`service::ServeService`] composes the stages over any
//! [`epg_engine_api::QueryEngine`]; [`session`] speaks a line protocol
//! over arbitrary reader/writer pairs (the `epg serve` CLI binds it to
//! stdio or TCP).

#![warn(missing_docs)]
pub mod admission;
pub mod batch;
pub mod cache;
pub mod landmark;
pub mod service;
pub mod session;

pub use cache::{CacheStats, SourceArray, SourceCache, SourceKey};
pub use service::{Answer, AnswerPath, PointQuery, ServeConfig, ServeService, ServeStats};

use epg_engine_api::Algorithm;

/// Why a request was not answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Admission rejected the request: the pending-queue bound is full.
    Overloaded {
        /// Requests in flight when the request arrived.
        pending: usize,
        /// The configured bound.
        max_pending: usize,
    },
    /// The per-request budget tripped mid-traversal; the expansion was
    /// abandoned cooperatively (the serving analogue of a DNF trial).
    DeadlineExceeded,
    /// The engine behind the service does not implement this algorithm.
    Unsupported(Algorithm),
    /// A vertex id outside `0..num_vertices`.
    BadVertex {
        /// The offending id.
        vertex: u32,
        /// Number of vertices in the resident graph.
        num_vertices: usize,
    },
    /// The traversal computing this answer failed (leader panicked).
    Internal,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { pending, max_pending } => {
                write!(f, "overloaded: {pending} requests in flight (bound {max_pending})")
            }
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded (request budget tripped)"),
            ServeError::Unsupported(algo) => write!(f, "unsupported algorithm {}", algo.abbrev()),
            ServeError::BadVertex { vertex, num_vertices } => {
                write!(f, "vertex {vertex} out of range (graph has {num_vertices} vertices)")
            }
            ServeError::Internal => write!(f, "internal error computing the answer"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let e = ServeError::Overloaded { pending: 7, max_pending: 4 };
        assert!(e.to_string().contains("7 requests in flight (bound 4)"));
        assert!(ServeError::Unsupported(Algorithm::Lcc).to_string().contains("LCC"));
        assert!(ServeError::BadVertex { vertex: 9, num_vertices: 4 }
            .to_string()
            .contains("vertex 9 out of range"));
    }
}
