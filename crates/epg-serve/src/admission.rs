//! Bounded admission.
//!
//! A resident service under overload must shed load at the door, not
//! queue it unboundedly: a request that would wait longer than its SLO
//! is better rejected in microseconds than answered late (the serving
//! analogue of the harness's DNF discipline — see DESIGN.md §14).
//! [`Admission`] is a counting gate: at most `max_pending` requests may
//! hold a [`Permit`] at once; acquisition beyond the bound fails
//! immediately and the service surfaces it as
//! [`crate::ServeError::Overloaded`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// The admission gate. Permits are RAII: dropping one releases its slot.
pub struct Admission {
    max_pending: usize,
    pending: AtomicUsize,
}

/// An admitted request's slot, released on drop.
pub struct Permit<'a> {
    gate: &'a Admission,
}

impl Admission {
    /// Creates a gate admitting at most `max_pending` concurrent
    /// requests. A bound of zero rejects everything (useful for drain).
    pub fn new(max_pending: usize) -> Admission {
        Admission { max_pending, pending: AtomicUsize::new(0) }
    }

    /// Tries to admit one request; `None` means the bound is full.
    pub fn try_acquire(&self) -> Option<Permit<'_>> {
        let mut cur = self.pending.load(Ordering::Relaxed);
        loop {
            if cur >= self.max_pending {
                return None;
            }
            match self.pending.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Permit { gate: self }),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Requests currently holding a permit.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    /// The configured bound.
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let prev = self.gate.pending.fetch_sub(1, Ordering::Release);
        debug_assert!(prev > 0, "permit released twice");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_is_enforced_and_permits_release() {
        let gate = Admission::new(2);
        let a = gate.try_acquire().expect("slot 1");
        let _b = gate.try_acquire().expect("slot 2");
        assert!(gate.try_acquire().is_none(), "third request must bounce");
        assert_eq!(gate.pending(), 2);
        drop(a);
        assert_eq!(gate.pending(), 1);
        assert!(gate.try_acquire().is_some(), "released slot is reusable");
    }

    #[test]
    fn zero_bound_rejects_everything() {
        let gate = Admission::new(0);
        assert!(gate.try_acquire().is_none());
        assert_eq!(gate.max_pending(), 0);
    }

    #[test]
    fn concurrent_acquisition_never_exceeds_the_bound() {
        let gate = Admission::new(4);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let gate = &gate;
                let peak = &peak;
                s.spawn(move || {
                    for _ in 0..200 {
                        if let Some(p) = gate.try_acquire() {
                            peak.fetch_max(gate.pending(), Ordering::Relaxed);
                            drop(p);
                        }
                    }
                });
            }
        });
        assert!(peak.load(Ordering::Relaxed) <= 4, "bound breached");
        assert_eq!(gate.pending(), 0, "all permits returned");
    }
}
