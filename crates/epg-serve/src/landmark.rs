//! The landmark (oracle) index: precomputed distance rows, exact-only.
//!
//! Landmark (ALT-style) distance oracles trade preprocessing for O(k)
//! query time: precompute the full distance array from `k` landmark
//! vertices, then bound any `(s, t)` distance by the triangle
//! inequality — `|d(L,s) − d(L,t)| ≤ d(s,t) ≤ d(L,s) + d(L,t)` for
//! every landmark `L`. The usual formulation serves the bounds as an
//! *estimate*; this service refuses to estimate. [`LandmarkIndex::
//! estimate`] answers only when the answer is provably exact:
//!
//! * `s` (or, on symmetrized graphs, `t`) **is** a landmark — the
//!   precomputed row holds the answer directly;
//! * some landmark reaches exactly one of the endpoints — on an
//!   undirected graph the endpoints are then in different components
//!   and the distance is exactly `+∞`;
//! * the best upper bound meets the best lower bound — the bounds pinch
//!   and the common value is the distance (this genuinely fires with
//!   ≥ 2 landmarks when one lies on the `s→t` shortest path and
//!   another sees `s` and `t` at extremal offsets).
//!
//! Everything else returns `None` and the service falls through to the
//! exact cache/batch/kernel pipeline, so enabling landmarks can change
//! latency but never answers. Landmarks are the highest-out-degree
//! vertices — on skewed (Kronecker) graphs the hubs most shortest paths
//! cross.
//!
//! **Symmetry requirement**: the `t`-is-a-landmark row lookup and the
//! different-components rule read `d(t, s)` as `d(s, t)`, which is only
//! valid on symmetrized graphs — the shape the harness's homogenization
//! step (and `epg serve`'s loader) produces. Feed a directed graph and
//! these two rules are unsound; `LandmarkIndex::build` is therefore
//! explicit opt-in via `ServeConfig::landmarks > 0`.

use crate::cache::SourceArray;
use epg_engine_api::Algorithm;
use epg_graph::VertexId;
use std::collections::HashMap;
use std::sync::Arc;

/// Precomputed per-landmark distance rows for BFS hops and (optionally)
/// weighted SSSP distances.
pub struct LandmarkIndex {
    landmarks: Vec<VertexId>,
    slot_of: HashMap<VertexId, usize>,
    /// `hops[k][v]`: BFS levels from landmark `k` (always present).
    hops: Vec<Arc<SourceArray>>,
    /// `dists[k][v]`: SSSP distances from landmark `k`; empty when the
    /// engine's query surface has no SSSP (then SSSP estimates always
    /// fall through).
    dists: Vec<Arc<SourceArray>>,
}

impl LandmarkIndex {
    /// Builds an index over the `k` highest-out-degree vertices.
    ///
    /// `compute` runs one full traversal (through whatever pipeline the
    /// caller serves exact queries with) and may return `None` on
    /// failure, which drops that landmark from the index entirely —
    /// a partial index stays sound, it just pins fewer queries.
    /// `with_sssp` additionally precomputes weighted distance rows.
    pub fn build(
        k: usize,
        num_vertices: usize,
        degree_of: impl Fn(VertexId) -> usize,
        mut compute: impl FnMut(Algorithm, VertexId) -> Option<Arc<SourceArray>>,
        with_sssp: bool,
    ) -> LandmarkIndex {
        let mut by_degree: Vec<VertexId> = (0..num_vertices as VertexId).collect();
        by_degree.sort_by_key(|&v| std::cmp::Reverse((degree_of(v), std::cmp::Reverse(v))));
        let mut index = LandmarkIndex {
            landmarks: Vec::new(),
            slot_of: HashMap::new(),
            hops: Vec::new(),
            dists: Vec::new(),
        };
        for &v in by_degree.iter().take(k.min(num_vertices)) {
            let Some(hops) = compute(Algorithm::Bfs, v) else { continue };
            let sssp = if with_sssp {
                match compute(Algorithm::Sssp, v) {
                    Some(d) => Some(d),
                    None => continue, // keep hops/dists rows aligned
                }
            } else {
                None
            };
            index.slot_of.insert(v, index.landmarks.len());
            index.landmarks.push(v);
            index.hops.push(hops);
            if let Some(d) = sssp {
                index.dists.push(d);
            }
        }
        index
    }

    /// The landmark vertices, in selection (degree) order.
    pub fn landmarks(&self) -> &[VertexId] {
        &self.landmarks
    }

    /// Returns the exact `(s, t)` distance if the precomputed rows pin
    /// it; `None` means "fall through to the exact pipeline".
    pub fn estimate(&self, algo: Algorithm, s: VertexId, t: VertexId) -> Option<f64> {
        let rows = match algo {
            Algorithm::Bfs => &self.hops,
            Algorithm::Sssp if !self.dists.is_empty() => &self.dists,
            _ => return None,
        };
        if rows.is_empty() {
            return None;
        }
        if let Some(&i) = self.slot_of.get(&s) {
            return Some(rows[i].value_at(t));
        }
        if let Some(&i) = self.slot_of.get(&t) {
            // d(t, s) == d(s, t) on symmetrized graphs (module docs).
            return Some(rows[i].value_at(s));
        }
        let mut ub = f64::INFINITY;
        let mut lb = 0.0f64;
        for row in rows {
            let ds = row.value_at(s);
            let dt = row.value_at(t);
            match (ds.is_finite(), dt.is_finite()) {
                // The landmark reaches one endpoint and not the other:
                // on an undirected graph they sit in different
                // components, so the distance is exactly +∞.
                (true, false) | (false, true) => return Some(f64::INFINITY),
                // Reaches neither: this landmark knows nothing about
                // the (possibly shared) component of s and t.
                (false, false) => continue,
                (true, true) => {
                    ub = ub.min(ds + dt);
                    lb = lb.max((ds - dt).abs());
                }
            }
        }
        (ub.is_finite() && ub == lb).then_some(ub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A path graph 0–1–2–…–(n−1): BFS levels from `root` are |v−root|.
    fn path_levels(n: u32, root: u32) -> Arc<SourceArray> {
        Arc::new(SourceArray::Levels((0..n).map(|v| v.abs_diff(root)).collect()))
    }

    /// Index over a 5-vertex path with the given landmarks.
    fn path_index(landmarks: &[u32]) -> LandmarkIndex {
        // Degrees: give requested landmarks the top degrees in order.
        let rank = |v: u32| landmarks.iter().position(|&l| l == v);
        LandmarkIndex::build(
            landmarks.len(),
            5,
            |v| rank(v).map_or(0, |r| 100 - r),
            |algo, v| {
                assert_eq!(algo, Algorithm::Bfs);
                Some(path_levels(5, v))
            },
            false,
        )
    }

    #[test]
    fn picks_highest_degree_vertices_in_order() {
        let idx = path_index(&[2, 0]);
        assert_eq!(idx.landmarks(), &[2, 0]);
    }

    #[test]
    fn landmark_endpoint_answers_from_the_row() {
        let idx = path_index(&[2]);
        assert_eq!(idx.estimate(Algorithm::Bfs, 2, 4), Some(2.0), "s is a landmark");
        assert_eq!(idx.estimate(Algorithm::Bfs, 4, 2), Some(2.0), "t is a landmark (symmetric)");
    }

    #[test]
    fn pinched_triangle_bounds_are_exact() {
        // Landmarks 0 and 2 on the path 0–1–2–3–4, query (1, 3):
        // via 2 (on the shortest path): ub = 1 + 1 = 2;
        // via 0 (behind s): lb = |1 − 3| = 2. Pinched ⇒ exactly 2.
        let idx = path_index(&[2, 0]);
        assert_eq!(idx.estimate(Algorithm::Bfs, 1, 3), Some(2.0));
    }

    #[test]
    fn loose_bounds_fall_through() {
        // A single landmark at 0 cannot pin (1, 3): ub = 4, lb = 2.
        let idx = path_index(&[0]);
        assert_eq!(idx.estimate(Algorithm::Bfs, 1, 3), None);
    }

    #[test]
    fn cross_component_queries_are_exactly_infinite() {
        // Two components {0,1} and {2,3}: the landmark 0 reaches 1 but
        // not 2, so d(1, 2) is exactly +∞.
        let rows = Arc::new(SourceArray::Levels(vec![0, 1, u32::MAX, u32::MAX]));
        let idx = LandmarkIndex::build(
            1,
            4,
            |v| if v == 0 { 10 } else { 0 },
            |_, v| {
                assert_eq!(v, 0);
                Some(Arc::clone(&rows))
            },
            false,
        );
        assert_eq!(idx.estimate(Algorithm::Bfs, 1, 2), Some(f64::INFINITY));
        // Both unseen: no information, fall through.
        assert_eq!(idx.estimate(Algorithm::Bfs, 2, 3), None);
    }

    #[test]
    fn failed_landmark_builds_are_skipped() {
        let idx = LandmarkIndex::build(
            2,
            5,
            |v| 10 - v as usize,
            |_, v| (v != 0).then(|| path_levels(5, v)),
            false,
        );
        // Vertex 0 (highest degree) failed to build; only 1 remains.
        assert_eq!(idx.landmarks(), &[1]);
    }

    #[test]
    fn sssp_estimates_require_distance_rows() {
        let idx = path_index(&[2]);
        assert_eq!(idx.estimate(Algorithm::Sssp, 2, 4), None, "no SSSP rows built");
        assert_eq!(idx.estimate(Algorithm::PageRank, 0, 0), None, "not a distance algo");
    }
}
