//! Differential verification of the serving pipeline against the
//! sequential oracles in `epg_graph::oracle`, on a real GAP engine over
//! a real Kronecker graph. Every answer path — exact, cached, batched,
//! landmark, and the landmark *fallback* into the exact pipeline —
//! must produce the same answer a fresh sequential traversal would,
//! and the amortized paths must be byte-identical to the uncached ones
//! regardless of the pool's thread count (the proptest at the bottom).

use epg_engine_api::Engine;
use epg_engine_gap::GapEngine;
use epg_generator::kronecker::{self, KroneckerConfig};
use epg_graph::{oracle, Csr, EdgeList};
use epg_parallel::ThreadPool;
use epg_serve::{AnswerPath, PointQuery, ServeConfig, ServeService};
use proptest::prelude::*;
use std::sync::Arc;

fn kron(scale: u32, weighted: bool) -> EdgeList {
    kronecker::generate(
        &KroneckerConfig { scale, edge_factor: 8, weighted, ..Default::default() },
        42,
    )
    .symmetrized()
}

fn service_on(el: &EdgeList, nthreads: usize, config: ServeConfig) -> ServeService {
    let pool = Arc::new(ThreadPool::new(nthreads));
    let mut e = GapEngine::new();
    e.load_edge_list(el);
    e.construct(&pool);
    ServeService::new(Arc::new(e.into_query()), pool, config)
}

/// The oracle's view of one query, widened exactly as the service
/// widens its answers.
fn oracle_value(g: &Csr, q: &PointQuery) -> f64 {
    match *q {
        PointQuery::BfsDist { source, target } => {
            let level = oracle::bfs(g, source).level[target as usize];
            if level == u32::MAX {
                f64::INFINITY
            } else {
                f64::from(level)
            }
        }
        PointQuery::SsspDist { source, target } => {
            f64::from(oracle::dijkstra(g, source)[target as usize])
        }
        PointQuery::PrRank { vertex } => oracle::pagerank(g, 6e-8, 300).0[vertex as usize],
    }
}

#[test]
fn exact_and_cached_answers_match_the_sequential_oracles() {
    let el = kron(9, true);
    let g = Csr::from_edge_list(&el);
    let svc = service_on(&el, 2, ServeConfig::default());
    let roots = epg_graph::degree::sample_roots(&el, 3, 7);
    for &root in &roots {
        for target in [0u32, 5, 100, (g.num_vertices() - 1) as u32] {
            let bfs = PointQuery::BfsDist { source: root, target };
            let sssp = PointQuery::SsspDist { source: root, target };
            for q in [bfs, sssp] {
                let first = svc.answer(&q).expect("answered");
                let second = svc.answer(&q).expect("answered");
                assert_eq!(second.path, AnswerPath::Cached, "repeat hits the cache");
                assert_eq!(first.value, second.value, "cache is answer-preserving");
                assert_eq!(first.value, oracle_value(&g, &q), "query {q:?}");
            }
        }
    }
    // PageRank is iterative: the service must be internally exact
    // (cached == exact bit-for-bit) and oracle-close.
    let pr = PointQuery::PrRank { vertex: roots[0] };
    let first = svc.answer(&pr).unwrap();
    let second = svc.answer(&pr).unwrap();
    assert_eq!(second.path, AnswerPath::Cached);
    assert_eq!(first.value, second.value);
    assert!((first.value - oracle_value(&g, &pr)).abs() < 1e-5);
    let s = svc.stats();
    assert_eq!(s.submitted, s.answered, "everything in range was answered");
    assert_eq!(s.answered, s.exact + s.batched + s.cached + s.landmark);
}

#[test]
fn batched_answers_match_the_oracle() {
    // Caching off so repeated sources cannot short-circuit: overlap has
    // to come from attaching to an in-flight traversal. Concurrency is
    // nondeterministic, so fire concurrent same-source pairs until at
    // least one join happened — every answer is oracle-checked either
    // way, so the loop only decides when batching was *exercised*.
    let el = kron(9, true);
    let g = Csr::from_edge_list(&el);
    let svc = service_on(&el, 1, ServeConfig { caching: false, ..ServeConfig::default() });
    let root = epg_graph::degree::sample_roots(&el, 1, 11)[0];
    let want = f64::from(oracle::dijkstra(&g, root)[40]);
    for _ in 0..50 {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let svc = &svc;
                    s.spawn(move || svc.answer(&PointQuery::SsspDist { source: root, target: 40 }))
                })
                .collect();
            for h in handles {
                let a = h.join().unwrap().expect("answered");
                assert_eq!(a.value, want, "every concurrent answer matches the oracle");
            }
        });
        if svc.stats().batch.joins > 0 {
            break;
        }
    }
    let s = svc.stats();
    assert!(s.batch.joins > 0, "no overlap in 50 rounds of 4 concurrent same-source queries");
    assert_eq!(s.batched, s.batch.joins, "every join resolved as a batched answer");
    assert_eq!(s.submitted, s.exact + s.batched, "nothing was cached or dropped");
}

#[test]
fn landmark_answers_and_fallbacks_match_the_oracle() {
    let el = kron(9, true);
    let g = Csr::from_edge_list(&el);
    let svc = service_on(&el, 2, ServeConfig { landmarks: 4, ..ServeConfig::default() });
    let n = g.num_vertices() as u32;
    // A deterministic spread of pairs: some will be pinned by the
    // landmark rows (hub sources among them), most fall back.
    let mut landmark_hits = 0u64;
    for i in 0..24u32 {
        let (s, t) = (i * 7 % n, (i * 13 + 5) % n);
        for q in [
            PointQuery::BfsDist { source: s, target: t },
            PointQuery::SsspDist { source: s, target: t },
        ] {
            let a = svc.answer(&q).expect("answered");
            assert_eq!(a.value, oracle_value(&g, &q), "query {q:?} (path {:?})", a.path);
            if a.path == AnswerPath::Landmark {
                landmark_hits += 1;
            }
        }
    }
    // Hub sources are landmarks on a skewed graph: query them directly
    // so the landmark path is deterministically exercised.
    let mut by_degree: Vec<u32> = (0..n).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(svc_degree(&g, v)));
    let hub = by_degree[0];
    let q = PointQuery::BfsDist { source: hub, target: (hub + 1) % n };
    let a = svc.answer(&q).expect("answered");
    assert_eq!(a.path, AnswerPath::Landmark, "hub source answers from its row");
    assert_eq!(a.value, oracle_value(&g, &q));
    let s = svc.stats();
    assert_eq!(s.landmark, landmark_hits + 1);
    assert!(s.landmark_fallthroughs > 0, "some pairs must fall back to the exact pipeline");
}

fn svc_degree(g: &Csr, v: u32) -> usize {
    g.neighbors(v).len()
}

// ---- cached-vs-uncached byte-identity across thread counts ----------
//
// The satellite property: for any source and any pool width, the value
// the full pipeline serves (and then serves again from cache) is
// *bit-identical* to what a naive no-amortization service computes
// fresh. Services are built once per thread count; proptest samples
// queries against them.

struct Fleet {
    csr: Csr,
    /// Full-pipeline services at 1..=3 threads.
    served: Vec<ServeService>,
    /// The unamortized reference at 1 thread.
    naive: ServeService,
}

fn fleet() -> &'static Fleet {
    static FLEET: std::sync::OnceLock<Fleet> = std::sync::OnceLock::new();
    FLEET.get_or_init(|| {
        let el = kron(8, true);
        Fleet {
            csr: Csr::from_edge_list(&el),
            served: (1..=3).map(|tc| service_on(&el, tc, ServeConfig::default())).collect(),
            naive: service_on(&el, 1, ServeConfig::naive()),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_answers_are_byte_identical_to_uncached_recomputation(
        source in 0u32..256,
        target in 0u32..256,
        threads in 0usize..3,
        weighted in prop_oneof![Just(true), Just(false)],
    ) {
        let f = fleet();
        let q = if weighted {
            PointQuery::SsspDist { source, target }
        } else {
            PointQuery::BfsDist { source, target }
        };
        let served = &f.served[threads];
        let first = served.answer(&q).expect("answered");
        let again = served.answer(&q).expect("answered");
        let fresh = f.naive.answer(&q).expect("answered");
        prop_assert_eq!(again.path, AnswerPath::Cached);
        prop_assert_eq!(fresh.path, AnswerPath::Exact, "naive mode never amortizes");
        // Bit-identity, not approximate equality: compare the raw bits
        // so 0.0 vs -0.0 or NaN payload drift would fail loudly.
        prop_assert_eq!(first.value.to_bits(), again.value.to_bits());
        prop_assert_eq!(first.value.to_bits(), fresh.value.to_bits());
        // And both agree with the sequential oracle.
        prop_assert_eq!(first.value.to_bits(), oracle_value(&f.csr, &q).to_bits());
    }
}
