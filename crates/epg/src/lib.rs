//! `epg` — the easy-parallel-graph-rs facade.
//!
//! One dependency that re-exports the whole framework: the graph substrate,
//! the OpenMP-like runtime, the generators, the five engines, the machine
//! and power models, the harness, and the resident-graph serving layer.
//! See the repository README for a guided tour; `examples/quickstart.rs`
//! is the five-minute version.
//!
//! ```
//! use epg::prelude::*;
//!
//! // Generate a small Kronecker graph, homogenize it, run BFS everywhere.
//! let spec = GraphSpec::Kronecker { scale: 7, edge_factor: 8, weighted: false };
//! let ds = Dataset::from_spec(&spec, 42);
//! let cfg = ExperimentConfig {
//!     algorithms: vec![Algorithm::Bfs],
//!     max_roots: Some(2),
//!     ..ExperimentConfig::new()
//! };
//! let result = run_experiment(&cfg, &ds);
//! assert!(!result.run_times(EngineKind::Gap, Algorithm::Bfs).is_empty());
//! ```

#![warn(missing_docs)]
pub use epg_engine_api as engine_api;
pub use epg_engine_gap as gap;
pub use epg_engine_graph500 as graph500;
pub use epg_engine_graphbig as graphbig;
pub use epg_engine_graphmat as graphmat;
pub use epg_engine_powergraph as powergraph;
pub use epg_generator as generator;
pub use epg_graph as graph;
pub use epg_harness as harness;
pub use epg_machine as machine;
pub use epg_parallel as parallel;
pub use epg_serve as serve;
pub use epg_trace as trace;

/// The names most programs need.
pub mod prelude {
    pub use epg_engine_api::{
        Algorithm, AlgorithmResult, Counters, Dir, Engine, Phase, RecorderCtx, RunOutput,
        RunParams, RunRecorder, SsspKernel, StoppingCriterion, Trace, TraceEvent,
    };
    pub use epg_generator::GraphSpec;
    pub use epg_graph::{Csr, EdgeList, VertexId, Weight};
    pub use epg_harness::dataset::Dataset;
    pub use epg_harness::registry::EngineKind;
    pub use epg_harness::runner::{run_experiment, ExperimentConfig, ExperimentResult};
    pub use epg_harness::stats::Summary;
    pub use epg_machine::{MachineModel, MachineSpec};
    pub use epg_parallel::{Schedule, ThreadPool};
    pub use epg_serve::{PointQuery, ServeConfig, ServeService};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_names_resolve() {
        use crate::prelude::*;
        let _pool = ThreadPool::new(1);
        let _ = Algorithm::Bfs.abbrev();
        let _ = EngineKind::Gap.name();
        let _ = SsspKernel::ALL;
        let _ = MachineModel::paper_machine();
        let _ = ServeConfig::naive();
    }
}
