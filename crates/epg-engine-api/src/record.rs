//! The zero-cost recording shim.
//!
//! Engines never talk to a recorder directly — they carry a
//! [`RecorderCtx`], a `Copy` capability that is a reference to a
//! [`Recorder`] when the `trace` cargo feature is on and a zero-sized
//! phantom when it is off. Every emission goes through
//! [`RecorderCtx::emit`], whose body is empty in the off configuration,
//! so the event-construction closures (and everything only they read)
//! are dead-code-eliminated: the instrumented kernels compile to the
//! same machine code as before the telemetry layer existed. That is the
//! acceptance bar — with the feature off, `cargo bench -p epg-bench`
//! medians must not move.
//!
//! The feature is resolved *here*, in `epg-engine-api`, so the five
//! engine crates need no features of their own.

use crate::counters::{Counters, Trace};
use epg_trace::{Dir, TraceEvent};

/// Borrowed recording capability handed to engines via
/// [`crate::RunParams::recorder`].
///
/// The ISSUE sketched `&mut dyn Recorder`; the shim deliberately uses
/// `&dyn Recorder` (with `Recorder: Send + Sync` providing interior
/// mutability) because pool workers record [`TraceEvent::WorkerSpan`]s
/// from their own threads while the engine records from the dispatcher
/// — a `&mut` borrow could not be shared with the pool.
#[derive(Clone, Copy)]
pub struct RecorderCtx<'a> {
    #[cfg(feature = "trace")]
    inner: Option<&'a dyn epg_trace::Recorder>,
    #[cfg(not(feature = "trace"))]
    _ghost: core::marker::PhantomData<&'a ()>,
}

impl<'a> RecorderCtx<'a> {
    /// The inert context: every emission is a no-op.
    pub fn none() -> RecorderCtx<'a> {
        RecorderCtx {
            #[cfg(feature = "trace")]
            inner: None,
            #[cfg(not(feature = "trace"))]
            _ghost: core::marker::PhantomData,
        }
    }

    /// Context recording into `rec` (only constructible with the
    /// `trace` feature on — without it there is nothing to hold).
    #[cfg(feature = "trace")]
    pub fn new(rec: &'a dyn epg_trace::Recorder) -> RecorderCtx<'a> {
        RecorderCtx { inner: Some(rec) }
    }

    /// Whether events reach a recorder. Always `false` with the
    /// feature off.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    /// Records the event `make` builds. `make` runs only when a
    /// recorder is attached; with the feature off the whole call —
    /// closure included — compiles away.
    #[inline(always)]
    pub fn emit<F: FnOnce() -> TraceEvent>(&self, make: F) {
        #[cfg(feature = "trace")]
        if let Some(rec) = self.inner {
            rec.record(make());
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = make;
        }
    }

    /// Emits a per-iteration event (frontier size + direction).
    #[inline(always)]
    pub fn iteration(&self, iter: u32, frontier: u64, dir: Dir) {
        self.emit(|| TraceEvent::Iteration { iter, frontier, dir });
    }

    /// Emits an allocation high-water mark.
    #[inline(always)]
    pub fn alloc_hwm(&self, label: &str, bytes: u64) {
        self.emit(|| TraceEvent::AllocHwm { label: label.to_string(), bytes });
    }
}

impl std::fmt::Debug for RecorderCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RecorderCtx(enabled: {})", self.is_enabled())
    }
}

/// A [`Trace`] builder that mirrors every region it records as a
/// [`TraceEvent::Region`]. Engines that previously pushed onto a bare
/// `Trace` switch to a `Tracer` and their region stream shows up in the
/// telemetry for free, in the same order the machine model consumes it.
pub struct Tracer<'a> {
    trace: Trace,
    rec: RecorderCtx<'a>,
}

impl<'a> Tracer<'a> {
    /// Empty tracer emitting through `rec`.
    pub fn new(rec: RecorderCtx<'a>) -> Tracer<'a> {
        Tracer { trace: Trace::default(), rec }
    }

    /// Records a parallel region (span clamped to work, as
    /// [`Trace::parallel`] does).
    #[inline]
    pub fn parallel(&mut self, work: u64, span: u64, bytes: u64) {
        self.trace.parallel(work, span, bytes);
        let span = span.min(work);
        self.rec.emit(|| TraceEvent::Region { work, span, bytes, parallel: true });
    }

    /// Records a serial section.
    #[inline]
    pub fn serial(&mut self, work: u64, bytes: u64) {
        self.trace.serial(work, bytes);
        self.rec.emit(|| TraceEvent::Region { work, span: work, bytes, parallel: false });
    }

    /// The recording capability, for emitting non-region events.
    pub fn recorder(&self) -> RecorderCtx<'a> {
        self.rec
    }

    /// Finishes, yielding the accumulated [`Trace`] for `RunOutput`.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

/// Tracks the last-flushed [`Counters`] snapshot and emits the
/// difference as a [`TraceEvent::CountersDelta`]. Engines flush once
/// per iteration (region `"iteration"`) and once after their end-of-run
/// adjustments (region `"finalize"`), which makes the invariant *sum of
/// deltas == final counters* hold by construction — and any future
/// counter bump outside a flushed region break the trace-equivalence
/// test instead of silently skewing `epg-machine` projections.
///
/// Zero-sized (and `flush` empty) with the `trace` feature off.
#[derive(Debug, Default)]
pub struct DeltaTracker {
    #[cfg(feature = "trace")]
    last: Counters,
}

impl DeltaTracker {
    /// Tracker with an all-zero baseline.
    pub fn new() -> DeltaTracker {
        DeltaTracker::default()
    }

    /// Emits `counters - <last flush>` attributed to `region`, then
    /// advances the baseline. Zero deltas are suppressed.
    #[inline(always)]
    pub fn flush(&mut self, region: &str, counters: &Counters, rec: RecorderCtx<'_>) {
        #[cfg(feature = "trace")]
        {
            let d = counters.delta_since(&self.last);
            if d != Counters::default() {
                rec.emit(|| TraceEvent::CountersDelta {
                    region: region.to_string(),
                    edges: d.edges_traversed,
                    vertices: d.vertices_touched,
                    bytes_read: d.bytes_read,
                    bytes_written: d.bytes_written,
                    iterations: d.iterations,
                });
            }
            self.last = *counters;
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (region, counters, rec);
        }
    }
}

/// Sums every [`TraceEvent::CountersDelta`] in `events` back into a
/// [`Counters`] — the inverse the trace-equivalence test checks against
/// each engine's reported aggregate.
pub fn sum_counter_deltas(events: &[TraceEvent]) -> Counters {
    let mut total = Counters::default();
    for ev in events {
        if let TraceEvent::CountersDelta {
            edges,
            vertices,
            bytes_read,
            bytes_written,
            iterations,
            ..
        } = ev
        {
            total.edges_traversed += edges;
            total.vertices_touched += vertices;
            total.bytes_read += bytes_read;
            total.bytes_written += bytes_written;
            total.iterations += iterations;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_ctx_is_inert_and_copy() {
        let ctx = RecorderCtx::none();
        let ctx2 = ctx; // Copy
        assert!(!ctx.is_enabled(), "none() must never be enabled");
        // The closure must not run when no recorder is attached.
        ctx2.emit(|| panic!("emit ran its closure with no recorder"));
        ctx2.iteration(1, 10, Dir::Push);
        ctx2.alloc_hwm("x", 1);
    }

    #[test]
    fn tracer_builds_the_same_trace_as_before() {
        let mut t = Tracer::new(RecorderCtx::none());
        t.parallel(1000, 50, 8000);
        t.serial(100, 800);
        let trace = t.into_trace();
        assert_eq!(trace.total_work(), 1100);
        assert_eq!(trace.sync_points(), 1);
        assert_eq!(trace.records[0].span, 50);
    }

    #[test]
    fn delta_tracker_is_silent_without_recorder() {
        let mut dt = DeltaTracker::new();
        let c = Counters { edges_traversed: 5, ..Default::default() };
        dt.flush("iteration", &c, RecorderCtx::none());
    }

    #[cfg(feature = "trace")]
    mod live {
        use super::*;
        use epg_trace::{RunRecorder, TraceEvent};

        #[test]
        fn events_reach_the_recorder() {
            let rec = RunRecorder::new();
            let ctx = RecorderCtx::new(&rec);
            assert!(ctx.is_enabled());
            ctx.iteration(2, 7, Dir::Pull);
            let mut t = Tracer::new(ctx);
            t.parallel(10, 2, 80);
            assert_eq!(
                rec.events(),
                vec![
                    TraceEvent::Iteration { iter: 2, frontier: 7, dir: Dir::Pull },
                    TraceEvent::Region { work: 10, span: 2, bytes: 80, parallel: true },
                ]
            );
        }

        #[test]
        fn delta_flushes_sum_to_the_final_counters() {
            let rec = RunRecorder::new();
            let ctx = RecorderCtx::new(&rec);
            let mut dt = DeltaTracker::new();
            let mut c = Counters::default();
            c.edges_traversed += 10;
            c.bytes_read += 80;
            dt.flush("iteration", &c, ctx);
            c.edges_traversed += 5;
            c.iterations = 2;
            dt.flush("iteration", &c, ctx);
            dt.flush("finalize", &c, ctx); // zero delta: suppressed
            assert_eq!(sum_counter_deltas(&rec.events()), c);
            assert_eq!(rec.len(), 2);
        }
    }
}
