//! The common engine protocol.
//!
//! §III-A of the paper: experiments run "author-provided implementations
//! with modifications only to insert performance analysis hooks or to
//! ensure homogeneous stopping criteria". This crate is those hooks: a
//! phase-separated run protocol every engine implements, shared work
//! counters, the execution traces the machine model consumes, homogenized
//! stopping criteria, and the per-engine log formats the harness's parser
//! phase handles.
//!
//! The phase protocol mirrors the two Graph500 kernels plus the I/O the
//! paper insists on separating (Table I's GraphMat example):
//!
//! 1. [`Engine::load_file`] — file bytes → unstructured data in RAM;
//! 2. [`Engine::construct`] — RAM edge list → the engine's structure
//!    (not separable for GraphBIG/PowerGraph, which is itself a finding
//!    the paper reports — see [`Engine::separable_construction`]);
//! 3. [`Engine::run`] — the algorithm kernel, timed per root.

#![warn(missing_docs)]
pub mod counters;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod logfmt;
pub mod query;
pub mod record;
pub mod result;
pub mod stopping;

pub use counters::{Counters, RegionRecord, Trace};
#[cfg(feature = "fault-inject")]
pub use fault::{FaultKind, FaultPlan, FaultyEngine};
pub use query::QueryEngine;
pub use record::{sum_counter_deltas, DeltaTracker, RecorderCtx, Tracer};
pub use result::{AlgorithmResult, RunOutput};
pub use stopping::StoppingCriterion;
// Re-exported so engine crates and tests use telemetry types without
// depending on epg-trace themselves.
pub use epg_trace::{Dir, NullRecorder, Recorder, RunRecorder, TraceEvent};

use epg_graph::{EdgeList, VertexId};
use epg_parallel::{CancelToken, ThreadPool};
use std::path::Path;

/// The algorithms the paper measures. BFS/SSSP/PR are the framework's core
/// trio (§III-D); CDLP/LCC/WCC appear in the Graphalytics comparisons
/// (Tables I and II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Breadth-first search (rooted).
    Bfs,
    /// Single-source shortest paths (rooted, needs weights).
    Sssp,
    /// PageRank.
    PageRank,
    /// Community detection by label propagation.
    Cdlp,
    /// Local clustering coefficient.
    Lcc,
    /// Weakly connected components.
    Wcc,
    /// Betweenness centrality (§V extension: "algorithms like triangle
    /// counting and betweenness centrality are widely implemented but not
    /// supported by either Graphalytics nor easy-parallel-graph-*" — we
    /// support them).
    Bc,
    /// Global triangle count (§V extension).
    TriangleCount,
}

impl Algorithm {
    /// Every algorithm the framework knows, Table I columns first.
    pub const ALL: [Algorithm; 8] = [
        Algorithm::Bfs,
        Algorithm::Cdlp,
        Algorithm::Lcc,
        Algorithm::PageRank,
        Algorithm::Sssp,
        Algorithm::Wcc,
        Algorithm::Bc,
        Algorithm::TriangleCount,
    ];

    /// The framework's core trio (§III-D).
    pub const CORE: [Algorithm; 3] = [Algorithm::Bfs, Algorithm::Sssp, Algorithm::PageRank];

    /// The §V future-work extensions implemented by this reproduction.
    pub const EXTENSIONS: [Algorithm; 2] = [Algorithm::Bc, Algorithm::TriangleCount];

    /// Table-header abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            Algorithm::Bfs => "BFS",
            Algorithm::Sssp => "SSSP",
            Algorithm::PageRank => "PR",
            Algorithm::Cdlp => "CDLP",
            Algorithm::Lcc => "LCC",
            Algorithm::Wcc => "WCC",
            Algorithm::Bc => "BC",
            Algorithm::TriangleCount => "TC",
        }
    }

    /// Full name for prose output.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Bfs => "Breadth First Search",
            Algorithm::Sssp => "Single Source Shortest Paths",
            Algorithm::PageRank => "PageRank",
            Algorithm::Cdlp => "Community Detection (Label Propagation)",
            Algorithm::Lcc => "Local Clustering Coefficient",
            Algorithm::Wcc => "Weakly Connected Components",
            Algorithm::Bc => "Betweenness Centrality",
            Algorithm::TriangleCount => "Triangle Counting",
        }
    }

    /// Rooted algorithms take one of the 32 sampled roots per run.
    pub fn is_rooted(self) -> bool {
        matches!(self, Algorithm::Bfs | Algorithm::Sssp)
    }

    /// SSSP requires weights; Graphalytics skips it on unweighted graphs
    /// (the N/A cells of Table I).
    pub fn needs_weights(self) -> bool {
        matches!(self, Algorithm::Sssp)
    }

    /// Parses an abbreviation (case-insensitive).
    pub fn from_abbrev(s: &str) -> Option<Algorithm> {
        Algorithm::ALL.into_iter().find(|a| a.abbrev().eq_ignore_ascii_case(s))
    }
}

/// Selectable SSSP kernel for engines that ship more than one (currently
/// GAP). The paper's engines each run a single Δ-stepping variant; the
/// raw-speed tier adds two sequential priority-queue kernels so the
/// differential suites can cross-check all of them against the oracle on
/// adversarial graph shapes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SsspKernel {
    /// Bucketed Δ-stepping (the paper's GAP kernel; parallel).
    #[default]
    DeltaStepping,
    /// Sequential Dijkstra over a monotone u64-key radix heap, using an
    /// order-preserving f32→u64 distance key mapping.
    RadixHeap,
    /// Bounded multi-source shortest paths (arXiv:2504.17033): recursive
    /// pivot/partial-order-queue Dijkstra variant with adaptive
    /// constant-degree preprocessing.
    Bmssp,
}

impl SsspKernel {
    /// Every kernel, in probe order. The differential and proptest suites
    /// iterate this array; `tests` below pin it against the enum via an
    /// exhaustive match so a new variant cannot ship without coverage.
    pub const ALL: [SsspKernel; 3] =
        [SsspKernel::DeltaStepping, SsspKernel::RadixHeap, SsspKernel::Bmssp];

    /// Stable CLI / CSV / JSON label.
    pub fn name(self) -> &'static str {
        match self {
            SsspKernel::DeltaStepping => "delta",
            SsspKernel::RadixHeap => "radix",
            SsspKernel::Bmssp => "bmssp",
        }
    }

    /// Parses a CLI label (case-insensitive).
    pub fn from_name(s: &str) -> Option<SsspKernel> {
        SsspKernel::ALL.into_iter().find(|k| k.name().eq_ignore_ascii_case(s))
    }
}

/// Execution phases, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Reading the input file from disk into RAM.
    ReadFile,
    /// Building the engine's graph data structure.
    Construct,
    /// Running the algorithm kernel.
    Run,
    /// Writing results (Graphalytics counts this; we report it separately).
    Output,
}

impl Phase {
    /// All phases in order.
    pub const ALL: [Phase; 4] = [Phase::ReadFile, Phase::Construct, Phase::Run, Phase::Output];

    /// CSV column label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::ReadFile => "read_file",
            Phase::Construct => "construct",
            Phase::Run => "run",
            Phase::Output => "output",
        }
    }
}

/// Per-run parameters handed to [`Engine::run`].
pub struct RunParams<'a> {
    /// Root vertex for rooted algorithms; ignored otherwise.
    pub root: Option<VertexId>,
    /// Thread pool to run on (its size is the experiment's thread count).
    pub pool: &'a ThreadPool,
    /// PageRank stopping criterion. Engines default to their native
    /// behavior when `None` (GraphMat: run until no vertex changes; the
    /// rest: L1 < 6e-8) — the homogenization §IV-A describes.
    pub stopping: Option<StoppingCriterion>,
    /// Iteration cap for iterative kernels.
    pub max_iterations: u32,
    /// Betweenness-centrality source count: `None` runs exact Brandes from
    /// every vertex; `Some(k)` samples `k` sources and scales (GAP-style
    /// approximate BC).
    pub bc_sources: Option<usize>,
    /// Telemetry sink. Defaults to [`RecorderCtx::none`]; a no-op unless
    /// the `trace` cargo feature is enabled *and* a recorder is attached
    /// (see the `record` module).
    pub recorder: RecorderCtx<'a>,
    /// Per-request cancellation budget for reentrant query adapters
    /// ([`QueryEngine`]): when set, the adapter attaches it to the pool
    /// for the duration of this run (and restores the previous token
    /// afterwards), so a query past its SLO unwinds cooperatively.
    /// Batch trials leave it `None` — the supervisor in `epg-harness`
    /// manages the pool token itself for those.
    pub cancel: Option<CancelToken>,
}

impl<'a> RunParams<'a> {
    /// Standard parameters: paper defaults, given a pool and optional root.
    pub fn new(pool: &'a ThreadPool, root: Option<VertexId>) -> RunParams<'a> {
        RunParams {
            root,
            pool,
            stopping: None,
            max_iterations: 300,
            bc_sources: None,
            recorder: RecorderCtx::none(),
            cancel: None,
        }
    }
}

/// Static description of an engine (the §III-C inventory row).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineInfo {
    /// Display name ("GAP", "Graph500", ...).
    pub name: &'static str,
    /// Graph representation ("CSR", "DCSC", "vertex-cut CSR", ...).
    pub representation: &'static str,
    /// Parallelism mechanism description.
    pub parallelism: &'static str,
    /// Whether the engine is distributed-capable (PowerGraph) — the paper
    /// runs it on a single node but notes the overhead it carries.
    pub distributed_capable: bool,
    /// Whether the reference build requires a proprietary compiler
    /// (GraphMat needs ICC; a §VI cost/portability consideration).
    pub requires_proprietary_compiler: bool,
}

/// The engine protocol. One instance holds one loaded graph and can run
/// many algorithm invocations against it (32 roots per experiment).
pub trait Engine {
    /// Static metadata.
    fn info(&self) -> EngineInfo;

    /// Whether this engine implements `algo`. PowerGraph famously ships no
    /// BFS toolkit; Graph500 is BFS-only.
    fn supports(&self, algo: Algorithm) -> bool;

    /// Whether file reading and structure construction are separate phases.
    /// False for GraphBIG and PowerGraph, which "read in the input file and
    /// build a graph simultaneously" (§III-B).
    fn separable_construction(&self) -> bool {
        true
    }

    /// Phase 1: read a homogenized input file into RAM (an edge list for
    /// most engines; GraphBIG/PowerGraph also construct here). Engines use
    /// the pool for parallel decode/parse of the input bytes — the paper
    /// measures this phase separately precisely because it dominates
    /// end-to-end time for several systems.
    fn load_file(&mut self, path: &Path, pool: &ThreadPool) -> std::io::Result<()>;

    /// In-memory variant of phase 1 for tests and benches.
    fn load_edge_list(&mut self, el: &EdgeList);

    /// Phase 2: build the engine's graph structure from the loaded data.
    /// No-op when `separable_construction()` is false and the file path was
    /// used. Engines may use the pool to parallelize construction.
    fn construct(&mut self, pool: &ThreadPool);

    /// Phase 3: run an algorithm kernel. Panics if `supports(algo)` is
    /// false or the graph is not constructed.
    fn run(&mut self, algo: Algorithm, params: &RunParams<'_>) -> RunOutput;

    /// Log-file dialect for the harness's writer/parser phase.
    fn log_style(&self) -> logfmt::LogStyle {
        logfmt::LogStyle::Generic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbrevs_roundtrip() {
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::from_abbrev(a.abbrev()), Some(a));
            assert_eq!(Algorithm::from_abbrev(&a.abbrev().to_lowercase()), Some(a));
        }
        assert_eq!(Algorithm::from_abbrev("nope"), None);
    }

    #[test]
    fn rooted_and_weighted_sets() {
        assert!(Algorithm::Bfs.is_rooted());
        assert!(Algorithm::Sssp.is_rooted());
        assert!(!Algorithm::PageRank.is_rooted());
        assert!(Algorithm::Sssp.needs_weights());
        assert!(!Algorithm::Bfs.needs_weights());
    }

    #[test]
    fn kernel_names_roundtrip() {
        for k in SsspKernel::ALL {
            assert_eq!(SsspKernel::from_name(k.name()), Some(k));
            assert_eq!(SsspKernel::from_name(&k.name().to_uppercase()), Some(k));
        }
        assert_eq!(SsspKernel::from_name("spfa"), None);
        assert_eq!(SsspKernel::default(), SsspKernel::DeltaStepping);
    }

    // Census: the match is exhaustive, so adding a kernel variant without
    // giving it an ordinal is a compile error, and forgetting to add it to
    // `ALL` fails the seen-all assertion.
    #[test]
    fn kernel_all_is_exhaustive() {
        fn ordinal(k: SsspKernel) -> usize {
            match k {
                SsspKernel::DeltaStepping => 0,
                SsspKernel::RadixHeap => 1,
                SsspKernel::Bmssp => 2,
            }
        }
        let mut seen = [false; SsspKernel::ALL.len()];
        for k in SsspKernel::ALL {
            seen[ordinal(k)] = true;
        }
        assert!(seen.iter().all(|&s| s), "SsspKernel::ALL misses a variant");
    }

    #[test]
    fn phase_labels_unique() {
        let labels: std::collections::HashSet<_> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), Phase::ALL.len());
    }
}
