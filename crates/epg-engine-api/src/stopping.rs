//! Homogenized stopping criteria.
//!
//! §IV-A: "all implementations have been modified to use ||p_t - p_{t-1}||_1
//! (the absolute sum of differences)" with ε = 6e-8 ≈ f32 machine epsilon —
//! except GraphMat, which "executes until no vertices change rank;
//! effectively its stopping criterion requires the ∞-norm be less than
//! machine epsilon", which is why Fig. 4 shows it iterating far longer.

/// PageRank stopping criterion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StoppingCriterion {
    /// Stop when the L1 norm of the rank change falls below the threshold.
    L1Norm(f64),
    /// Stop when **no** vertex's rank changes between iterations (an
    /// ∞-norm-below-epsilon test at f32 granularity) — GraphMat's native
    /// behavior.
    NoChange,
}

impl StoppingCriterion {
    /// The paper's homogenized criterion: L1 < 6e-8.
    pub const fn paper_default() -> StoppingCriterion {
        StoppingCriterion::L1Norm(6e-8)
    }

    /// Evaluates the criterion given this iteration's L1 change and the
    /// count of vertices whose (f32-truncated) rank changed.
    pub fn is_converged(&self, l1_delta: f64, changed_vertices: u64) -> bool {
        match *self {
            StoppingCriterion::L1Norm(eps) => l1_delta < eps,
            StoppingCriterion::NoChange => changed_vertices == 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_threshold() {
        let c = StoppingCriterion::paper_default();
        assert!(c.is_converged(5e-8, 1000));
        assert!(!c.is_converged(7e-8, 0));
    }

    #[test]
    fn no_change_requires_zero_changed() {
        let c = StoppingCriterion::NoChange;
        assert!(c.is_converged(1.0, 0));
        assert!(!c.is_converged(0.0, 1));
    }

    #[test]
    fn no_change_is_stricter_in_practice() {
        // A tiny L1 delta spread across a few vertices converges under L1
        // but not under NoChange — the Fig. 4 iteration-count gap.
        let l1 = StoppingCriterion::paper_default();
        let nc = StoppingCriterion::NoChange;
        assert!(l1.is_converged(1e-9, 3));
        assert!(!nc.is_converged(1e-9, 3));
    }
}
