//! Deterministic fault injection (the `fault-inject` cargo feature).
//!
//! Exists to make the harness's trial supervisor testable: a
//! [`FaultyEngine`] wraps any [`Engine`] and, at chosen trial indices,
//! induces the three failure modes real systems exhibited in the paper's
//! experiments — a crash (panic), a hang (the PowerGraph "did not
//! complete in a reasonable time" rows), and a silently wrong result.
//! Faults are planned up front ([`FaultPlan`]), either explicitly or
//! from a seed, so every supervision test is reproducible bit-for-bit.
//!
//! The whole module is compiled only with the feature on; production
//! builds carry none of it.

use crate::logfmt::LogStyle;
use crate::{Algorithm, AlgorithmResult, Engine, EngineInfo, RunOutput, RunParams};
use epg_graph::EdgeList;
use epg_parallel::ThreadPool;
use std::path::Path;
use std::time::Duration;

/// One induced failure mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The kernel panics mid-trial (a crash; transient, retryable).
    Panic,
    /// The kernel never finishes on its own: after computing, it spins
    /// until the pool's cancel token trips. Exercises deadline reaping
    /// with partial counters intact.
    Hang,
    /// The kernel completes but returns a corrupted result — caught
    /// only by a supervisor verification callback.
    WrongResult,
}

impl FaultKind {
    fn from_ordinal(n: u64) -> FaultKind {
        match n % 3 {
            0 => FaultKind::Panic,
            1 => FaultKind::Hang,
            _ => FaultKind::WrongResult,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Which trials fail and how. Trial indices count calls to
/// [`FaultyEngine::run`] — *including* the supervisor's retries, which
/// is what lets a test script "panic on the first attempt, succeed on
/// the retry" with a single-entry plan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<(u64, FaultKind)>,
}

impl FaultPlan {
    /// Empty plan: the wrapped engine behaves normally.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault at a run-call index (builder style).
    pub fn with_fault(mut self, trial: u64, kind: FaultKind) -> FaultPlan {
        self.faults.push((trial, kind));
        self
    }

    /// Derives a plan for `trials` run-calls from `seed`: roughly one
    /// call in `period` faults, with the kind also seed-derived. Equal
    /// seeds give equal plans — the determinism the supervision suite
    /// asserts.
    pub fn seeded(seed: u64, trials: u64, period: u64) -> FaultPlan {
        let period = period.max(1);
        let mut plan = FaultPlan::new();
        for t in 0..trials {
            let h = splitmix64(seed ^ splitmix64(t));
            if h.is_multiple_of(period) {
                plan.faults.push((t, FaultKind::from_ordinal(h >> 32)));
            }
        }
        plan
    }

    /// The fault planned for a run-call index, if any.
    pub fn fault_at(&self, trial: u64) -> Option<FaultKind> {
        self.faults.iter().find(|(t, _)| *t == trial).map(|(_, k)| *k)
    }

    /// True when no fault is planned.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Minimal per-variant corruption: plausible shape, wrong value — the
/// kind of bug only result verification catches.
fn corrupt(result: &mut AlgorithmResult) {
    match result {
        AlgorithmResult::BfsTree { level, .. } => {
            if let Some(l) = level.first_mut() {
                *l = l.wrapping_add(1);
            }
        }
        AlgorithmResult::Distances(d) => {
            if let Some(x) = d.first_mut() {
                *x += 1.0;
            }
        }
        AlgorithmResult::Ranks { ranks, .. } => {
            if let Some(r) = ranks.first_mut() {
                *r += 0.5;
            }
        }
        AlgorithmResult::Labels(l) => {
            if let Some(x) = l.first_mut() {
                *x = x.wrapping_add(1);
            }
        }
        AlgorithmResult::Coefficients(c) | AlgorithmResult::Centrality(c) => {
            if let Some(x) = c.first_mut() {
                *x += 1.0;
            }
        }
        AlgorithmResult::Components(c) => {
            if let Some(x) = c.first_mut() {
                *x = x.wrapping_add(1);
            }
        }
        AlgorithmResult::Triangles(t) => *t = t.wrapping_add(1),
    }
}

/// An [`Engine`] decorator that injects the planned faults. Everything
/// except [`Engine::run`] delegates untouched, so phases 1–2 and the
/// support matrix behave exactly like the wrapped engine.
pub struct FaultyEngine {
    inner: Box<dyn Engine>,
    plan: FaultPlan,
    trial: u64,
}

impl FaultyEngine {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: Box<dyn Engine>, plan: FaultPlan) -> FaultyEngine {
        FaultyEngine { inner, plan, trial: 0 }
    }

    /// Run-calls seen so far (attempts, not supervised trials).
    pub fn trials_started(&self) -> u64 {
        self.trial
    }
}

impl Engine for FaultyEngine {
    fn info(&self) -> EngineInfo {
        self.inner.info()
    }

    fn supports(&self, algo: Algorithm) -> bool {
        self.inner.supports(algo)
    }

    fn separable_construction(&self) -> bool {
        self.inner.separable_construction()
    }

    fn load_file(&mut self, path: &Path, pool: &ThreadPool) -> std::io::Result<()> {
        self.inner.load_file(path, pool)
    }

    fn load_edge_list(&mut self, el: &EdgeList) {
        self.inner.load_edge_list(el)
    }

    fn construct(&mut self, pool: &ThreadPool) {
        self.inner.construct(pool)
    }

    fn run(&mut self, algo: Algorithm, params: &RunParams<'_>) -> RunOutput {
        let trial = self.trial;
        self.trial += 1;
        match self.plan.fault_at(trial) {
            None => self.inner.run(algo, params),
            Some(FaultKind::Panic) => {
                panic!("fault-inject: induced panic at run-call {trial}")
            }
            Some(FaultKind::Hang) => {
                // Do the real work first so the Timeout outcome carries
                // genuine partial counters, then "hang": a cooperative
                // spin that only the cancel token ends. Refuse to hang
                // unsupervised — a test that forgot the budget should
                // fail loudly, not wedge the suite.
                let out = self.inner.run(algo, params);
                assert!(
                    params.pool.cancel_token().is_some(),
                    "fault-inject: induced hang with no cancel token attached to the pool"
                );
                while !params.pool.is_cancelled() {
                    std::thread::sleep(Duration::from_micros(200));
                }
                out.cancelled(true)
            }
            Some(FaultKind::WrongResult) => {
                let mut out = self.inner.run(algo, params);
                corrupt(&mut out.result);
                out
            }
        }
    }

    fn log_style(&self) -> LogStyle {
        self.inner.log_style()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(42, 1000, 10);
        let b = FaultPlan::seeded(42, 1000, 10);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::seeded(43, 1000, 10);
        assert_ne!(a, c, "different seed should perturb the plan");
        assert!(!a.is_empty(), "1000 trials at period 10 should plan some faults");
    }

    #[test]
    fn explicit_plan_lookup() {
        let p = FaultPlan::new().with_fault(0, FaultKind::Panic).with_fault(3, FaultKind::Hang);
        assert_eq!(p.fault_at(0), Some(FaultKind::Panic));
        assert_eq!(p.fault_at(1), None);
        assert_eq!(p.fault_at(3), Some(FaultKind::Hang));
    }

    #[test]
    fn corruption_touches_every_variant() {
        let mut r = AlgorithmResult::Triangles(7);
        corrupt(&mut r);
        assert_eq!(r, AlgorithmResult::Triangles(8));
        let mut r = AlgorithmResult::BfsTree { parent: vec![0], level: vec![0] };
        corrupt(&mut r);
        assert_eq!(r, AlgorithmResult::BfsTree { parent: vec![0], level: vec![1] });
        let mut r = AlgorithmResult::Distances(vec![1.0, 2.0]);
        corrupt(&mut r);
        assert_eq!(r, AlgorithmResult::Distances(vec![2.0, 2.0]));
        // Empty results must not panic the injector itself.
        let mut r = AlgorithmResult::Labels(vec![]);
        corrupt(&mut r);
        assert_eq!(r, AlgorithmResult::Labels(vec![]));
    }
}
