//! Per-engine log-file dialects.
//!
//! Phase 4 of easy-parallel-graph-* "parses through the log files to
//! compress the output into a CSV" — each system logs its phases in its own
//! format (the paper shows GraphMat's, below Table I). The harness's log
//! writer emits these dialects from measured times and its parser reads
//! them back, reproducing the AWK/sed layer of the original framework.

use crate::Phase;

/// Which system's log dialect to emit/parse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogStyle {
    /// GAP Benchmark Suite: `Read Time: ... / Build Time: ... / Trial Time: ...`
    Gap,
    /// Graph500 reference output.
    Graph500,
    /// GraphBIG/openG banner-style output.
    GraphBig,
    /// GraphMat's phase lines as excerpted under Table I.
    GraphMat,
    /// GraphLab/PowerGraph `INFO:` logging.
    PowerGraph,
    /// Plain `phase: seconds` lines.
    Generic,
}

impl LogStyle {
    /// Formats one phase-timing line in this dialect. Returns `None` when
    /// the engine does not log that phase (e.g. fused construction).
    pub fn format_phase(&self, phase: Phase, seconds: f64, context: &str) -> Option<String> {
        match self {
            LogStyle::Gap => Some(match phase {
                Phase::ReadFile => format!("Read Time:           {seconds:.5}"),
                Phase::Construct => format!("Build Time:          {seconds:.5}"),
                Phase::Run => format!("Trial Time:          {seconds:.5}"),
                Phase::Output => format!("Output Time:         {seconds:.5}"),
            }),
            LogStyle::Graph500 => match phase {
                Phase::ReadFile => Some(format!("graph_generation:               {seconds:.6}")),
                Phase::Construct => Some(format!("construction_time:              {seconds:.6}")),
                Phase::Run => Some(format!("bfs_time:                       {seconds:.6}")),
                Phase::Output => None, // the reference prints stats, not output time
            },
            LogStyle::GraphBig => match phase {
                // openG loads and builds in one step; it logs only the total.
                Phase::ReadFile => {
                    Some(format!("loading graph file... complete! time: {seconds:.4} s"))
                }
                Phase::Construct => None,
                Phase::Run => Some(format!("[{context}] total execution time: {seconds:.4} s")),
                Phase::Output => Some(format!("writing results... {seconds:.4} s")),
            },
            LogStyle::GraphMat => match phase {
                Phase::ReadFile => {
                    Some(format!("Finished file read of {context}. time: {seconds:.5}"))
                }
                Phase::Construct => Some(format!("load graph: {seconds:.5} sec")),
                Phase::Run => {
                    Some(format!("run algorithm 1 (compute {context}): {seconds:.5} sec"))
                }
                Phase::Output => Some(format!("print output: {seconds:.5} sec")),
            },
            LogStyle::PowerGraph => match phase {
                Phase::ReadFile => Some(format!(
                    "INFO:  distributed_graph.hpp: Finished loading graph in {seconds:.5} seconds"
                )),
                Phase::Construct => None, // fused with loading
                Phase::Run => Some(format!(
                    "INFO:  synchronous_engine.hpp: Finished Running engine in {seconds:.5} seconds"
                )),
                Phase::Output => Some(format!(
                    "INFO:  distributed_graph.hpp: Saved output in {seconds:.5} seconds"
                )),
            },
            LogStyle::Generic => Some(format!("{}: {seconds:.6}", phase.label())),
        }
    }

    /// Parses one line; returns the phase and seconds when the line is a
    /// phase-timing line of this dialect.
    pub fn parse_line(&self, line: &str) -> Option<(Phase, f64)> {
        let grab_after = |marker: &str| -> Option<f64> {
            let idx = line.find(marker)? + marker.len();
            line[idx..]
                .split_whitespace()
                .next()?
                .trim_end_matches(|c: char| !c.is_ascii_digit())
                .parse()
                .ok()
        };
        match self {
            LogStyle::Gap => [
                ("Read Time:", Phase::ReadFile),
                ("Build Time:", Phase::Construct),
                ("Trial Time:", Phase::Run),
                ("Output Time:", Phase::Output),
            ]
            .iter()
            .find_map(|(m, p)| grab_after(m).map(|s| (*p, s))),
            LogStyle::Graph500 => [
                ("graph_generation:", Phase::ReadFile),
                ("construction_time:", Phase::Construct),
                ("bfs_time:", Phase::Run),
            ]
            .iter()
            .find_map(|(m, p)| grab_after(m).map(|s| (*p, s))),
            LogStyle::GraphBig => [
                ("complete! time:", Phase::ReadFile),
                ("total execution time:", Phase::Run),
                ("writing results...", Phase::Output),
            ]
            .iter()
            .find_map(|(m, p)| grab_after(m).map(|s| (*p, s))),
            LogStyle::GraphMat => {
                if line.contains("Finished file read") {
                    grab_after("time:").map(|s| (Phase::ReadFile, s))
                } else if line.contains("load graph:") {
                    grab_after("load graph:").map(|s| (Phase::Construct, s))
                } else if line.contains("run algorithm") {
                    grab_after("): ").map(|s| (Phase::Run, s))
                } else if line.contains("print output:") {
                    grab_after("print output:").map(|s| (Phase::Output, s))
                } else {
                    None
                }
            }
            LogStyle::PowerGraph => [
                ("Finished loading graph in", Phase::ReadFile),
                ("Finished Running engine in", Phase::Run),
                ("Saved output in", Phase::Output),
            ]
            .iter()
            .find_map(|(m, p)| grab_after(m).map(|s| (*p, s))),
            LogStyle::Generic => Phase::ALL
                .iter()
                .find_map(|p| grab_after(&format!("{}:", p.label())).map(|s| (*p, s))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STYLES: [LogStyle; 6] = [
        LogStyle::Gap,
        LogStyle::Graph500,
        LogStyle::GraphBig,
        LogStyle::GraphMat,
        LogStyle::PowerGraph,
        LogStyle::Generic,
    ];

    #[test]
    fn every_dialect_roundtrips_what_it_formats() {
        for style in STYLES {
            for phase in Phase::ALL {
                let Some(line) = style.format_phase(phase, 2.65211, "PageRank") else {
                    continue;
                };
                let parsed = style.parse_line(&line);
                assert_eq!(
                    parsed.map(|(p, _)| p),
                    Some(phase),
                    "{style:?} phase {phase:?} line {line:?}"
                );
                let (_, secs) = parsed.unwrap();
                assert!((secs - 2.65211).abs() < 1e-4, "{style:?}: {secs} from {line:?}");
            }
        }
    }

    #[test]
    fn graphmat_matches_paper_excerpt_shape() {
        // The excerpt under Table I:
        //   "Finished file read of dota-league. time: 2.65211"
        //   "load graph: 5.91229 sec"
        //   "run algorithm 2 (compute PageRank): 0.149445 sec"
        let s = LogStyle::GraphMat;
        assert_eq!(
            s.parse_line("Finished file read of dota-league. time: 2.65211"),
            Some((Phase::ReadFile, 2.65211))
        );
        assert_eq!(s.parse_line("load graph: 5.91229 sec"), Some((Phase::Construct, 5.91229)));
        assert_eq!(
            s.parse_line("run algorithm 2 (compute PageRank): 0.149445 sec"),
            Some((Phase::Run, 0.149445))
        );
        assert_eq!(s.parse_line("print output: 0.0641179 sec"), Some((Phase::Output, 0.0641179)));
        assert_eq!(s.parse_line("initialize engine: 8.32081e-05 sec"), None);
    }

    #[test]
    fn fused_engines_do_not_log_construction() {
        assert!(LogStyle::GraphBig.format_phase(Phase::Construct, 1.0, "").is_none());
        assert!(LogStyle::PowerGraph.format_phase(Phase::Construct, 1.0, "").is_none());
    }

    #[test]
    fn unrelated_lines_do_not_parse() {
        for style in STYLES {
            assert_eq!(style.parse_line("completely unrelated chatter"), None);
            assert_eq!(style.parse_line(""), None);
        }
    }
}
