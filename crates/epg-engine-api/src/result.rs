//! Algorithm outputs.

use crate::counters::{Counters, Trace};
use epg_graph::{VertexId, Weight};

/// The value computed by a kernel.
#[derive(Clone, Debug, PartialEq)]
pub enum AlgorithmResult {
    /// BFS: parent tree plus levels.
    BfsTree {
        /// Per-vertex parent (`NO_VERTEX` when unreached / for the root).
        parent: Vec<VertexId>,
        /// Per-vertex hop count (`u32::MAX` when unreached).
        level: Vec<u32>,
    },
    /// SSSP: per-vertex distance (`INF_DIST` when unreached).
    Distances(Vec<Weight>),
    /// PageRank: per-vertex rank and the iteration count the paper plots in
    /// Fig. 4's right panel.
    Ranks {
        /// Per-vertex rank (sums to ~1).
        ranks: Vec<f64>,
        /// Iterations until the stopping criterion held.
        iterations: u32,
    },
    /// CDLP: per-vertex community label.
    Labels(Vec<u64>),
    /// LCC: per-vertex clustering coefficient.
    Coefficients(Vec<f64>),
    /// WCC: per-vertex component id (smallest member vertex id).
    Components(Vec<VertexId>),
    /// Betweenness centrality: per-vertex score (§V extension). When
    /// computed from sampled sources the scores are scaled estimates.
    Centrality(Vec<f64>),
    /// Global triangle count (§V extension).
    Triangles(u64),
}

impl AlgorithmResult {
    /// PageRank iteration count, if this is a PageRank result.
    pub fn iterations(&self) -> Option<u32> {
        match self {
            AlgorithmResult::Ranks { iterations, .. } => Some(*iterations),
            _ => None,
        }
    }

    /// Number of vertices the result covers.
    pub fn len(&self) -> usize {
        match self {
            AlgorithmResult::BfsTree { parent, .. } => parent.len(),
            AlgorithmResult::Distances(d) => d.len(),
            AlgorithmResult::Ranks { ranks, .. } => ranks.len(),
            AlgorithmResult::Labels(l) => l.len(),
            AlgorithmResult::Coefficients(c) => c.len(),
            AlgorithmResult::Components(c) => c.len(),
            AlgorithmResult::Centrality(c) => c.len(),
            AlgorithmResult::Triangles(_) => 1,
        }
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Everything an engine returns from one kernel invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutput {
    /// The computed result.
    pub result: AlgorithmResult,
    /// Aggregate work counters.
    pub counters: Counters,
    /// Region-level execution trace for the machine model.
    pub trace: Trace,
    /// True when the kernel unwound cooperatively because the pool's
    /// [`CancelToken`](epg_parallel::CancelToken) tripped mid-run: the
    /// result is partial and must not enter completed-trial statistics,
    /// but `counters` still reflect the work actually done — the
    /// supervisor reports them with the `Timeout` outcome.
    pub cancelled: bool,
}

impl RunOutput {
    /// Convenience constructor (a completed, non-cancelled run).
    pub fn new(result: AlgorithmResult, counters: Counters, trace: Trace) -> RunOutput {
        RunOutput { result, counters, trace, cancelled: false }
    }

    /// Marks the output as a cooperative-cancellation partial result.
    pub fn cancelled(mut self, cancelled: bool) -> RunOutput {
        self.cancelled = cancelled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_extraction() {
        let r = AlgorithmResult::Ranks { ranks: vec![1.0], iterations: 42 };
        assert_eq!(r.iterations(), Some(42));
        assert_eq!(AlgorithmResult::Distances(vec![0.0]).iterations(), None);
    }

    #[test]
    fn lengths() {
        assert_eq!(AlgorithmResult::Labels(vec![1, 2, 3]).len(), 3);
        assert!(AlgorithmResult::Coefficients(vec![]).is_empty());
        let b = AlgorithmResult::BfsTree { parent: vec![0, 0], level: vec![0, 1] };
        assert_eq!(b.len(), 2);
    }
}
