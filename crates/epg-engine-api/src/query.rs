//! The reentrant query protocol.
//!
//! [`crate::Engine`] models the paper's batch experiments: one trial owns
//! the engine (`run(&mut self)`) and the pool for its whole duration.
//! A resident query service inverts that shape — the graph is loaded
//! once and many concurrent clients ask point questions against it — so
//! it needs a second protocol: shared-state queries through `&self`,
//! safe to call from many threads at once.
//!
//! [`QueryEngine`] is that protocol. Adapters (e.g. the GAP engine's
//! `into_query`) freeze a constructed engine's graph structure into an
//! immutable shape and dispatch kernels through the pool's serialized
//! [`epg_parallel::ThreadPool::exclusive`] entry, honoring the
//! per-request [`crate::RunParams::cancel`] budget. The trait is
//! object-safe on purpose: the serving layer stores `Arc<dyn
//! QueryEngine>` and stays engine-agnostic.

use crate::{Algorithm, EngineInfo, RunOutput, RunParams};
use epg_graph::VertexId;

/// A loaded, constructed, immutable graph engine that answers concurrent
/// queries. Implementations must be safe to share across serving threads
/// (`Send + Sync`), and `query` must be reentrant: any number of threads
/// may call it simultaneously (adapters serialize actual kernel dispatch
/// through the pool's `exclusive` gate internally).
pub trait QueryEngine: Send + Sync {
    /// Static metadata of the underlying engine.
    fn info(&self) -> EngineInfo;

    /// Whether this engine implements `algo` as a query.
    fn supports(&self, algo: Algorithm) -> bool;

    /// Number of vertices in the resident graph (for request validation).
    fn num_vertices(&self) -> usize;

    /// Out-degree of `v` in the resident graph. Serving layers use this
    /// to pick landmark vertices (highest-degree hubs) without reaching
    /// into engine internals.
    fn out_degree(&self, v: VertexId) -> usize;

    /// Runs one kernel against the resident graph. Unlike
    /// [`crate::Engine::run`] this takes `&self` and may be called from
    /// many threads concurrently. A tripped `params.cancel` budget
    /// surfaces as a cancelled [`RunOutput`] exactly as in batch trials.
    ///
    /// Panics if `supports(algo)` is false.
    fn query(&self, algo: Algorithm, params: &RunParams<'_>) -> RunOutput;
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trait must stay object-safe: the serving layer holds it as
    // `Arc<dyn QueryEngine>`.
    #[test]
    fn query_engine_is_object_safe() {
        fn _takes_dyn(_q: &dyn QueryEngine) {}
    }
}
