//! Work counters and execution traces.
//!
//! Engines do not time themselves — the harness owns wall clocks. What
//! engines *do* record is machine-independent work: edges traversed,
//! vertices touched, estimated memory traffic, iterations, and a per-
//! parallel-region trace. `epg-machine` projects those traces onto the
//! paper's 72-thread Haswell to produce the scalability and power figures
//! (see DESIGN.md's substitution table).

/// Aggregate work counters for one algorithm run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Edges examined (every relaxation/scan counts).
    pub edges_traversed: u64,
    /// Vertex visits (frontier pops, per-vertex updates).
    pub vertices_touched: u64,
    /// Estimated bytes read from memory.
    pub bytes_read: u64,
    /// Estimated bytes written to memory.
    pub bytes_written: u64,
    /// Algorithm iterations / rounds / supersteps.
    pub iterations: u32,
}

impl Counters {
    /// Accumulates another counter set (e.g. per-iteration into per-run).
    pub fn merge(&mut self, other: &Counters) {
        self.edges_traversed += other.edges_traversed;
        self.vertices_touched += other.vertices_touched;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.iterations += other.iterations;
    }

    /// Total estimated memory traffic.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Componentwise `self - earlier` (saturating; counters are
    /// monotonic within a run, so a nonzero saturation indicates a
    /// stale snapshot). Used by the telemetry layer to attribute
    /// counter growth to trace regions.
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        Counters {
            edges_traversed: self.edges_traversed.saturating_sub(earlier.edges_traversed),
            vertices_touched: self.vertices_touched.saturating_sub(earlier.vertices_touched),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            iterations: self.iterations.saturating_sub(earlier.iterations),
        }
    }
}

/// One recorded execution region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionRecord {
    /// Total work units in the region (roughly: edges examined, or vertices
    /// for vertex-parallel loops).
    pub work: u64,
    /// Critical-path bound inside the region: the largest single
    /// indivisible task (e.g. one hub vertex's full adjacency scan).
    pub span: u64,
    /// Estimated memory traffic of the region in bytes.
    pub bytes: u64,
    /// Whether the region ran under the parallel runtime (false = serial
    /// section, which Amdahl's law charges fully).
    pub parallel: bool,
}

/// A run's sequence of regions, in execution order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Region records in execution order.
    pub records: Vec<RegionRecord>,
}

impl Trace {
    /// Records a parallel region.
    pub fn parallel(&mut self, work: u64, span: u64, bytes: u64) {
        self.records.push(RegionRecord { work, span: span.min(work), bytes, parallel: true });
    }

    /// Records a serial section.
    pub fn serial(&mut self, work: u64, bytes: u64) {
        self.records.push(RegionRecord { work, span: work, bytes, parallel: false });
    }

    /// Total work across regions.
    pub fn total_work(&self) -> u64 {
        self.records.iter().map(|r| r.work).sum()
    }

    /// Total estimated memory traffic.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// Number of synchronization points (each parallel region joins once).
    pub fn sync_points(&self) -> u64 {
        self.records.iter().filter(|r| r.parallel).count() as u64
    }

    /// Fraction of work in serial sections — the Amdahl term.
    pub fn serial_fraction(&self) -> f64 {
        let total = self.total_work();
        if total == 0 {
            return 0.0;
        }
        let serial: u64 = self.records.iter().filter(|r| !r.parallel).map(|r| r.work).sum();
        serial as f64 / total as f64
    }

    /// Appends all records of another trace.
    pub fn extend(&mut self, other: &Trace) {
        self.records.extend_from_slice(&other.records);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge() {
        let mut a = Counters { edges_traversed: 10, vertices_touched: 5, ..Default::default() };
        let b =
            Counters { edges_traversed: 3, iterations: 2, bytes_read: 100, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.edges_traversed, 13);
        assert_eq!(a.vertices_touched, 5);
        assert_eq!(a.iterations, 2);
        assert_eq!(a.bytes_total(), 100);
    }

    #[test]
    fn trace_accounting() {
        let mut t = Trace::default();
        t.parallel(1000, 50, 8000);
        t.serial(100, 800);
        t.parallel(500, 600, 4000); // span clamped to work
        assert_eq!(t.total_work(), 1600);
        assert_eq!(t.total_bytes(), 12_800);
        assert_eq!(t.sync_points(), 2);
        assert_eq!(t.records[2].span, 500);
        assert!((t.serial_fraction() - 100.0 / 1600.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_benign() {
        let t = Trace::default();
        assert_eq!(t.total_work(), 0);
        assert_eq!(t.serial_fraction(), 0.0);
        assert_eq!(t.sync_points(), 0);
    }
}
