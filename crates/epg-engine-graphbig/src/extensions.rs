//! §V extension kernels for GraphBIG: betweenness centrality (its `kBC`
//! workload) and triangle counting (its `TC` workload), vertex-centric
//! over the openG property graph with dynamic scheduling.

use epg_engine_api::{AlgorithmResult, Counters, RunOutput, Trace};
use epg_graph::adjacency::PropertyGraph;
use epg_graph::VertexId;
use epg_parallel::{AtomicF64, DisjointWriter, Schedule, ThreadPool};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Brandes betweenness centrality; `sources = None` is exact.
pub fn betweenness(
    g: &PropertyGraph,
    pool: &ThreadPool,
    sources: Option<usize>,
    seed: u64,
) -> RunOutput {
    let n = g.num_vertices();
    let mut counters = Counters::default();
    let mut trace = Trace::default();
    let mut bc = vec![0.0f64; n];
    if n == 0 {
        return RunOutput::new(AlgorithmResult::Centrality(bc), counters, trace);
    }
    let source_list: Vec<VertexId> = match sources {
        None => (0..n as VertexId).collect(),
        Some(k) => {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..k.min(n)).map(|_| rng.gen_range(0..n as VertexId)).collect()
        }
    };
    let scale = n as f64 / source_list.len() as f64;

    let sigma: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
    let dist: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(-1)).collect();
    let mut delta = vec![0.0f64; n];
    for &s in &source_list {
        pool.parallel_for(n, Schedule::graphbig_default(), |v| {
            sigma[v].store(0.0, Ordering::Relaxed);
            dist[v].store(-1, Ordering::Relaxed);
        });
        {
            let dw = DisjointWriter::new(&mut delta);
            // SAFETY: parallel_for hands each index v to exactly one worker.
            pool.parallel_for(n, Schedule::graphbig_default(), |v| unsafe { dw.write(v, 0.0) });
        }
        sigma[s as usize].store(1.0, Ordering::Relaxed);
        dist[s as usize].store(0, Ordering::Relaxed);

        let mut levels: Vec<Vec<VertexId>> = vec![vec![s]];
        let mut depth: i64 = 0;
        while let Some(frontier) = levels.last() {
            if frontier.is_empty() {
                levels.pop();
                break;
            }
            let scanned = AtomicU64::new(0);
            let next: Mutex<Vec<VertexId>> = Mutex::new(Vec::with_capacity(frontier.len()));
            pool.parallel_for_ranges(
                frontier.len(),
                Schedule::graphbig_default(),
                |_tid, lo, hi| {
                    let mut local = Vec::with_capacity(hi - lo);
                    let mut sc = 0u64;
                    for &u in &frontier[lo..hi] {
                        let su = sigma[u as usize].load(Ordering::Relaxed);
                        for (v, _) in g.neighbors(u) {
                            sc += 1;
                            if dist[v as usize].load(Ordering::Relaxed) < 0
                                && dist[v as usize]
                                    .compare_exchange(
                                        -1,
                                        depth + 1,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    )
                                    .is_ok()
                            {
                                local.push(v);
                            }
                            if dist[v as usize].load(Ordering::Relaxed) == depth + 1 {
                                sigma[v as usize].fetch_add(su, Ordering::Relaxed);
                            }
                        }
                    }
                    scanned.fetch_add(sc, Ordering::Relaxed);
                    if !local.is_empty() {
                        next.lock().append(&mut local);
                    }
                },
            );
            counters.edges_traversed += scanned.load(Ordering::Relaxed);
            trace.parallel(scanned.load(Ordering::Relaxed).max(1), 1, 1);
            depth += 1;
            levels.push(next.into_inner());
        }
        for (d, level) in levels.iter().enumerate().rev() {
            let d = d as i64;
            let dw = DisjointWriter::new(&mut delta);
            pool.parallel_for_ranges(level.len(), Schedule::graphbig_default(), |_tid, lo, hi| {
                for &w in &level[lo..hi] {
                    let mut acc = 0.0;
                    let sw = sigma[w as usize].load(Ordering::Relaxed);
                    for (v, _) in g.neighbors(w) {
                        if dist[v as usize].load(Ordering::Relaxed) == d + 1 {
                            // SAFETY: reads finalized level d+1; writes own
                            // level-d vertex only.
                            let dv = unsafe { *dw.get_raw(v as usize) };
                            acc += sw / sigma[v as usize].load(Ordering::Relaxed) * (1.0 + dv);
                        }
                    }
                    // SAFETY: w belongs to this worker's slice of the
                    // level-d frontier; no other worker writes it.
                    unsafe { dw.write(w as usize, acc) };
                }
            });
        }
        for (v, &dv) in delta.iter().enumerate() {
            if v as VertexId != s {
                bc[v] += dv * scale;
            }
        }
        counters.iterations += 1;
    }
    counters.vertices_touched = n as u64 * source_list.len() as u64;
    counters.bytes_read = counters.edges_traversed * 16;
    counters.bytes_written = counters.vertices_touched * 8;
    RunOutput::new(AlgorithmResult::Centrality(bc), counters, trace)
}

/// Triangle counting by ordered neighbor intersection.
pub fn triangle_count(g: &PropertyGraph, pool: &ThreadPool) -> RunOutput {
    let n = g.num_vertices();
    let mut counters = Counters::default();
    let mut trace = Trace::default();
    let mut higher: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    {
        let w = DisjointWriter::new(&mut higher);
        pool.parallel_for_ranges(n, Schedule::graphbig_default(), |_tid, lo, hi| {
            for v in lo..hi {
                let vid = v as VertexId;
                let mut set: Vec<VertexId> = g
                    .neighbors(vid)
                    .map(|(t, _)| t)
                    .chain(g.in_neighbors(vid))
                    .filter(|&u| u > vid)
                    .collect();
                set.sort_unstable();
                set.dedup();
                // SAFETY: one writer per index.
                unsafe { w.write(v, set) };
            }
        });
    }
    let total = AtomicU64::new(0);
    let work = AtomicU64::new(0);
    {
        let higher = &higher;
        pool.parallel_for_ranges(n, Schedule::Dynamic { chunk: 32 }, |_tid, lo, hi| {
            let mut local = 0u64;
            let mut lw = 0u64;
            for u in lo..hi {
                let hu = &higher[u];
                for &v in hu {
                    lw += (hu.len() + higher[v as usize].len()) as u64;
                    local += intersect(hu, &higher[v as usize]);
                }
            }
            total.fetch_add(local, Ordering::Relaxed);
            work.fetch_add(lw, Ordering::Relaxed);
        });
    }
    let work = work.load(Ordering::Relaxed);
    counters.edges_traversed = work;
    counters.vertices_touched = n as u64;
    counters.iterations = 1;
    counters.bytes_read = work * 8;
    trace.parallel(work.max(1), 1, work * 8);
    RunOutput::new(AlgorithmResult::Triangles(total.load(Ordering::Relaxed)), counters, trace)
}

fn intersect(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut c) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::{oracle, Csr};

    #[test]
    fn bc_matches_oracle() {
        let el = epg_generator::uniform::generate(90, 500, false, 6).symmetrized().deduplicated();
        let g = PropertyGraph::from_edge_list(&el);
        let pool = ThreadPool::new(3);
        let out = betweenness(&g, &pool, None, 0);
        let AlgorithmResult::Centrality(bc) = out.result else { panic!() };
        let want = oracle::betweenness(&Csr::from_edge_list(&el));
        for v in 0..want.len() {
            assert!((bc[v] - want[v]).abs() < 1e-6 * (1.0 + want[v]), "vertex {v}");
        }
    }

    #[test]
    fn tc_matches_oracle() {
        let el = epg_generator::uniform::generate(120, 1500, false, 8);
        let g = PropertyGraph::from_edge_list(&el);
        let pool = ThreadPool::new(2);
        let out = triangle_count(&g, &pool);
        let AlgorithmResult::Triangles(t) = out.result else { panic!() };
        assert_eq!(t, oracle::triangle_count(&Csr::from_edge_list(&el)));
    }
}
