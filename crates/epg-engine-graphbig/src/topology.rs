//! Local clustering coefficient (the kernel behind Table I's four-digit
//! runtimes on the dense dota-league graph — neighborhood intersection is
//! quadratic in degree, and dota's average degree is 824).

use epg_engine_api::{AlgorithmResult, Counters, RunOutput, Trace};
use epg_graph::adjacency::PropertyGraph;
use epg_graph::VertexId;
use epg_parallel::{DisjointWriter, Schedule, ThreadPool};
use std::sync::atomic::{AtomicU64, Ordering};

/// Computes the Graphalytics local clustering coefficient per vertex:
/// over the undirected neighborhood `N(v)`, the fraction of *directed*
/// edges present among neighbors out of `d(d-1)`.
pub fn lcc(g: &PropertyGraph, pool: &ThreadPool) -> RunOutput {
    let n = g.num_vertices();
    let mut counters = Counters::default();
    let mut trace = Trace::default();

    // Pass 1 (parallel): sorted, deduplicated out-lists and undirected
    // neighborhoods. Using per-range local buffers then writing into the
    // per-vertex slots (single writer per index).
    let mut out_sorted: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut nbrs: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    {
        let ow = DisjointWriter::new(&mut out_sorted);
        let nw = DisjointWriter::new(&mut nbrs);
        pool.parallel_for_ranges(n, Schedule::graphbig_default(), |_tid, lo, hi| {
            for v in lo..hi {
                let vid = v as VertexId;
                let mut o: Vec<VertexId> = g.neighbors(vid).map(|(t, _)| t).collect();
                o.sort_unstable();
                o.dedup();
                let mut nb: Vec<VertexId> = o.clone();
                nb.extend(g.in_neighbors(vid));
                nb.retain(|&u| u != vid);
                nb.sort_unstable();
                nb.dedup();
                o.retain(|&u| u != vid);
                // SAFETY: ranges are disjoint — single writer per index
                // per region, `v < n`.
                unsafe {
                    ow.write_unchecked(v, o);
                    nw.write_unchecked(v, nb);
                }
            }
        });
    }
    let prep_work: u64 = (0..n).map(|v| nbrs[v].len() as u64 + 1).sum();
    trace.parallel(prep_work.max(1), 1, prep_work * 8);

    // Pass 2 (parallel, dynamic — degree skew makes this highly irregular):
    // count directed edges among each neighborhood.
    let mut out = vec![0.0f64; n];
    let intersections = AtomicU64::new(0);
    let max_cost = AtomicU64::new(0);
    {
        let writer = DisjointWriter::new(&mut out);
        let out_sorted = &out_sorted;
        let nbrs = &nbrs;
        pool.parallel_for_ranges(n, Schedule::Dynamic { chunk: 16 }, |_tid, lo, hi| {
            let mut local_inter = 0u64;
            let mut local_max = 0u64;
            for v in lo..hi {
                let nb = &nbrs[v];
                let d = nb.len();
                if d < 2 {
                    continue;
                }
                let mut tri = 0u64;
                let mut cost = 0u64;
                for &u in nb {
                    let a = &out_sorted[u as usize];
                    cost += (a.len() + d) as u64;
                    tri += sorted_intersection_count(a, nb, u);
                }
                local_inter += cost;
                local_max = local_max.max(cost);
                // SAFETY: dynamic chunks are disjoint — single writer per
                // index per region, `v < n`.
                unsafe { writer.write_unchecked(v, tri as f64 / (d as f64 * (d - 1) as f64)) };
            }
            intersections.fetch_add(local_inter, Ordering::Relaxed);
            max_cost.fetch_max(local_max, Ordering::Relaxed);
        });
    }
    let work = intersections.load(Ordering::Relaxed);
    counters.edges_traversed = work;
    counters.vertices_touched = n as u64;
    counters.iterations = 1;
    counters.bytes_read = work * 8;
    counters.bytes_written = n as u64 * 8;
    trace.parallel(work.max(1), max_cost.load(Ordering::Relaxed).max(1), work * 8);
    RunOutput::new(AlgorithmResult::Coefficients(out), counters, trace)
}

/// Counts `|a ∩ b|` over sorted slices, skipping `exclude` in `a` (a
/// neighbor's self-loops do not close wedges).
fn sorted_intersection_count(a: &[VertexId], b: &[VertexId], exclude: VertexId) -> u64 {
    let (mut i, mut j, mut c) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        if a[i] == exclude {
            i += 1;
            continue;
        }
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::{oracle, Csr, EdgeList};

    fn check(el: &EdgeList) {
        let g = PropertyGraph::from_edge_list(el);
        let pool = ThreadPool::new(3);
        let out = lcc(&g, &pool);
        let AlgorithmResult::Coefficients(c) = out.result else { panic!() };
        let want = oracle::lcc(&Csr::from_edge_list(el));
        for v in 0..want.len() {
            assert!((c[v] - want[v]).abs() < 1e-12, "vertex {v}: {} vs {}", c[v], want[v]);
        }
    }

    #[test]
    fn triangle_and_square() {
        check(&EdgeList::new(3, vec![(0, 1), (1, 2), (2, 0)]).symmetrized());
        check(&EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]).symmetrized());
    }

    #[test]
    fn directed_asymmetric_case() {
        check(&EdgeList::new(3, vec![(0, 1), (1, 0), (0, 2), (2, 0), (1, 2)]));
    }

    #[test]
    fn with_self_loops_and_duplicates() {
        check(&EdgeList::new(4, vec![(0, 0), (0, 1), (0, 1), (1, 2), (2, 0), (1, 1)]));
    }

    #[test]
    fn random_graph_matches() {
        check(&epg_generator::uniform::generate(80, 600, false, 9));
    }

    #[test]
    fn work_scales_quadratically_with_density() {
        let sparse = epg_generator::uniform::generate(200, 800, false, 1);
        let dense = epg_generator::uniform::generate(200, 8000, false, 1);
        let pool = ThreadPool::new(2);
        let ws = lcc(&PropertyGraph::from_edge_list(&sparse), &pool).counters.edges_traversed;
        let wd = lcc(&PropertyGraph::from_edge_list(&dense), &pool).counters.edges_traversed;
        assert!(wd > 20 * ws, "dense work {wd} vs sparse {ws}");
    }
}
