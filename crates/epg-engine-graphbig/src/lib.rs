//! GraphBIG-style engine.
//!
//! Models GraphBIG (Nai et al., SC'15), the IBM System G-derived benchmark
//! suite built on the `openG` property-graph framework (§III-C item 3):
//!
//! - storage is a **vector of vertex objects**, each owning adjacency and
//!   property records ([`epg_graph::adjacency::PropertyGraph`]) — more
//!   pointer chasing and per-vertex overhead than the flat CSR engines,
//!   which is part of why GraphBIG shows "the widest variation" (§IV-C);
//! - kernels are vertex-centric loops under **dynamic** OpenMP scheduling;
//! - the input file is parsed and the graph built **simultaneously**, so
//!   read and construction cannot be timed apart (§III-B) — the paper omits
//!   GraphBIG from the construction-time plots for exactly this reason;
//! - implements all six benchmark kernels (BFS, SSSP, PR, CDLP, LCC, WCC),
//!   matching its columns in Tables I and II.

#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
mod community;
mod extensions;
mod ranking;
mod topology;
mod traversal;

use epg_engine_api::{logfmt::LogStyle, Algorithm, Engine, EngineInfo, RunOutput, RunParams};
use epg_graph::adjacency::PropertyGraph;
use epg_graph::{ingest, EdgeList};
use epg_parallel::ThreadPool;
use std::path::Path;

/// The GraphBIG-style engine.
pub struct GraphBigEngine {
    staged: Option<EdgeList>,
    graph: Option<PropertyGraph>,
}

impl GraphBigEngine {
    /// Creates an empty engine.
    pub fn new() -> GraphBigEngine {
        GraphBigEngine { staged: None, graph: None }
    }

    fn graph(&self) -> &PropertyGraph {
        self.graph.as_ref().expect("graph not loaded")
    }
}

impl Default for GraphBigEngine {
    fn default() -> Self {
        GraphBigEngine::new()
    }
}

impl Engine for GraphBigEngine {
    fn info(&self) -> EngineInfo {
        EngineInfo {
            name: "GraphBIG",
            representation: "openG property graph (vertex objects)",
            parallelism: "OpenMP-style dynamic worksharing",
            distributed_capable: false,
            requires_proprietary_compiler: false,
        }
    }

    fn supports(&self, _algo: Algorithm) -> bool {
        true // all six kernels
    }

    fn separable_construction(&self) -> bool {
        false // reads the file and builds the graph simultaneously (§III-B)
    }

    fn load_file(&mut self, path: &Path, pool: &ThreadPool) -> std::io::Result<()> {
        // openG streams the text file into the structure in one pass. The
        // text parse itself is the chunked zero-copy scanner; the insert
        // loop stays serial because the property graph mutates shared
        // per-vertex objects.
        let el = ingest::read_snap_file_parallel(path, pool)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut g = PropertyGraph::with_vertices(el.num_vertices);
        for (u, v, w) in el.iter() {
            g.add_edge(u, v, w);
        }
        self.graph = Some(g);
        self.staged = None;
        Ok(())
    }

    fn load_edge_list(&mut self, el: &EdgeList) {
        self.staged = Some(el.clone());
        self.graph = None;
    }

    fn construct(&mut self, _pool: &ThreadPool) {
        if self.graph.is_none() {
            let el = self.staged.as_ref().expect("no input loaded");
            self.graph = Some(PropertyGraph::from_edge_list(el));
        }
    }

    fn run(&mut self, algo: Algorithm, params: &RunParams<'_>) -> RunOutput {
        let g = self.graph();
        match algo {
            Algorithm::Bfs => traversal::bfs(
                g,
                params.root.expect("BFS needs a root"),
                params.pool,
                params.recorder,
            ),
            Algorithm::Sssp => traversal::sssp(
                g,
                params.root.expect("SSSP needs a root"),
                params.pool,
                params.recorder,
            ),
            Algorithm::PageRank => ranking::pagerank(g, params),
            Algorithm::Cdlp => community::cdlp(g, params.pool, 10),
            Algorithm::Wcc => community::wcc(g, params.pool),
            Algorithm::Lcc => topology::lcc(g, params.pool),
            Algorithm::Bc => extensions::betweenness(g, params.pool, params.bc_sources, 0x6b16),
            Algorithm::TriangleCount => extensions::triangle_count(g, params.pool),
        }
    }

    fn log_style(&self) -> LogStyle {
        LogStyle::GraphBig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_engine_api::AlgorithmResult;
    use epg_graph::{oracle, Csr};

    fn build(el: &EdgeList, pool: &ThreadPool) -> GraphBigEngine {
        let mut e = GraphBigEngine::new();
        e.load_edge_list(el);
        e.construct(pool);
        e
    }

    fn random_graph(seed: u64) -> EdgeList {
        epg_generator::uniform::generate(300, 2400, false, seed).deduplicated().symmetrized()
    }

    #[test]
    fn all_algorithms_supported_and_fused() {
        let e = GraphBigEngine::new();
        for a in Algorithm::ALL {
            assert!(e.supports(a));
        }
        assert!(!e.separable_construction());
    }

    #[test]
    fn bfs_matches_oracle() {
        let el = random_graph(1);
        let pool = ThreadPool::new(3);
        let mut e = build(&el, &pool);
        let g = Csr::from_edge_list(&el);
        let out = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(5)));
        let AlgorithmResult::BfsTree { parent, level } = out.result else { panic!() };
        assert_eq!(level, oracle::bfs(&g, 5).level);
        epg_graph::validate::validate_bfs_tree(&g, 5, &parent).unwrap();
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let el = epg_generator::uniform::generate(200, 1500, true, 3).deduplicated().symmetrized();
        let pool = ThreadPool::new(3);
        let mut e = build(&el, &pool);
        let g = Csr::from_edge_list(&el);
        let out = e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(2)));
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        let want = oracle::dijkstra(&g, 2);
        for v in 0..want.len() {
            if want[v].is_infinite() {
                assert!(d[v].is_infinite());
            } else {
                assert!((d[v] - want[v]).abs() < 1e-3, "vertex {v}");
            }
        }
    }

    #[test]
    fn pagerank_matches_oracle() {
        let el = random_graph(4);
        let pool = ThreadPool::new(2);
        let mut e = build(&el, &pool);
        let g = Csr::from_edge_list(&el);
        let out = e.run(Algorithm::PageRank, &RunParams::new(&pool, None));
        let AlgorithmResult::Ranks { ranks, .. } = out.result else { panic!() };
        let (want, _) = oracle::pagerank(&g, 6e-8, 300);
        for v in 0..want.len() {
            assert!((ranks[v] - want[v]).abs() < 1e-5, "vertex {v}");
        }
    }

    #[test]
    fn wcc_matches_oracle() {
        let el = epg_generator::uniform::generate(200, 300, false, 5); // sparse: many components
        let pool = ThreadPool::new(2);
        let mut e = build(&el, &pool);
        let g = Csr::from_edge_list(&el);
        let out = e.run(Algorithm::Wcc, &RunParams::new(&pool, None));
        let AlgorithmResult::Components(c) = out.result else { panic!() };
        assert_eq!(c, oracle::wcc(&g));
    }

    #[test]
    fn lcc_matches_oracle() {
        let el = epg_generator::uniform::generate(120, 900, false, 6).deduplicated().symmetrized();
        let pool = ThreadPool::new(2);
        let mut e = build(&el, &pool);
        let g = Csr::from_edge_list(&el);
        let out = e.run(Algorithm::Lcc, &RunParams::new(&pool, None));
        let AlgorithmResult::Coefficients(c) = out.result else { panic!() };
        let want = oracle::lcc(&g);
        for v in 0..want.len() {
            assert!((c[v] - want[v]).abs() < 1e-9, "vertex {v}: {} vs {}", c[v], want[v]);
        }
    }

    #[test]
    fn cdlp_matches_oracle() {
        let el = random_graph(7);
        let pool = ThreadPool::new(2);
        let mut e = build(&el, &pool);
        let g = Csr::from_edge_list(&el);
        let out = e.run(Algorithm::Cdlp, &RunParams::new(&pool, None));
        let AlgorithmResult::Labels(l) = out.result else { panic!() };
        assert_eq!(l, oracle::cdlp(&g, 10));
    }

    #[test]
    fn load_file_builds_directly() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let dir = std::env::temp_dir().join("epg_graphbig_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.snap");
        epg_graph::snap::write_snap_file(&el, "t", &path).unwrap();
        let mut e = GraphBigEngine::new();
        let pool = ThreadPool::new(2);
        e.load_file(&path, &pool).unwrap();
        e.construct(&pool); // no-op: already built during load
        let out = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(0)));
        let AlgorithmResult::BfsTree { level, .. } = out.result else { panic!() };
        assert_eq!(level, vec![0, 1, 2, 3]);
    }
}
