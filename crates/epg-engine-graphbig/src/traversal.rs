//! openG-style traversal kernels: BFS and SSSP.

use epg_engine_api::{
    AlgorithmResult, Counters, DeltaTracker, Dir, RecorderCtx, RunOutput, Tracer,
};
use epg_graph::adjacency::PropertyGraph;
use epg_graph::{VertexId, INF_DIST, NO_VERTEX};
use epg_parallel::{AtomicF32, Schedule, ThreadPool};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Level-synchronous top-down BFS over the property graph, dynamic
/// scheduling (openG's `bfs` kernel).
pub fn bfs(
    g: &PropertyGraph,
    root: VertexId,
    pool: &ThreadPool,
    rec: RecorderCtx<'_>,
) -> RunOutput {
    let n = g.num_vertices();
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NO_VERTEX)).collect();
    let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    parent[root as usize].store(root, Ordering::Relaxed);
    level[root as usize].store(0, Ordering::Relaxed);
    rec.alloc_hwm("graphbig.bfs.parent+level", n as u64 * 8);

    let mut counters = Counters::default();
    let mut trace = Tracer::new(rec);
    let mut deltas = DeltaTracker::new();
    let mut frontier = vec![root];
    let mut depth = 0u32;
    let mut bfs_cancelled = false;
    while !frontier.is_empty() {
        if pool.is_cancelled() {
            bfs_cancelled = true;
            break;
        }
        depth += 1;
        let checked = AtomicU64::new(0);
        let max_deg = AtomicU64::new(0);
        let next: Mutex<Vec<VertexId>> = Mutex::new(Vec::with_capacity(frontier.len()));
        pool.parallel_for_ranges(frontier.len(), Schedule::graphbig_default(), |_tid, lo, hi| {
            let mut local = Vec::with_capacity(hi - lo);
            let mut c = 0u64;
            let mut md = 0u64;
            for &u in &frontier[lo..hi] {
                md = md.max(g.out_degree(u) as u64);
                for (v, _) in g.neighbors(u) {
                    c += 1;
                    if parent[v as usize].load(Ordering::Relaxed) == NO_VERTEX
                        && parent[v as usize]
                            .compare_exchange(NO_VERTEX, u, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                    {
                        level[v as usize].store(depth, Ordering::Relaxed);
                        local.push(v);
                    }
                }
            }
            checked.fetch_add(c, Ordering::Relaxed);
            max_deg.fetch_max(md, Ordering::Relaxed);
            if !local.is_empty() {
                next.lock().append(&mut local);
            }
        });
        let checked = checked.load(Ordering::Relaxed);
        let scanned = frontier.len() as u64;
        frontier = next.into_inner();
        counters.edges_traversed += checked;
        counters.vertices_touched += frontier.len() as u64;
        counters.iterations += 1;
        // The property-graph layout costs an extra pointer dereference per
        // vertex object relative to CSR — reflected in the bytes estimate.
        trace.parallel(
            checked.max(1),
            max_deg.load(Ordering::Relaxed).max(1),
            checked * 16 + frontier.len() as u64 * 24,
        );
        deltas.flush("iteration", &counters, rec);
        rec.iteration(depth, scanned, Dir::Push);
    }
    counters.bytes_read = counters.edges_traversed * 16;
    counters.bytes_written = counters.vertices_touched * 24;
    deltas.flush("finalize", &counters, rec);
    parent[root as usize].store(NO_VERTEX, Ordering::Relaxed);
    RunOutput::new(
        AlgorithmResult::BfsTree {
            parent: parent.iter().map(|p| p.load(Ordering::Relaxed)).collect(),
            level: level.iter().map(|l| l.load(Ordering::Relaxed)).collect(),
        },
        counters,
        trace.into_trace(),
    )
    .cancelled(bfs_cancelled)
}

/// Frontier-based Bellman-Ford SSSP (openG's `sssp` kernel): no Δ buckets,
/// just repeated relaxation of an active set — simpler and slower than
/// GAP's Δ-stepping, which is the architectural contrast the paper draws.
pub fn sssp(
    g: &PropertyGraph,
    root: VertexId,
    pool: &ThreadPool,
    rec: RecorderCtx<'_>,
) -> RunOutput {
    let n = g.num_vertices();
    let dist: Vec<AtomicF32> = (0..n).map(|_| AtomicF32::new(INF_DIST)).collect();
    dist[root as usize].store(0.0, Ordering::Relaxed);
    rec.alloc_hwm("graphbig.sssp.dist", n as u64 * 4);

    let mut counters = Counters::default();
    let mut trace = Tracer::new(rec);
    let mut deltas = DeltaTracker::new();
    let mut round = 0u32;
    let mut active = vec![root];
    let mut sssp_cancelled = false;
    while !active.is_empty() {
        if pool.is_cancelled() {
            sssp_cancelled = true;
            break;
        }
        round += 1;
        let relaxed = AtomicU64::new(0);
        let max_deg = AtomicU64::new(0);
        let next: Mutex<Vec<VertexId>> = Mutex::new(Vec::with_capacity(active.len()));
        pool.parallel_for_ranges(active.len(), Schedule::graphbig_default(), |_tid, lo, hi| {
            let mut local = Vec::with_capacity(hi - lo);
            let mut r = 0u64;
            let mut md = 0u64;
            for &u in &active[lo..hi] {
                let du = dist[u as usize].load(Ordering::Relaxed);
                md = md.max(g.out_degree(u) as u64);
                for (v, w) in g.neighbors(u) {
                    r += 1;
                    if dist[v as usize].fetch_min(du + w, Ordering::Relaxed) {
                        local.push(v);
                    }
                }
            }
            relaxed.fetch_add(r, Ordering::Relaxed);
            max_deg.fetch_max(md, Ordering::Relaxed);
            if !local.is_empty() {
                next.lock().append(&mut local);
            }
        });
        let mut next = next.into_inner();
        next.sort_unstable();
        next.dedup();
        let relaxed = relaxed.load(Ordering::Relaxed);
        counters.edges_traversed += relaxed;
        counters.vertices_touched += next.len() as u64;
        counters.iterations += 1;
        trace.parallel(
            relaxed.max(1),
            max_deg.load(Ordering::Relaxed).max(1),
            relaxed * 20 + next.len() as u64 * 8,
        );
        deltas.flush("iteration", &counters, rec);
        rec.iteration(round, active.len() as u64, Dir::Push);
        active = next;
    }
    counters.bytes_read = counters.edges_traversed * 20;
    counters.bytes_written = counters.vertices_touched * 8;
    deltas.flush("finalize", &counters, rec);
    RunOutput::new(
        AlgorithmResult::Distances(dist.iter().map(|d| d.load(Ordering::Relaxed)).collect()),
        counters,
        trace.into_trace(),
    )
    .cancelled(sssp_cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::{oracle, Csr, EdgeList};

    #[test]
    fn bellman_ford_converges_with_negative_free_weights() {
        let el =
            EdgeList::weighted(4, vec![(0, 1), (0, 2), (2, 1), (1, 3)], vec![10.0, 1.0, 2.0, 1.0]);
        let g = PropertyGraph::from_edge_list(&el);
        let pool = ThreadPool::new(2);
        let out = sssp(&g, 0, &pool, RecorderCtx::none());
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        assert_eq!(d[1], 3.0);
        assert_eq!(d[3], 4.0);
    }

    #[test]
    fn sssp_iterations_grow_with_diameter() {
        // A path forces one relaxation round per hop.
        let edges: Vec<_> = (0..50).map(|i| (i as VertexId, i as VertexId + 1)).collect();
        let el = EdgeList::new(51, edges);
        let g = PropertyGraph::from_edge_list(&el);
        let pool = ThreadPool::new(1);
        let out = sssp(&g, 0, &pool, RecorderCtx::none());
        assert!(out.counters.iterations >= 50);
    }

    #[test]
    fn bfs_on_disconnected_graph() {
        let el = EdgeList::new(5, vec![(0, 1), (3, 4)]);
        let g = PropertyGraph::from_edge_list(&el);
        let pool = ThreadPool::new(2);
        let out = bfs(&g, 0, &pool, RecorderCtx::none());
        let AlgorithmResult::BfsTree { level, .. } = out.result else { panic!() };
        assert_eq!(level[1], 1);
        assert_eq!(level[3], u32::MAX);
    }

    #[test]
    fn bfs_agrees_with_oracle_on_kronecker() {
        let el = epg_generator::kronecker::generate(
            &epg_generator::kronecker::KroneckerConfig {
                scale: 8,
                edge_factor: 8,
                ..Default::default()
            },
            3,
        )
        .symmetrized();
        let g = PropertyGraph::from_edge_list(&el);
        let csr = Csr::from_edge_list(&el);
        let pool = ThreadPool::new(4);
        let root = epg_graph::degree::sample_roots(&el, 1, 1)[0];
        let out = bfs(&g, root, &pool, RecorderCtx::none());
        let AlgorithmResult::BfsTree { level, .. } = out.result else { panic!() };
        assert_eq!(level, oracle::bfs(&csr, root).level);
    }
}
