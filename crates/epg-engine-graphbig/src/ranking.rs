//! openG-style PageRank.

use epg_engine_api::{
    AlgorithmResult, Counters, DeltaTracker, Dir, RunOutput, RunParams, StoppingCriterion, Tracer,
};
use epg_graph::adjacency::PropertyGraph;
use epg_graph::VertexId;
use epg_parallel::{DisjointWriter, Schedule};
use std::sync::atomic::{AtomicU64, Ordering};

const DAMPING: f64 = 0.85;

/// Pull-mode PageRank over the property graph's in-edge lists, dynamic
/// scheduling, homogenized L1 stopping (§IV-A).
pub fn pagerank(g: &PropertyGraph, params: &RunParams<'_>) -> RunOutput {
    let n = g.num_vertices();
    let pool = params.pool;
    let rec = params.recorder;
    let stopping = params.stopping.unwrap_or(StoppingCriterion::paper_default());
    let mut counters = Counters::default();
    let mut trace = Tracer::new(rec);
    let mut deltas = DeltaTracker::new();
    if n == 0 {
        return RunOutput::new(
            AlgorithmResult::Ranks { ranks: Vec::new(), iterations: 0 },
            counters,
            trace.into_trace(),
        );
    }
    rec.alloc_hwm("graphbig.pr.rank+next", n as u64 * 16);
    let out_deg: Vec<u32> = (0..n as VertexId).map(|v| g.out_degree(v) as u32).collect();
    let sinks: Vec<VertexId> = (0..n as VertexId).filter(|&v| out_deg[v as usize] == 0).collect();
    let m: u64 = out_deg.iter().map(|&d| d as u64).sum();
    let base = (1.0 - DAMPING) / n as f64;
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0u32;
    let mut cancelled = false;
    loop {
        if pool.is_cancelled() {
            cancelled = true;
            break;
        }
        iterations += 1;
        let sink_mass: f64 = sinks.iter().map(|&v| rank[v as usize]).sum::<f64>() / n as f64;
        {
            let writer = DisjointWriter::new(&mut next);
            let rank_ref = &rank;
            pool.parallel_for_ranges(n, Schedule::graphbig_default(), |_tid, lo, hi| {
                for v in lo..hi {
                    let incoming: f64 = g
                        .in_neighbors(v as VertexId)
                        .map(|u| rank_ref[u as usize] / out_deg[u as usize] as f64)
                        .sum();
                    // SAFETY: ranges are disjoint — v is written exactly
                    // once per region, `v < n`.
                    unsafe { writer.write_unchecked(v, base + DAMPING * (incoming + sink_mass)) };
                }
            });
        }
        let (rank_ref, next_ref) = (&rank, &next);
        let l1 = pool.parallel_sum_f64(n, Schedule::graphbig_default(), |v| {
            (rank_ref[v] - next_ref[v]).abs()
        });
        let changed = AtomicU64::new(0);
        pool.parallel_for(n, Schedule::graphbig_default(), |v| {
            if (rank_ref[v] as f32) != (next_ref[v] as f32) {
                changed.fetch_add(1, Ordering::Relaxed);
            }
        });
        std::mem::swap(&mut rank, &mut next);
        counters.edges_traversed += m;
        counters.vertices_touched += n as u64;
        trace.parallel(m.max(1), 1, m * 16 + n as u64 * 24);
        trace.parallel(n as u64, 1, n as u64 * 16);
        deltas.flush("iteration", &counters, rec);
        // Pull-mode: every vertex is active every round.
        rec.iteration(iterations, n as u64, Dir::Pull);
        if stopping.is_converged(l1, changed.load(Ordering::Relaxed))
            || iterations >= params.max_iterations
        {
            break;
        }
    }
    counters.iterations = iterations;
    counters.bytes_read = counters.edges_traversed * 16;
    counters.bytes_written = counters.vertices_touched * 8;
    deltas.flush("finalize", &counters, rec);
    RunOutput::new(AlgorithmResult::Ranks { ranks: rank, iterations }, counters, trace.into_trace())
        .cancelled(cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::{oracle, Csr, EdgeList};
    use epg_parallel::ThreadPool;

    #[test]
    fn hub_graph_matches_oracle() {
        let el = EdgeList::new(5, vec![(1, 0), (2, 0), (3, 0), (4, 0), (0, 1)]);
        let g = PropertyGraph::from_edge_list(&el);
        let pool = ThreadPool::new(2);
        let out = pagerank(&g, &RunParams::new(&pool, None));
        let AlgorithmResult::Ranks { ranks, .. } = out.result else { panic!() };
        let (want, _) = oracle::pagerank(&Csr::from_edge_list(&el), 6e-8, 300);
        for v in 0..5 {
            assert!((ranks[v] - want[v]).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_graph() {
        let g = PropertyGraph::with_vertices(0);
        let pool = ThreadPool::new(1);
        let out = pagerank(&g, &RunParams::new(&pool, None));
        assert_eq!(out.result.len(), 0);
    }
}
