//! Community-structure kernels: CDLP and WCC.

use epg_engine_api::{AlgorithmResult, Counters, RunOutput, Trace};
use epg_graph::adjacency::PropertyGraph;
use epg_graph::VertexId;
use epg_parallel::{DisjointWriter, Schedule, ThreadPool};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Synchronous label propagation for `iterations` rounds, Graphalytics
/// semantics: each vertex adopts the smallest among the most frequent
/// labels of its in- and out-neighbors.
pub fn cdlp(g: &PropertyGraph, pool: &ThreadPool, iterations: u32) -> RunOutput {
    let n = g.num_vertices();
    let mut label: Vec<u64> = (0..n as u64).collect();
    let mut next: Vec<u64> = label.clone();
    let mut counters = Counters::default();
    let mut trace = Trace::default();
    let m2 = (0..n as VertexId).map(|v| (g.out_degree(v) + g.in_degree(v)) as u64).sum::<u64>();
    let mut cancelled = false;
    for _ in 0..iterations {
        if pool.is_cancelled() {
            cancelled = true;
            break;
        }
        {
            let writer = DisjointWriter::new(&mut next);
            let label_ref = &label;
            pool.parallel_for_ranges(n, Schedule::graphbig_default(), |_tid, lo, hi| {
                let mut freq: HashMap<u64, u32> = HashMap::new();
                for v in lo..hi {
                    freq.clear();
                    let vid = v as VertexId;
                    for (u, _) in g.neighbors(vid) {
                        *freq.entry(label_ref[u as usize]).or_insert(0) += 1;
                    }
                    for u in g.in_neighbors(vid) {
                        *freq.entry(label_ref[u as usize]).or_insert(0) += 1;
                    }
                    let new = freq
                        .iter()
                        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                        .map(|(&l, _)| l)
                        .unwrap_or(label_ref[v]);
                    // SAFETY: ranges are disjoint — one writer per index
                    // per region, `v < n`.
                    unsafe { writer.write_unchecked(v, new) };
                }
            });
        }
        std::mem::swap(&mut label, &mut next);
        counters.iterations += 1;
        counters.edges_traversed += m2;
        counters.vertices_touched += n as u64;
        trace.parallel(m2.max(1), 1, m2 * 16 + n as u64 * 16);
    }
    counters.bytes_read = counters.edges_traversed * 16;
    counters.bytes_written = counters.vertices_touched * 8;
    RunOutput::new(AlgorithmResult::Labels(label), counters, trace).cancelled(cancelled)
}

/// Weakly connected components by min-label propagation until fixpoint;
/// converges to the smallest vertex id per component (both edge directions
/// propagate).
pub fn wcc(g: &PropertyGraph, pool: &ThreadPool) -> RunOutput {
    let n = g.num_vertices();
    let comp: Vec<AtomicU64> = (0..n as u64).map(AtomicU64::new).collect();
    let mut counters = Counters::default();
    let mut trace = Trace::default();
    let m2 = (0..n as VertexId).map(|v| (g.out_degree(v) + g.in_degree(v)) as u64).sum::<u64>();
    let mut cancelled = false;
    loop {
        if pool.is_cancelled() {
            cancelled = true;
            break;
        }
        let changed = AtomicUsize::new(0);
        pool.parallel_for_ranges(n, Schedule::graphbig_default(), |_tid, lo, hi| {
            let mut local_changed = 0usize;
            for v in lo..hi {
                let vid = v as VertexId;
                let mut best = comp[v].load(Ordering::Relaxed);
                for (u, _) in g.neighbors(vid) {
                    best = best.min(comp[u as usize].load(Ordering::Relaxed));
                }
                for u in g.in_neighbors(vid) {
                    best = best.min(comp[u as usize].load(Ordering::Relaxed));
                }
                // Monotone decrease: lock-free min store.
                let mut cur = comp[v].load(Ordering::Relaxed);
                while best < cur {
                    match comp[v].compare_exchange_weak(
                        cur,
                        best,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            local_changed += 1;
                            break;
                        }
                        Err(actual) => cur = actual,
                    }
                }
            }
            if local_changed > 0 {
                changed.fetch_add(local_changed, Ordering::Relaxed);
            }
        });
        counters.iterations += 1;
        counters.edges_traversed += m2;
        counters.vertices_touched += n as u64;
        trace.parallel(m2.max(1), 1, m2 * 16 + n as u64 * 8);
        if changed.load(Ordering::Relaxed) == 0 {
            break;
        }
    }
    counters.bytes_read = counters.edges_traversed * 16;
    counters.bytes_written = counters.vertices_touched * 8;
    RunOutput::new(
        AlgorithmResult::Components(
            comp.iter().map(|c| c.load(Ordering::Relaxed) as VertexId).collect(),
        ),
        counters,
        trace,
    )
    .cancelled(cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::{oracle, Csr, EdgeList};

    #[test]
    fn cdlp_two_triangles() {
        let el =
            EdgeList::new(6, vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).symmetrized();
        let g = PropertyGraph::from_edge_list(&el);
        let pool = ThreadPool::new(2);
        let out = cdlp(&g, &pool, 10);
        let AlgorithmResult::Labels(l) = out.result else { panic!() };
        assert_eq!(l, oracle::cdlp(&Csr::from_edge_list(&el), 10));
    }

    #[test]
    fn wcc_direction_blind() {
        let el = EdgeList::new(7, vec![(0, 1), (2, 1), (4, 3), (5, 6), (6, 5)]);
        let g = PropertyGraph::from_edge_list(&el);
        let pool = ThreadPool::new(3);
        let out = wcc(&g, &pool);
        let AlgorithmResult::Components(c) = out.result else { panic!() };
        assert_eq!(c, oracle::wcc(&Csr::from_edge_list(&el)));
    }

    #[test]
    fn wcc_long_chain_needs_many_rounds() {
        let edges: Vec<_> = (0..100).map(|i| (i as VertexId + 1, i as VertexId)).collect();
        let el = EdgeList::new(101, edges);
        let g = PropertyGraph::from_edge_list(&el);
        let pool = ThreadPool::new(2);
        let out = wcc(&g, &pool);
        let AlgorithmResult::Components(c) = out.result else { panic!() };
        assert!(c.iter().all(|&x| x == 0));
        assert!(out.counters.iterations > 1);
    }
}
