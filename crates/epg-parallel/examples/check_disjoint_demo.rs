//! Demonstrates the `check-disjoint` race detector end to end:
//!
//! ```text
//! cargo run -p epg-parallel --features check-disjoint --example check_disjoint_demo
//! ```
//!
//! A disjoint vertex-parallel write runs clean; an intentionally aliased
//! one trips the shadow table, and the pool propagates the panic (naming
//! both conflicting workers) back to the caller, where it is caught and
//! printed here.

use epg_parallel::{DisjointWriter, Schedule, ThreadPool};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn main() {
    let pool = ThreadPool::new(4);

    let mut out = vec![0usize; 16];
    {
        let w = DisjointWriter::new(&mut out);
        // SAFETY: parallel_for hands each index i to exactly one worker.
        pool.parallel_for(16, Schedule::Static { chunk: None }, |i| unsafe {
            w.write(i, i * i);
        });
    }
    println!("disjoint kernel: ok, out[15] = {}", out[15]);

    let mut aliased = vec![0usize; 8];
    let w = DisjointWriter::new(&mut aliased);
    let result = catch_unwind(AssertUnwindSafe(|| {
        // SAFETY: deliberately violates the disjointness contract — every
        // index collapses onto slot 0 so the detector has something to say.
        pool.parallel_for(8, Schedule::Static { chunk: None }, |_i| unsafe {
            w.write(0, 1);
        });
    }));
    match result {
        Ok(()) => println!("aliased kernel: no overlap detected (build without check-disjoint?)"),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "<non-string panic>".into());
            println!("aliased kernel: caught -> {msg}");
        }
    }
}
