//! Injection tests for the `check-disjoint` race detector: deliberately
//! overlapping writes must trip a panic naming both conflicting workers,
//! and the panic must propagate through the pool to the calling thread.
//! Benign patterns (disjoint indices, repeat writes across *different*
//! regions, writes outside any region) must stay silent.
//!
//! The whole file is compiled only with the feature:
//! `cargo test -p epg-parallel --features check-disjoint`.
#![cfg(feature = "check-disjoint")]

use epg_parallel::{DisjointWriter, Schedule, ThreadPool};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        String::from("<non-string panic payload>")
    }
}

#[test]
fn overlapping_region_writes_name_both_workers() {
    let pool = ThreadPool::new(2);
    let mut data = vec![0usize; 8];
    let w = DisjointWriter::new(&mut data);
    let err = catch_unwind(AssertUnwindSafe(|| {
        // SAFETY: deliberately NOT disjoint — every worker writes index 0.
        // The detector must catch this before it becomes silent corruption.
        pool.region(|tid| unsafe { w.write(0, tid) });
    }))
    .expect_err("both workers wrote index 0; the detector must panic");
    let msg = panic_message(err);
    assert!(msg.contains("check-disjoint"), "unexpected panic: {msg}");
    assert!(msg.contains("overlapping writes to index 0"), "unexpected panic: {msg}");
    // With two workers the conflicting pair is fully determined.
    assert!(msg.contains("workers 0 and 1"), "panic must name both workers: {msg}");
}

#[test]
fn overlap_under_parallel_for_is_detected() {
    let pool = ThreadPool::new(4);
    let mut data = vec![0usize; 64];
    let w = DisjointWriter::new(&mut data);
    let err = catch_unwind(AssertUnwindSafe(|| {
        // SAFETY: deliberately aliased — i and i + 64 collapse onto the
        // same slot, so two static chunks collide on every index.
        pool.parallel_for(128, Schedule::Static { chunk: None }, |i| unsafe {
            w.write(i % 64, i);
        });
    }))
    .expect_err("aliased index map must trip the detector");
    let msg = panic_message(err);
    assert!(msg.contains("check-disjoint: overlapping writes"), "unexpected panic: {msg}");
    assert!(msg.contains("workers"), "panic must name the workers: {msg}");
}

#[test]
fn overlap_through_get_raw_is_detected() {
    let pool = ThreadPool::new(2);
    let mut data = vec![0u64; 4];
    let w = DisjointWriter::new(&mut data);
    let err = catch_unwind(AssertUnwindSafe(|| {
        // SAFETY: deliberately aliased — both workers take a &mut to slot 1.
        pool.region(|_tid| unsafe {
            *w.get_raw(1) += 1;
        });
    }))
    .expect_err("aliased get_raw must trip the detector");
    let msg = panic_message(err);
    assert!(msg.contains("overlapping writes to index 1"), "unexpected panic: {msg}");
    assert!(msg.contains("workers 0 and 1"), "panic must name both workers: {msg}");
}

#[test]
fn disjoint_writes_stay_silent() {
    let pool = ThreadPool::new(4);
    let mut data = vec![0usize; 1024];
    {
        let w = DisjointWriter::new(&mut data);
        // SAFETY: parallel_for hands each index i to exactly one worker.
        pool.parallel_for(1024, Schedule::Dynamic { chunk: 13 }, |i| unsafe {
            w.write(i, i + 7);
        });
    }
    assert!(data.iter().enumerate().all(|(i, &v)| v == i + 7));
}

#[test]
fn rewrites_in_a_later_region_are_not_conflicts() {
    // The contract is per-region: writing the same index again in the NEXT
    // region is the normal iterative-kernel pattern and must not panic.
    let pool = ThreadPool::new(4);
    let mut data = vec![0usize; 256];
    let w = DisjointWriter::new(&mut data);
    for round in 0..3 {
        // SAFETY: indices are disjoint within each region.
        pool.parallel_for(256, Schedule::Static { chunk: None }, |i| unsafe {
            w.write(i, round * 1000 + i);
        });
    }
    drop(w);
    assert!(data.iter().enumerate().all(|(i, &v)| v == 2000 + i));
}

#[test]
fn writes_outside_any_region_are_not_recorded() {
    // On the calling thread with no region open the writer is not shared,
    // so repeated writes to one slot are fine and must not be flagged.
    let mut data = vec![0u32; 4];
    let w = DisjointWriter::new(&mut data);
    for k in 0..10 {
        // SAFETY: single-threaded use; no region is active.
        unsafe { w.write(2, k) };
    }
    drop(w);
    assert_eq!(data[2], 9);
}

#[test]
fn detector_panic_leaves_pool_usable() {
    // After a detected overlap the pool must still run later regions: the
    // panic is propagated, not allowed to wedge a worker.
    let pool = ThreadPool::new(2);
    let mut data = vec![0usize; 16];
    {
        let w = DisjointWriter::new(&mut data);
        let err = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: deliberately aliased to trip the detector.
            pool.region(|_tid| unsafe { w.write(3, 1) });
        }));
        assert!(err.is_err());
    }
    let mut after = vec![0usize; 16];
    {
        let w = DisjointWriter::new(&mut after);
        // SAFETY: parallel_for hands each index i to exactly one worker.
        pool.parallel_for(16, Schedule::Static { chunk: None }, |i| unsafe {
            w.write(i, i);
        });
    }
    assert!(after.iter().enumerate().all(|(i, &v)| v == i));
}
