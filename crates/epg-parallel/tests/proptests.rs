#![allow(clippy::needless_range_loop)]

//! Property tests: the parallel runtime must agree with sequential folds
//! for every schedule and thread count.

use epg_parallel::{Schedule, ThreadPool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static { chunk: None }),
        (1usize..50).prop_map(|c| Schedule::Static { chunk: Some(c) }),
        (1usize..50).prop_map(|c| Schedule::Dynamic { chunk: c }),
        (1usize..50).prop_map(|c| Schedule::Guided { min_chunk: c }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_index_visited_once(
        n in 0usize..3000,
        sched in arb_schedule(),
        nthreads in 1usize..5,
    ) {
        let pool = ThreadPool::new(nthreads);
        let visits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for(n, sched, |i| { visits[i].fetch_add(1, Ordering::Relaxed); });
        for (i, v) in visits.iter().enumerate() {
            prop_assert_eq!(v.load(Ordering::Relaxed), 1, "index {}", i);
        }
    }

    #[test]
    fn reduction_matches_sequential(
        data in proptest::collection::vec(-100i64..100, 0..2000),
        sched in arb_schedule(),
        nthreads in 1usize..5,
    ) {
        let pool = ThreadPool::new(nthreads);
        let par = pool.parallel_reduce(
            data.len(),
            sched,
            || 0i64,
            |acc, i| *acc += data[i],
            |a, b| a + b,
        );
        prop_assert_eq!(par, data.iter().sum::<i64>());
    }

    #[test]
    fn ranges_are_disjoint_and_cover(
        n in 1usize..5000,
        sched in arb_schedule(),
        nthreads in 1usize..5,
    ) {
        let pool = ThreadPool::new(nthreads);
        let covered: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for_ranges(n, sched, |tid, lo, hi| {
            assert!(tid < nthreads);
            for i in lo..hi {
                covered[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        prop_assert!(covered.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}
