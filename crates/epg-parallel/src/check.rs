//! Region bookkeeping for the dynamic disjointness checker.
//!
//! Every parallel region dispatched by a [`crate::ThreadPool`] gets a
//! process-unique *region id*, and every thread executing inside one carries
//! that id plus its stable worker id (0 for the dispatching thread,
//! `1..nthreads` for pool workers) in thread-local state. The
//! `check-disjoint` feature's shadow table in [`crate::DisjointWriter`]
//! combines the two into a write tag: two different workers tagging the same
//! index with the same region id is exactly an overlapping write within one
//! `parallel_for` region.
//!
//! Region ids are allocated from one global counter rather than a single
//! monotonically bumped epoch so that concurrently running pools (e.g. tests
//! in one binary) can never blur each other's region boundaries: ids are
//! unique per region instance, not merely increasing.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};

/// Source of process-unique region ids; 0 is reserved for "outside any
/// region".
static REGION_COUNTER: AtomicU32 = AtomicU32::new(0);

thread_local! {
    /// `(region id, worker id)` for the region this thread is currently
    /// executing, or `(0, usize::MAX)` outside any region.
    static CURRENT: Cell<(u32, usize)> = const { Cell::new((0, usize::MAX)) };
}

/// Allocates a fresh nonzero region id for one parallel-region dispatch.
pub(crate) fn next_region_id() -> u32 {
    loop {
        let id = REGION_COUNTER.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        if id != 0 {
            return id;
        }
    }
}

/// The region id the calling thread is executing inside, or 0 when outside
/// every parallel region.
#[cfg_attr(not(feature = "check-disjoint"), allow(dead_code))]
pub(crate) fn current_region() -> u32 {
    CURRENT.with(|c| c.get().0)
}

/// The stable worker id of the calling thread within its current parallel
/// region: 0 for the thread that dispatched the region, `1..nthreads` for
/// pool workers. `None` outside any region.
pub fn current_worker_id() -> Option<usize> {
    CURRENT.with(|c| {
        let (region, worker) = c.get();
        if region == 0 {
            None
        } else {
            Some(worker)
        }
    })
}

/// RAII scope marking the calling thread as executing `worker` within
/// `region`; restores the previous state on drop (regions never nest today —
/// the pool asserts that — but restoring keeps the bookkeeping correct if a
/// region body drives another pool).
pub(crate) struct RegionScope {
    prev: (u32, usize),
}

pub(crate) fn enter_region(region: u32, worker: usize) -> RegionScope {
    let prev = CURRENT.with(|c| c.replace((region, worker)));
    RegionScope { prev }
}

impl Drop for RegionScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outside_any_region_there_is_no_worker_id() {
        assert_eq!(current_worker_id(), None);
        assert_eq!(current_region(), 0);
    }

    #[test]
    fn scope_sets_and_restores() {
        let r = next_region_id();
        {
            let _scope = enter_region(r, 3);
            assert_eq!(current_worker_id(), Some(3));
            assert_eq!(current_region(), r);
            {
                let inner = next_region_id();
                let _nested = enter_region(inner, 0);
                assert_eq!(current_worker_id(), Some(0));
                assert_eq!(current_region(), inner);
            }
            assert_eq!(current_worker_id(), Some(3));
        }
        assert_eq!(current_worker_id(), None);
    }

    #[test]
    fn region_ids_are_unique_and_nonzero() {
        let a = next_region_id();
        let b = next_region_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }
}
