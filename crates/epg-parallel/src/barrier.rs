//! A reusable sense-reversing barrier.
//!
//! Engines that keep threads inside one long parallel region (the
//! PowerGraph-style GAS engine synchronizes between its gather, apply, and
//! scatter minor-steps) need an in-region barrier. The classic
//! sense-reversing design needs one atomic counter and one flag word and is
//! reusable without re-initialization.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable barrier for a fixed number of participants.
pub struct SenseBarrier {
    parties: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SenseBarrier {
    /// Creates a barrier for `parties` threads. `parties` must be >= 1.
    pub fn new(parties: usize) -> SenseBarrier {
        assert!(parties >= 1, "barrier needs at least one party");
        SenseBarrier { parties, count: AtomicUsize::new(0), sense: AtomicBool::new(false) }
    }

    /// Blocks until all parties have called `wait`. Returns `true` on
    /// exactly one thread per phase (the last arriver), like
    /// `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        let my_sense = !self.sense.load(Ordering::Relaxed);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.parties {
            self.count.store(0, Ordering::Relaxed);
            // Release the cohort; Release pairs with the Acquire spin below.
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            while self.sense.load(Ordering::Acquire) != my_sense {
                std::hint::spin_loop();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_party_never_blocks() {
        let b = SenseBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn phases_are_ordered_across_threads() {
        const THREADS: usize = 4;
        const PHASES: usize = 50;
        let b = SenseBarrier::new(THREADS);
        let phase_sum = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for p in 0..PHASES {
                        phase_sum.fetch_add(1, Ordering::Relaxed);
                        b.wait();
                        // After the barrier every thread must observe all
                        // increments of this phase.
                        assert!(phase_sum.load(Ordering::Relaxed) >= (p + 1) * THREADS);
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(phase_sum.load(Ordering::Relaxed), THREADS * PHASES);
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        const THREADS: usize = 3;
        let b = SenseBarrier::new(THREADS);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..20 {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 20);
    }
}
