//! Parallel reductions (`#pragma omp parallel for reduction(...)`).

use crate::{Schedule, ThreadPool};
use parking_lot::Mutex;

impl ThreadPool {
    /// Parallel reduction over `0..n`: each thread folds indices into a
    /// private accumulator created by `identity`, and the per-thread
    /// accumulators are combined (in unspecified order) with `combine`.
    pub fn parallel_reduce<T, I, F, C>(
        &self,
        n: usize,
        sched: Schedule,
        identity: I,
        fold: F,
        combine: C,
    ) -> T
    where
        T: Send,
        I: Fn() -> T + Sync,
        F: Fn(&mut T, usize) + Sync,
        C: Fn(T, T) -> T,
    {
        let partials: Mutex<Vec<T>> = Mutex::new(Vec::with_capacity(self.num_threads()));
        self.parallel_for_ranges(n, sched, |_tid, lo, hi| {
            let mut acc = identity();
            for i in lo..hi {
                fold(&mut acc, i);
            }
            partials.lock().push(acc);
        });
        partials.into_inner().into_iter().fold(identity(), combine)
    }

    /// Sum of `f(i)` over `0..n` in `f64`. The workhorse for PageRank's L1
    /// convergence check.
    pub fn parallel_sum_f64<F: Fn(usize) -> f64 + Sync>(
        &self,
        n: usize,
        sched: Schedule,
        f: F,
    ) -> f64 {
        self.parallel_reduce(n, sched, || 0.0f64, |acc, i| *acc += f(i), |a, b| a + b)
    }

    /// Logical OR of `f(i)` over `0..n` — used for "did any vertex change"
    /// convergence checks (GraphMat's ∞-norm criterion).
    pub fn parallel_any<F: Fn(usize) -> bool + Sync>(
        &self,
        n: usize,
        sched: Schedule,
        f: F,
    ) -> bool {
        self.parallel_reduce(n, sched, || false, |acc, i| *acc |= f(i), |a, b| a || b)
    }

    /// Maximum of `f(i)` over `0..n` in `f64`.
    pub fn parallel_max_f64<F: Fn(usize) -> f64 + Sync>(
        &self,
        n: usize,
        sched: Schedule,
        f: F,
    ) -> f64 {
        self.parallel_reduce(
            n,
            sched,
            || f64::NEG_INFINITY,
            |acc, i| *acc = acc.max(f(i)),
            f64::max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_sequential_fold() {
        let pool = ThreadPool::new(4);
        let data: Vec<f64> = (0..10_000).map(|i| (i % 97) as f64 * 0.25).collect();
        let par = pool.parallel_sum_f64(data.len(), Schedule::Dynamic { chunk: 33 }, |i| data[i]);
        let seq: f64 = data.iter().sum();
        // Summation order differs; allow tiny fp slack.
        assert!((par - seq).abs() < 1e-6, "{par} vs {seq}");
    }

    #[test]
    fn reduce_on_empty_range_is_identity() {
        let pool = ThreadPool::new(3);
        let r = pool.parallel_reduce(
            0,
            Schedule::Static { chunk: None },
            || 7u64,
            |_, _| panic!(),
            |a, b| a + b,
        );
        assert_eq!(r, 7);
    }

    #[test]
    fn any_detects_single_hit() {
        let pool = ThreadPool::new(4);
        assert!(pool.parallel_any(1000, Schedule::Guided { min_chunk: 16 }, |i| i == 777));
        assert!(!pool.parallel_any(1000, Schedule::Guided { min_chunk: 16 }, |_| false));
    }

    #[test]
    fn max_finds_the_peak() {
        let pool = ThreadPool::new(2);
        let m = pool.parallel_max_f64(513, Schedule::Static { chunk: Some(10) }, |i| {
            -((i as f64) - 400.0).powi(2)
        });
        assert_eq!(m, 0.0);
    }
}
