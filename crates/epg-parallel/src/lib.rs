//! An OpenMP-like shared-memory parallel runtime.
//!
//! Every system the paper compares achieves parallelism through OpenMP
//! (PowerGraph adds user-level fibers on top, §III-C). Re-implementing the
//! engines in Rust therefore needs an equivalent substrate: a persistent
//! thread pool with fork-join *parallel regions*, worksharing loops with
//! OpenMP's three classic schedules (`static`, `dynamic`, `guided`),
//! reductions, and the atomic read-modify-write helpers graph kernels lean
//! on (atomic min over `f32`, etc.).
//!
//! The pool is deliberately small and auditable rather than work-stealing:
//! these engines' OpenMP loops are flat worksharing constructs, and keeping
//! scheduling explicit lets the machine model in `epg-machine` reason about
//! chunk dispatch counts.
//!
//! # Example
//! ```
//! use epg_parallel::{ThreadPool, Schedule};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let pool = ThreadPool::new(4);
//! let hits = AtomicU64::new(0);
//! pool.parallel_for(1000, Schedule::Dynamic { chunk: 64 }, |_i| {
//!     hits.fetch_add(1, Ordering::Relaxed);
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 1000);
//! ```

#![warn(missing_docs)]
mod atomics;
mod barrier;
mod cancel;
mod check;
mod pool;
mod reduce;
mod scan;
mod schedule;
mod writer;

pub use atomics::{atomic_min_u32, AtomicF32, AtomicF64};
pub use barrier::SenseBarrier;
pub use cancel::CancelToken;
pub use check::current_worker_id;
pub use pool::{PoolStats, ThreadPool};
pub use schedule::Schedule;
pub use writer::DisjointWriter;
