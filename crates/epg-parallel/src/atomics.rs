//! Atomic floating-point and min helpers.
//!
//! Graph kernels relax distances and accumulate ranks concurrently; C++
//! engines use `compare_exchange` loops over bit-punned floats for this, and
//! we provide the same primitives (cf. "Rust Atomics and Locks", ch. 2-3).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Failure ordering for a compare-exchange derived from the caller's
/// success ordering: the strongest *load* ordering not exceeding it.
/// Hardcoding `Relaxed` would silently drop the acquire a caller asked for
/// on the retry path; hardcoding the success ordering is illegal (failure
/// cannot be `Release`/`AcqRel`). This is the workspace's memory-ordering
/// policy, enforced by `epg-lint`.
#[inline]
fn cas_failure_order(success: Ordering) -> Ordering {
    match success {
        Ordering::SeqCst => Ordering::SeqCst,
        Ordering::Acquire | Ordering::AcqRel => Ordering::Acquire,
        _ => Ordering::Relaxed,
    }
}

/// An `f32` with atomic `load`/`store`/`fetch_add`/`fetch_min` built on a
/// compare-exchange loop over the bit pattern.
#[derive(Debug, Default)]
pub struct AtomicF32 {
    bits: AtomicU32,
}

impl AtomicF32 {
    /// Creates a new atomic with the given value.
    pub fn new(v: f32) -> Self {
        AtomicF32 { bits: AtomicU32::new(v.to_bits()) }
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, order: Ordering) -> f32 {
        f32::from_bits(self.bits.load(order))
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: f32, order: Ordering) {
        self.bits.store(v.to_bits(), order);
    }

    /// Atomically adds `v`, returning the previous value.
    pub fn fetch_add(&self, v: f32, order: Ordering) -> f32 {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f32::from_bits(cur) + v).to_bits();
            match self.bits.compare_exchange_weak(cur, next, order, cas_failure_order(order)) {
                Ok(prev) => return f32::from_bits(prev),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Atomically lowers the value to `min(self, v)`, returning whether the
    /// stored value decreased. This is the SSSP relaxation primitive.
    pub fn fetch_min(&self, v: f32, order: Ordering) -> bool {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            if f32::from_bits(cur) <= v {
                return false;
            }
            match self.bits.compare_exchange_weak(cur, v.to_bits(), order, cas_failure_order(order))
            {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// An `f64` with atomic `fetch_add`, for rank accumulation.
#[derive(Debug, Default)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// Creates a new atomic with the given value.
    pub fn new(v: f64) -> Self {
        AtomicF64 { bits: AtomicU64::new(v.to_bits()) }
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, order: Ordering) -> f64 {
        f64::from_bits(self.bits.load(order))
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: f64, order: Ordering) {
        self.bits.store(v.to_bits(), order);
    }

    /// Atomically adds `v`, returning the previous value.
    pub fn fetch_add(&self, v: f64, order: Ordering) -> f64 {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.bits.compare_exchange_weak(cur, next, order, cas_failure_order(order)) {
                Ok(prev) => return f64::from_bits(prev),
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Atomically lowers `a` to `min(a, v)`, returning whether it decreased.
/// Used for label propagation (CDLP/WCC take the minimum label).
pub fn atomic_min_u32(a: &AtomicU32, v: u32, order: Ordering) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    loop {
        if cur <= v {
            return false;
        }
        match a.compare_exchange_weak(cur, v, order, cas_failure_order(order)) {
            Ok(_) => return true,
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_add_and_min() {
        let a = AtomicF32::new(1.0);
        assert_eq!(a.fetch_add(2.5, Ordering::Relaxed), 1.0);
        assert_eq!(a.load(Ordering::Relaxed), 3.5);
        assert!(a.fetch_min(2.0, Ordering::Relaxed));
        assert!(!a.fetch_min(2.0, Ordering::Relaxed));
        assert!(!a.fetch_min(9.0, Ordering::Relaxed));
        assert_eq!(a.load(Ordering::Relaxed), 2.0);
    }

    #[test]
    fn cas_failure_order_never_exceeds_success() {
        assert_eq!(cas_failure_order(Ordering::SeqCst), Ordering::SeqCst);
        assert_eq!(cas_failure_order(Ordering::AcqRel), Ordering::Acquire);
        assert_eq!(cas_failure_order(Ordering::Acquire), Ordering::Acquire);
        assert_eq!(cas_failure_order(Ordering::Release), Ordering::Relaxed);
        assert_eq!(cas_failure_order(Ordering::Relaxed), Ordering::Relaxed);
    }

    #[test]
    fn stronger_orderings_are_accepted() {
        // Exercise every derived failure-ordering path under contention.
        for order in [Ordering::Relaxed, Ordering::Release, Ordering::AcqRel, Ordering::SeqCst] {
            let a = AtomicF32::new(0.0);
            assert_eq!(a.fetch_add(1.5, order), 0.0);
            let b = AtomicF64::new(0.0);
            assert_eq!(b.fetch_add(2.5, order), 0.0);
            let c = AtomicU32::new(9);
            assert!(atomic_min_u32(&c, 3, order));
        }
    }

    #[test]
    fn f32_min_from_infinity() {
        let a = AtomicF32::new(f32::INFINITY);
        assert!(a.fetch_min(7.0, Ordering::Relaxed));
        assert_eq!(a.load(Ordering::Relaxed), 7.0);
    }

    #[test]
    fn f64_accumulates_under_contention() {
        let a = AtomicF64::new(0.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        a.fetch_add(0.5, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(a.load(Ordering::Relaxed), 2000.0);
    }

    #[test]
    fn u32_min_under_contention_settles_at_global_min() {
        let a = AtomicU32::new(u32::MAX);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let a = &a;
                s.spawn(move || {
                    for i in (100 * t..100 * (t + 1)).rev() {
                        atomic_min_u32(a, i, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(a.load(Ordering::Relaxed), 0);
    }
}
