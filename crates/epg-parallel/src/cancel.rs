//! Cooperative trial cancellation.
//!
//! A [`CancelToken`] is a shared flag + optional deadline that long
//! kernels poll at natural boundaries (pool chunk claims, engine
//! iteration tops). Nothing is ever interrupted preemptively: a trial
//! past its budget *unwinds cooperatively*, which is what keeps partial
//! [`Counters`](../epg_engine_api) intact and the pool reusable — the
//! paper's harness needs exactly this because systems like PowerGraph
//! "do not complete in a reasonable time" on some cells and the row
//! must become a DNF, not a wedged process.
//!
//! There is deliberately no watchdog thread. The deadline is evaluated
//! (and latched into the flag) inside [`CancelToken::is_cancelled`], so
//! any poller past the deadline observes cancellation; a kernel that
//! never polls is outside the cooperative contract and the supervisor
//! will still classify the trial by re-checking the token it holds.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sentinel meaning "no deadline armed".
const NO_DEADLINE: u64 = u64::MAX;

#[derive(Debug)]
struct Inner {
    /// Latched cancel flag. Once true, stays true.
    cancelled: AtomicBool,
    /// Deadline in nanoseconds since `epoch`, or [`NO_DEADLINE`].
    deadline_ns: AtomicU64,
    /// Per-token time origin; deadlines are stored relative to it so a
    /// single `u64` atomic suffices.
    epoch: Instant,
}

/// Shared cooperative-cancellation handle (clone-cheap: `Arc` inside).
///
/// Cancellation is *monotone*: [`cancel`](CancelToken::cancel) and a
/// passed deadline both latch the flag permanently, so a poller can
/// cache a `true` answer but never a `false` one.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// Fresh token: not cancelled, no deadline.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline_ns: AtomicU64::new(NO_DEADLINE),
                epoch: Instant::now(),
            }),
        }
    }

    /// Token that trips `budget` from now.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        let t = CancelToken::new();
        t.set_deadline(budget);
        t
    }

    /// Arms (or re-arms) the deadline `from_now` in the future.
    pub fn set_deadline(&self, from_now: Duration) {
        let now = self.inner.epoch.elapsed();
        let ns = now
            .checked_add(from_now)
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(NO_DEADLINE - 1))
            .unwrap_or(NO_DEADLINE - 1)
            .min(NO_DEADLINE - 1);
        self.inner.deadline_ns.store(ns, Ordering::Relaxed);
    }

    /// Disarms the deadline (does not clear an already-latched cancel).
    pub fn clear_deadline(&self) {
        self.inner.deadline_ns.store(NO_DEADLINE, Ordering::Relaxed);
    }

    /// Latches the cancel flag.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the trial should unwind. Evaluates the deadline and
    /// latches it into the flag, so cancellation observed once is
    /// observed forever — including by the supervisor after the kernel
    /// returns.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        let deadline = self.inner.deadline_ns.load(Ordering::Relaxed);
        if deadline != NO_DEADLINE {
            let now = u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if now >= deadline {
                self.inner.cancelled.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// Time left before the deadline trips, `None` when no deadline is
    /// armed. Zero once the deadline has passed.
    pub fn remaining(&self) -> Option<Duration> {
        let deadline = self.inner.deadline_ns.load(Ordering::Relaxed);
        if deadline == NO_DEADLINE {
            return None;
        }
        let now = u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Some(Duration::from_nanos(deadline.saturating_sub(now)))
    }
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn cancel_latches_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        assert!(c.is_cancelled());
    }

    #[test]
    fn deadline_trips_and_latches() {
        let t = CancelToken::with_deadline(Duration::from_millis(5));
        assert!(!t.is_cancelled(), "deadline must not fire early");
        thread::sleep(Duration::from_millis(20));
        assert!(t.is_cancelled());
        // Latched: even after the deadline is disarmed, the flag holds.
        t.clear_deadline();
        assert!(t.is_cancelled());
    }

    #[test]
    fn remaining_counts_down_to_zero() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        let r = t.remaining().expect("deadline armed");
        assert!(r <= Duration::from_secs(3600));
        assert!(r > Duration::from_secs(3500));
        let expired = CancelToken::with_deadline(Duration::ZERO);
        thread::sleep(Duration::from_millis(1));
        assert_eq!(expired.remaining(), Some(Duration::ZERO));
        assert!(expired.is_cancelled());
    }

    #[test]
    fn cancellation_is_visible_from_other_threads() {
        let t = CancelToken::new();
        let seen = {
            let t = t.clone();
            thread::spawn(move || {
                while !t.is_cancelled() {
                    thread::yield_now();
                }
                true
            })
        };
        t.cancel();
        assert!(seen.join().unwrap());
    }
}
