//! Parallel prefix sums (exclusive scan).
//!
//! The classic two-pass blocked scan: each thread reduces its block, block
//! sums are scanned serially (P values), then each thread re-walks its
//! block with the offset. Graph construction kernels (CSR counting sort)
//! are built on this — the Graph500's construction kernel is exactly a
//! histogram + scan + scatter.

use crate::{Schedule, ThreadPool};
use parking_lot::Mutex;

impl ThreadPool {
    /// In-place exclusive prefix sum over `data`, returning the total.
    ///
    /// `data[i]` becomes `sum(data[0..i])`; the sum of the whole original
    /// array is returned.
    pub fn exclusive_scan(&self, data: &mut [u64]) -> u64 {
        let n = data.len();
        if n == 0 {
            return 0;
        }
        let nthreads = self.num_threads();
        let block = n.div_ceil(nthreads).max(1);
        let nblocks = n.div_ceil(block);

        // Pass 1: per-block sums.
        let sums: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::with_capacity(nblocks));
        {
            let data_ref: &[u64] = data;
            self.parallel_for(nblocks, Schedule::Static { chunk: Some(1) }, |b| {
                let lo = b * block;
                let hi = (lo + block).min(n);
                let s: u64 = data_ref[lo..hi].iter().sum();
                sums.lock().push((b, s));
            });
        }
        let mut sums = sums.into_inner();
        sums.sort_unstable_by_key(|&(b, _)| b);
        // Serial scan over the (few) block sums.
        let mut offsets = Vec::with_capacity(nblocks);
        let mut acc = 0u64;
        for &(_, s) in &sums {
            offsets.push(acc);
            acc += s;
        }
        let total = acc;

        // Pass 2: per-block exclusive scan with offset.
        {
            let writer = crate::DisjointWriter::new(data);
            let offsets_ref = &offsets;
            self.parallel_for(nblocks, Schedule::Static { chunk: Some(1) }, |b| {
                let lo = b * block;
                let hi = (lo + block).min(n);
                let mut run = offsets_ref[b];
                for i in lo..hi {
                    // SAFETY: blocks are disjoint; each index written once.
                    unsafe {
                        let old = *writer.get_raw(i);
                        writer.write(i, run);
                        run += old;
                    }
                }
            });
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(data: Vec<u64>, nthreads: usize) {
        let mut par = data.clone();
        let pool = ThreadPool::new(nthreads);
        let total = pool.exclusive_scan(&mut par);
        let mut expect = Vec::with_capacity(data.len());
        let mut acc = 0u64;
        for &x in &data {
            expect.push(acc);
            acc += x;
        }
        assert_eq!(par, expect, "nthreads={nthreads}");
        assert_eq!(total, acc);
    }

    #[test]
    fn matches_sequential_scan() {
        for nthreads in [1, 2, 3, 4, 7] {
            check(vec![], nthreads);
            check(vec![5], nthreads);
            check((0..1000).map(|i| i % 17).collect(), nthreads);
            check(vec![0; 257], nthreads);
        }
    }

    #[test]
    fn large_values_do_not_overflow_between_blocks() {
        let pool = ThreadPool::new(4);
        let mut data = vec![u32::MAX as u64; 64];
        let total = pool.exclusive_scan(&mut data);
        assert_eq!(total, 64 * (u32::MAX as u64));
        assert_eq!(data[63], 63 * (u32::MAX as u64));
    }

    // Edge cases the two-pass CSR count-matrix scan leans on directly.

    #[test]
    fn empty_slice_returns_zero_total() {
        for nthreads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(nthreads);
            let mut data: Vec<u64> = vec![];
            assert_eq!(pool.exclusive_scan(&mut data), 0, "nthreads={nthreads}");
            assert!(data.is_empty());
        }
    }

    #[test]
    fn single_element_becomes_zero_and_returns_it() {
        for nthreads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(nthreads);
            let mut data = vec![42u64];
            assert_eq!(pool.exclusive_scan(&mut data), 42, "nthreads={nthreads}");
            assert_eq!(data, vec![0]);
        }
    }

    #[test]
    fn all_zero_counts_scan_to_all_zeros() {
        // A graph whose counted vertices all have degree 0 (e.g. an edge
        // list hitting only a prefix of the vertex space) must produce a
        // valid all-zero offsets body with total 0.
        for nthreads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(nthreads);
            let mut data = vec![0u64; 1023];
            assert_eq!(pool.exclusive_scan(&mut data), 0, "nthreads={nthreads}");
            assert!(data.iter().all(|&x| x == 0), "nthreads={nthreads}");
        }
    }

    #[test]
    fn u64_totals_near_edge_count_scale() {
        // Degree histograms sum to m; make sure block handoffs stay exact
        // when per-element values (and the running total) need full u64.
        let pool = ThreadPool::new(4);
        let big = 1u64 << 40;
        let mut data = vec![big; 129];
        let total = pool.exclusive_scan(&mut data);
        assert_eq!(total, 129 * big);
        assert_eq!(data[0], 0);
        assert_eq!(data[128], 128 * big);
        assert_eq!(data[64], 64 * big);
    }
}
