//! OpenMP worksharing schedules.

/// Loop schedule, mirroring OpenMP's `schedule(...)` clause. The paper's
/// engines differ in their choices — GAP/Graph500 lean on static or guided
/// partitioning of CSR ranges while GraphBIG's openG kernels use dynamic
/// scheduling — and the `ablation_sched` bench quantifies the difference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous blocks per thread (`None`) or round-robin blocks of the
    /// given size (`Some(chunk)`). No runtime coordination.
    Static {
        /// Optional fixed chunk size.
        chunk: Option<usize>,
    },
    /// Threads grab fixed-size chunks from a shared counter. Balances
    /// irregular work at the cost of one atomic RMW per chunk.
    Dynamic {
        /// Chunk size (clamped to at least 1).
        chunk: usize,
    },
    /// Threads grab exponentially shrinking chunks (`remaining / nthreads`,
    /// floored at `min_chunk`). Fewer atomics than dynamic, better balance
    /// than static.
    Guided {
        /// Smallest chunk ever handed out (clamped to at least 1).
        min_chunk: usize,
    },
}

impl Schedule {
    /// The default schedule GAP-style CSR kernels use.
    pub const fn gap_default() -> Schedule {
        Schedule::Guided { min_chunk: 64 }
    }

    /// The default schedule GraphBIG-style vertex kernels use.
    pub const fn graphbig_default() -> Schedule {
        Schedule::Dynamic { chunk: 256 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_distinct() {
        assert_ne!(Schedule::gap_default(), Schedule::graphbig_default());
    }
}
