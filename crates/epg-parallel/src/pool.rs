//! The persistent fork-join thread pool.
//!
//! A parallel region publishes one job — a `Fn(usize)` invoked once per
//! thread with that thread's id — to `nthreads - 1` parked workers; the
//! calling thread participates as thread 0. The caller blocks until every
//! worker finishes, which is what makes handing workers a borrowed closure
//! sound (see safety note on [`ThreadPool::region`]).

use crate::cancel::CancelToken;
use crate::check;
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Raw pointer to the caller's region closure. Valid for the duration of
/// one generation: the dispatching thread keeps the closure alive until all
/// workers have reported completion.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared invocation from many threads is
// fine) and the dispatch protocol guarantees it outlives every dereference.
unsafe impl Send for JobPtr {}

struct State {
    /// Generation counter; bumping it is the "go" signal.
    gen: u64,
    /// Generation whose workers have all finished.
    done_gen: u64,
    /// Workers still running the current generation.
    remaining: usize,
    /// The job for the current generation.
    job: Option<JobPtr>,
    /// Region id of the current generation (see [`crate::check`]).
    region_id: u32,
    /// First panic payload caught from a worker this generation; re-raised
    /// on the dispatching thread after the join barrier.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Inner {
    nthreads: usize,
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    regions: AtomicU64,
    chunks: AtomicU64,
    data_rmw: AtomicU64,
    /// Dispatch gate for concurrent clients: see [`ThreadPool::exclusive`].
    dispatch_gate: Mutex<()>,
    /// Cooperative-cancellation token for the trial currently using this
    /// pool; worksharing loops poll it at chunk boundaries.
    cancel: Mutex<Option<CancelToken>>,
    /// Fast-path gate: `false` means no token is attached and the poll
    /// in the hot chunk loops is a single relaxed load.
    cancel_active: AtomicBool,
    /// Telemetry sink for per-worker busy/idle spans.
    #[cfg(feature = "trace")]
    recorder: Mutex<Option<Arc<dyn epg_trace::Recorder>>>,
    /// Per-worker busy nanoseconds of the current generation; read by
    /// the dispatcher after the join barrier (the state mutex orders
    /// the stores before the read).
    #[cfg(feature = "trace")]
    busy_ns: Vec<AtomicU64>,
}

/// Cumulative dispatch statistics, consumed by the machine model to cost
/// scheduling overhead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Parallel regions executed (each costs a fork + join barrier).
    pub regions: u64,
    /// Loop chunks handed out across all worksharing loops.
    pub chunks: u64,
    /// Per-element atomic read-modify-write operations on *shared data*
    /// reported by kernels via [`ThreadPool::record_data_rmw`]. The
    /// substrate cannot observe user atomics, so reporting is part of a
    /// kernel's contract: contended-scatter kernels report one count per
    /// RMW, and contention-free kernels (the two-pass CSR builds) report
    /// none — tests pin that claim by snapshotting [`ThreadPool::stats`]
    /// around a call and asserting a zero delta.
    pub data_rmw: u64,
}

/// An OpenMP-like thread pool. See the crate docs for an example.
pub struct ThreadPool {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool that runs regions on `nthreads` threads (the caller
    /// counts as one). `nthreads` must be at least 1.
    pub fn new(nthreads: usize) -> ThreadPool {
        assert!(nthreads >= 1, "a pool needs at least one thread");
        let inner = Arc::new(Inner {
            nthreads,
            state: Mutex::new(State {
                gen: 0,
                done_gen: 0,
                remaining: 0,
                job: None,
                region_id: 0,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            regions: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            data_rmw: AtomicU64::new(0),
            dispatch_gate: Mutex::new(()),
            cancel: Mutex::new(None),
            cancel_active: AtomicBool::new(false),
            #[cfg(feature = "trace")]
            recorder: Mutex::new(None),
            #[cfg(feature = "trace")]
            busy_ns: (0..nthreads).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (1..nthreads)
            .map(|tid| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("epg-worker-{tid}"))
                    .spawn(move || worker_loop(&inner, tid))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool { inner, handles }
    }

    /// Number of threads (including the caller).
    pub fn num_threads(&self) -> usize {
        self.inner.nthreads
    }

    /// Attaches (`Some`) or detaches (`None`) a telemetry sink. While
    /// attached, every region emits one `WorkerSpan` event per worker
    /// with its busy time and the idle remainder of the region's wall
    /// clock. Only present with the `trace` feature.
    #[cfg(feature = "trace")]
    pub fn set_recorder(&self, rec: Option<Arc<dyn epg_trace::Recorder>>) {
        *self.inner.recorder.lock() = rec;
    }

    /// Attaches (`Some`) or detaches (`None`) a cooperative-cancellation
    /// token. While attached, every worksharing loop polls it before
    /// claiming each chunk and abandons the remainder of the iteration
    /// space once it trips; already-claimed chunks always run to
    /// completion, so each index is covered at most once and never
    /// twice. The supervisor in `epg-harness` attaches a fresh token per
    /// trial and detaches it afterwards.
    pub fn set_cancel_token(&self, token: Option<CancelToken>) {
        let mut slot = self.inner.cancel.lock();
        self.inner.cancel_active.store(token.is_some(), Ordering::Release);
        *slot = token;
    }

    /// The currently attached token, if any.
    pub fn cancel_token(&self) -> Option<CancelToken> {
        if !self.inner.cancel_active.load(Ordering::Acquire) {
            return None;
        }
        self.inner.cancel.lock().clone()
    }

    /// Whether the attached token (if any) has tripped. Engines poll
    /// this at the top of their iteration loops; with no token attached
    /// it is a single atomic load.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.cancel_token().is_some_and(|t| t.is_cancelled())
    }

    /// Serialized dispatch entry for concurrent clients.
    ///
    /// [`ThreadPool::region`] (and the worksharing loops built on it) is a
    /// single-dispatcher protocol: exactly one thread may publish a
    /// generation at a time (the `remaining == 0` debug assertion in
    /// `region` enforces it). Batch trials satisfy that by construction —
    /// the harness owns the pool for the duration of a trial. A resident
    /// query service does not: many serving threads share one
    /// `&ThreadPool`, and each request wants to dispatch a traversal.
    /// `exclusive` is their entry point: it grants one caller dispatch
    /// rights at a time, running `f` with the gate held and releasing it
    /// on return or unwind.
    ///
    /// The gate is **not reentrant** — calling `exclusive` from inside
    /// `f` deadlocks. Keep exactly one `exclusive` frame per request (the
    /// reentrant query adapters over the engines take it; layers above
    /// them must not).
    pub fn exclusive<R>(&self, f: impl FnOnce(&ThreadPool) -> R) -> R {
        let _gate = self.inner.dispatch_gate.lock();
        f(self)
    }

    /// Runs `f(tid)` once on every thread (tids `0..nthreads`), returning
    /// when all invocations complete. This is `#pragma omp parallel`.
    ///
    /// A panic inside `f` on any worker thread is caught at the join
    /// barrier and re-raised on the calling thread (first payload wins); a
    /// panic on the calling thread itself propagates directly, but only
    /// after every worker has finished the region.
    pub fn region<F: Fn(usize) + Sync>(&self, f: F) {
        self.inner.regions.fetch_add(1, Ordering::Relaxed);
        let region_id = check::next_region_id();
        #[cfg(feature = "trace")]
        let rec: Option<Arc<dyn epg_trace::Recorder>> = self.inner.recorder.lock().clone();
        #[cfg(feature = "trace")]
        let wall_start = std::time::Instant::now();
        if self.inner.nthreads == 1 {
            {
                let _scope = check::enter_region(region_id, 0);
                f(0);
            }
            #[cfg(feature = "trace")]
            if let Some(rec) = &rec {
                rec.record(epg_trace::TraceEvent::WorkerSpan {
                    region: region_id as u64,
                    worker: 0,
                    busy_ns: wall_start.elapsed().as_nanos() as u64,
                    idle_ns: 0,
                });
            }
            return;
        }
        let wide: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: we erase the lifetime to park the pointer in shared state.
        // The pointee `f` lives on this stack frame, and this function does
        // not return — by unwind or normal exit, `JoinGuard` enforces both —
        // until `done_gen == gen`, i.e. until every worker has finished
        // calling through the pointer. Workers never retain it across
        // generations (they re-read `job` each wakeup).
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                wide as *const _,
            )
        });
        let gen = {
            let mut st = self.inner.state.lock();
            debug_assert_eq!(st.remaining, 0, "region dispatched while busy");
            st.gen += 1;
            st.remaining = self.inner.nthreads - 1;
            st.job = Some(ptr);
            st.region_id = region_id;
            // A payload from a generation whose dispatcher unwound before
            // collecting it must not leak into this one.
            st.panic = None;
            st.gen
        };
        // Notify after unlocking: workers re-check `st.gen` under the
        // lock, so the wakeup cannot be lost, and woken threads do not
        // stall on the state mutex this thread would still hold.
        self.inner.work_cv.notify_all();
        {
            // Waits for the join barrier even if `f(0)` unwinds: dropping
            // `f` while a worker still holds `ptr` would be use-after-free.
            let _join = JoinGuard { inner: &self.inner, gen };
            let _scope = check::enter_region(region_id, 0);
            #[cfg(feature = "trace")]
            let t0 = std::time::Instant::now();
            f(0);
            #[cfg(feature = "trace")]
            self.inner.busy_ns[0].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        #[cfg(feature = "trace")]
        if let Some(rec) = &rec {
            // The join barrier has passed: every worker stored its busy
            // time before decrementing `remaining` under the state lock.
            let wall = wall_start.elapsed().as_nanos() as u64;
            for (tid, slot) in self.inner.busy_ns.iter().enumerate() {
                let busy = slot.load(Ordering::Relaxed).min(wall);
                rec.record(epg_trace::TraceEvent::WorkerSpan {
                    region: region_id as u64,
                    worker: tid as u32,
                    busy_ns: busy,
                    idle_ns: wall - busy,
                });
            }
        }
        let payload = self.inner.state.lock().panic.take();
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }

    /// Worksharing loop over `0..n` (`#pragma omp parallel for`).
    pub fn parallel_for<F: Fn(usize) + Sync>(&self, n: usize, sched: super::Schedule, f: F) {
        self.parallel_for_ranges(n, sched, |_tid, lo, hi| {
            for i in lo..hi {
                f(i);
            }
        });
    }

    /// Worksharing loop handing out whole index ranges `[lo, hi)`; the body
    /// also receives the executing thread id. Engines use this to keep
    /// per-thread scratch (frontier buffers, bins) without false sharing.
    pub fn parallel_for_ranges<F: Fn(usize, usize, usize) + Sync>(
        &self,
        n: usize,
        sched: super::Schedule,
        f: F,
    ) {
        if n == 0 {
            return;
        }
        let nthreads = self.inner.nthreads;
        let chunks_counter = &self.inner.chunks;
        // Fetched once per loop, not per chunk: the poll inside the hot
        // claim loops is then lock-free (an atomic flag read, plus a
        // clock read while a deadline is armed).
        let token = self.cancel_token();
        let cancelled = move || token.as_ref().is_some_and(|t| t.is_cancelled());
        match sched {
            super::Schedule::Static { chunk } => {
                // OpenMP static: without a chunk, one contiguous block per
                // thread; with one, round-robin blocks of that size.
                let chunk = chunk.unwrap_or(n.div_ceil(nthreads).max(1));
                let nchunks = n.div_ceil(chunk);
                chunks_counter.fetch_add(nchunks as u64, Ordering::Relaxed);
                self.region(|tid| {
                    let mut c = tid;
                    while c < nchunks {
                        if cancelled() {
                            break;
                        }
                        let lo = c * chunk;
                        let hi = (lo + chunk).min(n);
                        f(tid, lo, hi);
                        c += nthreads;
                    }
                });
            }
            super::Schedule::Dynamic { chunk } => {
                let chunk = chunk.max(1);
                let next = AtomicU64::new(0);
                self.region(|tid| loop {
                    if cancelled() {
                        break;
                    }
                    let lo = next.fetch_add(chunk as u64, Ordering::Relaxed) as usize;
                    if lo >= n {
                        break;
                    }
                    chunks_counter.fetch_add(1, Ordering::Relaxed);
                    f(tid, lo, (lo + chunk).min(n));
                });
            }
            super::Schedule::Guided { min_chunk } => {
                let min_chunk = min_chunk.max(1);
                let next = AtomicU64::new(0);
                self.region(|tid| loop {
                    if cancelled() {
                        break;
                    }
                    // Claim ~(remaining / nthreads), shrinking over time.
                    let mut cur = next.load(Ordering::Relaxed);
                    let (lo, hi) = loop {
                        let lo = cur as usize;
                        if lo >= n {
                            return;
                        }
                        let size = ((n - lo) / nthreads).max(min_chunk);
                        let hi = (lo + size).min(n);
                        match next.compare_exchange_weak(
                            cur,
                            hi as u64,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break (lo, hi),
                            Err(actual) => cur = actual,
                        }
                    };
                    chunks_counter.fetch_add(1, Ordering::Relaxed);
                    f(tid, lo, hi);
                });
            }
        }
    }

    /// Snapshot of cumulative dispatch statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            regions: self.inner.regions.load(Ordering::Relaxed),
            chunks: self.inner.chunks.load(Ordering::Relaxed),
            data_rmw: self.inner.data_rmw.load(Ordering::Relaxed),
        }
    }

    /// Reports `n` atomic read-modify-write operations a kernel performed on
    /// shared data inside its regions (e.g. one per `fetch_add` of a
    /// contended scatter cursor). The pool cannot observe user atomics, so
    /// honesty here is part of the kernel contract; it buys the kernel a
    /// pinned, testable claim — see [`PoolStats::data_rmw`].
    pub fn record_data_rmw(&self, n: u64) {
        self.inner.data_rmw.fetch_add(n, Ordering::Relaxed);
    }
}

/// Blocks until the given generation's workers have all checked out. Run
/// from `Drop` so the wait happens on both the normal and unwinding exits
/// of `region`.
struct JoinGuard<'p> {
    inner: &'p Inner,
    gen: u64,
}

impl Drop for JoinGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock();
        while st.done_gen != self.gen {
            self.inner.done_cv.wait(&mut st);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner, tid: usize) {
    let mut seen = 0u64;
    loop {
        let (job, gen, region_id) = {
            let mut st = inner.state.lock();
            while !st.shutdown && st.gen == seen {
                inner.work_cv.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
            seen = st.gen;
            (st.job.expect("generation bumped without a job"), st.gen, st.region_id)
        };
        let caught = {
            let _scope = check::enter_region(region_id, tid);
            #[cfg(feature = "trace")]
            let t0 = std::time::Instant::now();
            // SAFETY: see `region` — the dispatcher keeps the closure alive
            // until we decrement `remaining` below.
            let caught = catch_unwind(AssertUnwindSafe(|| (unsafe { &*job.0 })(tid)));
            #[cfg(feature = "trace")]
            inner.busy_ns[tid].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            caught
        };
        let mut st = inner.state.lock();
        if let Err(payload) = caught {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.remaining -= 1;
        let last_out = st.remaining == 0;
        if last_out {
            st.done_gen = gen;
            st.job = None;
        }
        drop(st);
        if last_out {
            inner.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::Schedule;
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn region_runs_every_thread_exactly_once() {
        for nthreads in [1, 2, 4, 7] {
            let pool = ThreadPool::new(nthreads);
            let seen: Vec<AtomicUsize> = (0..nthreads).map(|_| AtomicUsize::new(0)).collect();
            pool.region(|tid| {
                seen[tid].fetch_add(1, Ordering::Relaxed);
            });
            for (tid, s) in seen.iter().enumerate() {
                assert_eq!(s.load(Ordering::Relaxed), 1, "tid {tid} of {nthreads}");
            }
        }
    }

    #[test]
    fn regions_are_reusable() {
        let pool = ThreadPool::new(3);
        let count = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.region(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 300);
    }

    fn check_cover(n: usize, sched: Schedule, nthreads: usize) {
        let pool = ThreadPool::new(nthreads);
        let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, sched, |i| {
            marks[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, m) in marks.iter().enumerate() {
            assert_eq!(m.load(Ordering::Relaxed), 1, "index {i} under {sched:?}");
        }
    }

    #[test]
    fn schedules_cover_every_index_exactly_once() {
        for nthreads in [1, 2, 4] {
            for n in [0, 1, 5, 64, 1000, 1001] {
                check_cover(n, Schedule::Static { chunk: None }, nthreads);
                check_cover(n, Schedule::Static { chunk: Some(7) }, nthreads);
                check_cover(n, Schedule::Dynamic { chunk: 16 }, nthreads);
                check_cover(n, Schedule::Guided { min_chunk: 4 }, nthreads);
            }
        }
    }

    #[test]
    fn ranges_partition_the_domain() {
        let pool = ThreadPool::new(4);
        let total = AtomicUsize::new(0);
        pool.parallel_for_ranges(12345, Schedule::Guided { min_chunk: 8 }, |_tid, lo, hi| {
            assert!(lo < hi && hi <= 12345);
            total.fetch_add(hi - lo, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 12345);
    }

    #[test]
    fn borrowed_state_is_visible_and_mutations_join() {
        // The region's join must publish worker writes (happens-before).
        let pool = ThreadPool::new(4);
        let data: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(64, Schedule::Static { chunk: None }, |i| {
            data[i].store(i * 2, Ordering::Relaxed);
        });
        for (i, d) in data.iter().enumerate() {
            assert_eq!(d.load(Ordering::Relaxed), i * 2);
        }
    }

    #[test]
    fn stats_count_regions_and_chunks() {
        let pool = ThreadPool::new(2);
        pool.parallel_for(100, Schedule::Dynamic { chunk: 10 }, |_| {});
        let s = pool.stats();
        assert_eq!(s.regions, 1);
        assert_eq!(s.chunks, 10);
        assert_eq!(s.data_rmw, 0);
    }

    #[test]
    fn data_rmw_reports_accumulate() {
        let pool = ThreadPool::new(2);
        assert_eq!(pool.stats().data_rmw, 0);
        pool.record_data_rmw(7);
        pool.record_data_rmw(3);
        assert_eq!(pool.stats().data_rmw, 10);
    }

    #[test]
    fn empty_loop_dispatches_nothing() {
        let pool = ThreadPool::new(2);
        pool.parallel_for(0, Schedule::Dynamic { chunk: 1 }, |_| panic!("no work"));
        assert_eq!(pool.stats().regions, 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn worker_ids_are_exposed_inside_regions() {
        let pool = ThreadPool::new(4);
        assert_eq!(crate::current_worker_id(), None);
        let ids: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(usize::MAX)).collect();
        pool.region(|tid| {
            ids[tid].store(crate::current_worker_id().expect("inside a region"), Ordering::Relaxed);
        });
        for (tid, id) in ids.iter().enumerate() {
            assert_eq!(id.load(Ordering::Relaxed), tid, "worker id != region tid");
        }
        assert_eq!(crate::current_worker_id(), None, "worker id leaked past the region");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn worker_spans_cover_every_worker_once_per_region() {
        use epg_trace::TraceEvent;
        for nthreads in [1, 3] {
            let pool = ThreadPool::new(nthreads);
            let rec = Arc::new(epg_trace::RunRecorder::new());
            pool.set_recorder(Some(rec.clone()));
            pool.parallel_for(64, Schedule::Static { chunk: None }, |_| {});
            pool.set_recorder(None);
            // Spans after detach must not be recorded.
            pool.parallel_for(64, Schedule::Static { chunk: None }, |_| {});
            let spans: Vec<_> = rec
                .events()
                .into_iter()
                .filter_map(|ev| match ev {
                    TraceEvent::WorkerSpan { region, worker, busy_ns, idle_ns } => {
                        Some((region, worker, busy_ns, idle_ns))
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(spans.len(), nthreads, "one span per worker ({nthreads} threads)");
            let mut workers: Vec<u32> = spans.iter().map(|s| s.1).collect();
            workers.sort_unstable();
            assert_eq!(workers, (0..nthreads as u32).collect::<Vec<_>>());
            assert!(spans.iter().all(|s| s.0 == spans[0].0), "same region id");
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.region(|tid| {
                if tid == 2 {
                    panic!("boom from worker {tid}");
                }
            });
        }));
        let payload = result.expect_err("worker panic must reach the caller");
        let msg = payload.downcast::<String>().expect("panic! with args carries a String");
        assert!(msg.contains("boom from worker 2"), "unexpected payload: {msg}");
        // The pool must stay usable after a propagated panic.
        let count = AtomicUsize::new(0);
        pool.region(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    fn cancel_schedules() -> [Schedule; 4] {
        [
            Schedule::Static { chunk: None },
            Schedule::Static { chunk: Some(7) },
            Schedule::Dynamic { chunk: 16 },
            Schedule::Guided { min_chunk: 4 },
        ]
    }

    #[test]
    fn cancelled_loop_covers_or_abandons_each_index_exactly_once() {
        // Satellite requirement: under every schedule, a loop whose token
        // trips midway must never run an index twice — each index is
        // covered once or abandoned, and the loop still returns cleanly.
        const N: usize = 10_000;
        for sched in cancel_schedules() {
            for nthreads in [1, 4] {
                let pool = ThreadPool::new(nthreads);
                let token = crate::CancelToken::new();
                pool.set_cancel_token(Some(token.clone()));
                let marks: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
                let done = AtomicUsize::new(0);
                pool.parallel_for(N, sched, |i| {
                    marks[i].fetch_add(1, Ordering::Relaxed);
                    // Trip the token from inside the loop body once a few
                    // hundred indices have run — deterministic enough to
                    // leave work abandoned on every schedule.
                    if done.fetch_add(1, Ordering::Relaxed) == 300 {
                        token.cancel();
                    }
                });
                pool.set_cancel_token(None);
                let covered: usize = marks.iter().map(|m| m.load(Ordering::Relaxed)).sum();
                for (i, m) in marks.iter().enumerate() {
                    assert!(
                        m.load(Ordering::Relaxed) <= 1,
                        "index {i} ran twice under {sched:?} ({nthreads} threads)"
                    );
                }
                // Whether abandonment is *guaranteed* depends on chunk
                // granularity: Static{None} hands every chunk out up
                // front, and Guided on one thread claims the whole range
                // in its first chunk — claimed chunks always finish.
                let expect_abandon = match sched {
                    Schedule::Static { chunk: Some(_) } | Schedule::Dynamic { .. } => true,
                    Schedule::Guided { .. } => nthreads > 1,
                    Schedule::Static { chunk: None } => false,
                };
                if expect_abandon {
                    assert!(
                        covered < N,
                        "cancellation abandoned nothing under {sched:?} ({nthreads} threads)"
                    );
                }
                // Detached token: the pool must run full loops again.
                check_cover(257, sched, nthreads);
            }
        }
    }

    #[test]
    fn cancelled_loop_after_unwind_never_doubles_execution() {
        // A body that panics while the token is tripped: the unwind is
        // caught at the join barrier, and no index may have run twice.
        const N: usize = 4_096;
        for sched in cancel_schedules() {
            let pool = ThreadPool::new(4);
            let token = crate::CancelToken::new();
            pool.set_cancel_token(Some(token.clone()));
            let marks: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.parallel_for(N, sched, |i| {
                    marks[i].fetch_add(1, Ordering::Relaxed);
                    if i == 100 {
                        token.cancel();
                        panic!("injected unwind at {i}");
                    }
                });
            }));
            pool.set_cancel_token(None);
            assert!(result.is_err(), "panic must propagate under {sched:?}");
            for (i, m) in marks.iter().enumerate() {
                assert!(
                    m.load(Ordering::Relaxed) <= 1,
                    "index {i} ran twice after unwind under {sched:?}"
                );
            }
            // The pool stays usable for the next trial.
            check_cover(100, sched, 4);
        }
    }

    #[test]
    fn deadline_reaps_a_hot_loop() {
        // A long loop under a short deadline is abandoned well before it
        // would complete, and the pool reports the cancellation.
        let pool = ThreadPool::new(2);
        let token = crate::CancelToken::with_deadline(std::time::Duration::from_millis(5));
        pool.set_cancel_token(Some(token));
        let ran = AtomicUsize::new(0);
        pool.parallel_for(1_000_000, Schedule::Dynamic { chunk: 8 }, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_micros(50));
        });
        assert!(pool.is_cancelled(), "deadline should have tripped");
        assert!(ran.load(Ordering::Relaxed) < 1_000_000, "deadline abandoned nothing");
        pool.set_cancel_token(None);
        assert!(!pool.is_cancelled(), "detaching the token clears the pool's view");
    }

    #[test]
    fn exclusive_serializes_concurrent_dispatchers() {
        // Four client threads hammer the same pool through `exclusive`;
        // the gate admits one dispatcher at a time, so every loop runs to
        // completion and the total is exact.
        let pool = ThreadPool::new(2);
        let sum = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        pool.exclusive(|p| {
                            p.parallel_for(100, Schedule::Static { chunk: None }, |_| {
                                sum.fetch_add(1, Ordering::Relaxed);
                            });
                        });
                    }
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4 * 50 * 100);
    }

    #[test]
    fn exclusive_gate_survives_a_panicking_client() {
        let pool = ThreadPool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.exclusive(|_| panic!("client bail"));
        }));
        assert!(r.is_err());
        // The gate must be free again for the next caller.
        pool.exclusive(|p| p.parallel_for(10, Schedule::Static { chunk: None }, |_| {}));
    }

    #[test]
    fn caller_panic_still_joins_workers() {
        // Thread 0 unwinding out of `f` must not free the closure while
        // workers are still calling through the job pointer; the join
        // guard holds the frame until they check out.
        let pool = ThreadPool::new(4);
        let entered = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.region(|tid| {
                entered.fetch_add(1, Ordering::Relaxed);
                if tid == 0 {
                    panic!("caller bail");
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            });
        }));
        assert!(result.is_err());
        // All four entered and, because region joined before unwinding,
        // their count is already visible here.
        assert_eq!(entered.load(Ordering::Relaxed), 4);
        pool.region(|_| {});
    }
}
