//! Disjoint-index shared writer.
//!
//! Vertex-parallel kernels write `out[v]` for every `v` exactly once per
//! parallel region — a data-race-free pattern the borrow checker cannot see
//! through a `Fn` closure shared across threads. `DisjointWriter` packages
//! the one `unsafe` write behind a documented contract instead of scattering
//! raw-pointer casts through every engine.

/// Shared mutable access to a slice for loops that write disjoint indices.
pub struct DisjointWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: writes are only allowed through `write`, whose contract requires
// each index be written by at most one thread per region; `T: Send` makes
// moving values across threads sound.
unsafe impl<T: Send> Sync for DisjointWriter<'_, T> {}

impl<'a, T> DisjointWriter<'a, T> {
    /// Wraps a slice. The borrow is held for `'a`, so the underlying data
    /// cannot be touched elsewhere while the writer lives.
    pub fn new(slice: &'a mut [T]) -> DisjointWriter<'a, T> {
        DisjointWriter { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: std::marker::PhantomData }
    }

    /// Writes `value` at `i`.
    ///
    /// # Safety
    /// Within one parallel region, each index must be written by at most
    /// one thread, and no concurrent reads of `i` may occur.
    /// Bounds are checked.
    pub unsafe fn write(&self, i: usize, value: T) {
        assert!(i < self.len, "DisjointWriter index {i} out of bounds ({})", self.len);
        unsafe {
            // Drop the previous value so writes of owning types (Vec,
            // String) do not leak what they replace.
            self.ptr.add(i).drop_in_place();
            self.ptr.add(i).write(value)
        };
    }

    /// Mutable access to the element at `i` for read-modify-write patterns.
    ///
    /// # Safety
    /// Same contract as [`DisjointWriter::write`]: at most one thread may
    /// touch index `i` within a region. Bounds are checked.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_raw(&self, i: usize) -> &mut T {
        assert!(i < self.len, "DisjointWriter index {i} out of bounds ({})", self.len);
        unsafe { &mut *self.ptr.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Schedule, ThreadPool};

    #[test]
    fn disjoint_parallel_writes_land() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 1000];
        {
            let w = DisjointWriter::new(&mut data);
            pool.parallel_for(1000, Schedule::Dynamic { chunk: 7 }, |i| unsafe {
                w.write(i, i * 3);
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_write_panics() {
        let mut data = vec![0u8; 4];
        let w = DisjointWriter::new(&mut data);
        unsafe { w.write(4, 1) };
    }
}
