//! Disjoint-index shared writer.
//!
//! Vertex-parallel kernels write `out[v]` for every `v` exactly once per
//! parallel region — a data-race-free pattern the borrow checker cannot see
//! through a `Fn` closure shared across threads. `DisjointWriter` packages
//! the one `unsafe` write behind a documented contract instead of scattering
//! raw-pointer casts through every engine.
//!
//! With the `check-disjoint` feature the contract is *checked*, not just
//! documented: the writer keeps a shadow table with one atomic tag per
//! element recording which worker last wrote it and in which parallel
//! region (see [`crate::check`]). A second worker writing the same index
//! within the same region trips a panic naming both workers. Detection is
//! deterministic — the second `swap` always observes the first worker's tag
//! — so an overlapping kernel fails every run, not just under unlucky
//! interleavings.

#[cfg(feature = "check-disjoint")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared mutable access to a slice for loops that write disjoint indices.
pub struct DisjointWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    /// One tag per element: `(region id << 32) | (worker id + 1)`, 0 when
    /// never written. Updated with a swap on every write so the second of
    /// two same-region writers always sees the first.
    #[cfg(feature = "check-disjoint")]
    shadow: Vec<AtomicU64>,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: writes are only allowed through `write`/`write_unchecked`/
// `get_raw`, whose contract requires each index be written by at most one
// thread per region; `T: Send` makes moving values across threads sound.
unsafe impl<T: Send> Sync for DisjointWriter<'_, T> {}

impl<'a, T> DisjointWriter<'a, T> {
    /// Wraps a slice. The borrow is held for `'a`, so the underlying data
    /// cannot be touched elsewhere while the writer lives.
    pub fn new(slice: &'a mut [T]) -> DisjointWriter<'a, T> {
        DisjointWriter {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            #[cfg(feature = "check-disjoint")]
            shadow: (0..slice.len()).map(|_| AtomicU64::new(0)).collect(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Writes `value` at `i`.
    ///
    /// # Safety
    /// Within one parallel region, each index must be written by at most
    /// one thread, and no concurrent reads of `i` may occur.
    /// Bounds are checked.
    pub unsafe fn write(&self, i: usize, value: T) {
        assert!(i < self.len, "DisjointWriter index {i} out of bounds ({})", self.len);
        self.record(i);
        // SAFETY: `i < len` was just asserted and the caller upholds the
        // one-writer-per-index contract. The previous value is dropped so
        // writes of owning types (Vec, String) do not leak what they replace.
        unsafe {
            self.ptr.add(i).drop_in_place();
            self.ptr.add(i).write(value)
        };
    }

    /// Writes `value` at `i` without the bounds assertion — the fast path
    /// for kernels whose loop bounds already guarantee `i < len`.
    ///
    /// # Safety
    /// Same disjointness contract as [`DisjointWriter::write`], and
    /// additionally `i` must be in bounds (checked only in debug builds).
    pub unsafe fn write_unchecked(&self, i: usize, value: T) {
        debug_assert!(i < self.len, "DisjointWriter index {i} out of bounds ({})", self.len);
        self.record(i);
        // SAFETY: the caller guarantees `i < len` and the one-writer-per-
        // index contract; drop the old value first to avoid leaks.
        unsafe {
            self.ptr.add(i).drop_in_place();
            self.ptr.add(i).write(value)
        };
    }

    /// Mutable access to the element at `i` for read-modify-write patterns.
    ///
    /// # Safety
    /// Same contract as [`DisjointWriter::write`]: at most one thread may
    /// touch index `i` within a region. Bounds are checked.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_raw(&self, i: usize) -> &mut T {
        assert!(i < self.len, "DisjointWriter index {i} out of bounds ({})", self.len);
        self.record(i);
        // SAFETY: `i < len` was just asserted; exclusivity of the returned
        // reference is the caller's contract (one thread per index).
        unsafe { &mut *self.ptr.add(i) }
    }

    /// Mutable access to the sub-slice `[lo, hi)` for loops whose workers
    /// each own a contiguous, non-overlapping range (per-vertex adjacency
    /// sorts, chunked stitch copies, fixed-stride codecs).
    ///
    /// # Safety
    /// Within one parallel region the ranges handed out must be pairwise
    /// disjoint, and no other access to `[lo, hi)` may occur while the
    /// returned slice is live. Bounds (`lo <= hi <= len`) are checked.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range_mut(&self, lo: usize, hi: usize) -> &mut [T] {
        assert!(
            lo <= hi && hi <= self.len,
            "DisjointWriter range {lo}..{hi} out of bounds ({})",
            self.len
        );
        for i in lo..hi {
            self.record(i);
        }
        // SAFETY: bounds were just asserted; exclusivity of the returned
        // slice is the caller's contract (disjoint ranges per region).
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) }
    }

    /// Records a write of index `i` in the shadow table and panics if a
    /// different worker already wrote it within the current parallel region.
    /// Outside any region (`region == 0`) the writer is reachable from one
    /// thread only, so nothing is recorded.
    #[cfg(feature = "check-disjoint")]
    fn record(&self, i: usize) {
        let region = crate::check::current_region();
        if region == 0 {
            return;
        }
        let me = crate::check::current_worker_id().expect("worker id set inside a region") as u64;
        debug_assert!(me < u32::MAX as u64, "worker id overflows the shadow tag");
        let tag = ((region as u64) << 32) | (me + 1);
        // AcqRel: a conflicting tag must carry the other worker's id over
        // reliably, and our own tag must be visible to a later conflicter.
        let prev = self.shadow[i].swap(tag, Ordering::AcqRel);
        if prev >> 32 == region as u64 && prev & 0xFFFF_FFFF != me + 1 {
            let other = (prev & 0xFFFF_FFFF) - 1;
            let (a, b) = if other < me { (other, me) } else { (me, other) };
            panic!(
                "check-disjoint: overlapping writes to index {i}: workers {a} and {b} both \
                 wrote it within the same parallel region (DisjointWriter requires at most \
                 one writer per index per region)"
            );
        }
    }

    #[cfg(not(feature = "check-disjoint"))]
    #[inline(always)]
    fn record(&self, _i: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Schedule, ThreadPool};

    #[test]
    fn disjoint_parallel_writes_land() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 1000];
        {
            let w = DisjointWriter::new(&mut data);
            // SAFETY: parallel_for hands each index i to exactly one worker.
            pool.parallel_for(1000, Schedule::Dynamic { chunk: 7 }, |i| unsafe {
                w.write(i, i * 3);
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    fn unchecked_parallel_writes_land() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 1000];
        {
            let w = DisjointWriter::new(&mut data);
            // SAFETY: each index i is visited once and i < 1000 == len.
            pool.parallel_for(1000, Schedule::Static { chunk: Some(11) }, |i| unsafe {
                w.write_unchecked(i, i + 1);
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn get_raw_supports_read_modify_write() {
        let pool = ThreadPool::new(2);
        let mut data: Vec<Vec<usize>> = vec![Vec::new(); 64];
        {
            let w = DisjointWriter::new(&mut data);
            // SAFETY: parallel_for hands each index i to exactly one worker.
            pool.parallel_for(64, Schedule::Static { chunk: None }, |i| unsafe {
                w.get_raw(i).push(i);
            });
        }
        assert!(data.iter().enumerate().all(|(i, v)| v == &[i]));
    }

    #[test]
    fn range_mut_disjoint_ranges_land() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 997];
        {
            let w = DisjointWriter::new(&mut data);
            pool.parallel_for_ranges(997, Schedule::Guided { min_chunk: 16 }, |_t, lo, hi| {
                // SAFETY: parallel_for_ranges hands out pairwise-disjoint ranges.
                let s = unsafe { w.range_mut(lo, hi) };
                for (k, slot) in s.iter_mut().enumerate() {
                    *slot = (lo + k) * 2;
                }
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn range_mut_oob_panics() {
        let mut data = vec![0u8; 4];
        let w = DisjointWriter::new(&mut data);
        // SAFETY: intentionally out of bounds — the assert must fire.
        unsafe { w.range_mut(2, 5) };
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_write_panics() {
        let mut data = vec![0u8; 4];
        let w = DisjointWriter::new(&mut data);
        // SAFETY: intentionally out of bounds — the assert must fire.
        unsafe { w.write(4, 1) };
    }
}
