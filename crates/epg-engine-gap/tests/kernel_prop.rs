//! Kernel-equality property tests for the raw-speed SSSP tier.
//!
//! On arbitrary graphs — random uniform graphs plus the adversarial
//! families built to break naive shortest-path solvers — the three
//! label-setting solvers (binary-heap Dijkstra oracle, radix-heap
//! Dijkstra, BMSSP) must produce *bit-identical* distance arrays: they
//! all compute `min` over the same fold-left f32 path sums, so there is
//! no tolerance to hide behind. Δ-stepping may relax edges in a
//! different order, so it gets a small absolute tolerance instead. All
//! kernels are exercised across thread counts to catch scheduling
//! sensitivity.

use epg_engine_api::{AlgorithmResult, SsspKernel};
use epg_engine_gap::sssp::run_kernel;
use epg_engine_gap::GapConfig;
use epg_graph::{oracle, Csr, EdgeList, VertexId};
use epg_parallel::ThreadPool;
use proptest::prelude::*;

/// Arbitrary weighted graph: random uniform or one of the adversarial
/// families at small sizes (zero weights, near-ties, deep lines — the
/// shapes where priority-queue bugs live).
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    prop_oneof![
        (2usize..60, 1usize..300, 0u64..1000)
            .prop_map(|(n, m, s)| epg_generator::uniform::generate(n, m, true, s).symmetrized()),
        (1usize..14, 0u64..100).prop_map(|(l, s)| epg_generator::adversarial::spfa_killer(l, s)),
        (1usize..12, 1usize..12)
            .prop_map(|(c, f)| epg_generator::adversarial::wrong_dijkstra_killer(c, f)),
        (2usize..9, 0u64..100).prop_map(|(w, s)| epg_generator::adversarial::grid_swirl(w, s)),
        (2usize..50, 0usize..8, 0u64..100)
            .prop_map(|(n, x, s)| epg_generator::adversarial::almost_line(n, x, s)),
        (1usize..16).prop_map(epg_generator::adversarial::max_dense_zero),
    ]
}

fn distances(kernel: SsspKernel, g: &Csr, root: VertexId, pool: &ThreadPool) -> Vec<f32> {
    let delta = GapConfig::default().delta;
    let out = run_kernel(kernel, g, root, pool, delta);
    let AlgorithmResult::Distances(d) = out.result else {
        panic!("{}: wrong result kind", kernel.name())
    };
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn label_setting_kernels_are_bit_identical(
        el in arb_graph(),
        threads in (0usize..4).prop_map(|i| [1usize, 2, 4, 8][i]),
        root_pick in 0u32..1000,
    ) {
        let g = Csr::from_edge_list(&el);
        prop_assert!(g.num_vertices() > 0);
        let root = root_pick % g.num_vertices() as u32;
        let pool = ThreadPool::new(threads);
        let want = oracle::dijkstra(&g, root);
        for kernel in [SsspKernel::RadixHeap, SsspKernel::Bmssp] {
            let d = distances(kernel, &g, root, &pool);
            prop_assert_eq!(d.len(), want.len());
            for v in 0..want.len() {
                prop_assert_eq!(
                    d[v].to_bits(), want[v].to_bits(),
                    "{} t={} v{}: {} vs binary-heap {}",
                    kernel.name(), threads, v, d[v], want[v]
                );
            }
        }
    }

    #[test]
    fn delta_stepping_matches_within_tolerance(
        el in arb_graph(),
        threads in (0usize..4).prop_map(|i| [1usize, 2, 4, 8][i]),
        delta in (0usize..4).prop_map(|i| [0.05f32, 0.5, 2.0, 1e6][i]),
        root_pick in 0u32..1000,
    ) {
        let g = Csr::from_edge_list(&el);
        prop_assert!(g.num_vertices() > 0);
        let root = root_pick % g.num_vertices() as u32;
        let pool = ThreadPool::new(threads);
        let want = oracle::dijkstra(&g, root);
        let out = run_kernel(SsspKernel::DeltaStepping, &g, root, &pool, delta);
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        for v in 0..want.len() {
            if want[v].is_infinite() {
                prop_assert!(d[v].is_infinite(), "t={} v{} should be unreachable", threads, v);
            } else {
                prop_assert!(
                    (d[v] - want[v]).abs() < 1e-3,
                    "t={} delta={} v{}: {} vs {}", threads, delta, v, d[v], want[v]
                );
            }
        }
    }
}
