//! Reentrant query adapter over a constructed [`GapEngine`].
//!
//! [`GapEngine::into_query`] freezes the engine's CSR pair and config
//! into an immutable [`GapQuery`] that implements
//! [`epg_engine_api::QueryEngine`]: point queries through `&self`, safe
//! to call from many serving threads at once. Concurrency is handled by
//! the substrate, not here — every kernel dispatch goes through the
//! pool's serialized [`ThreadPool::exclusive`] gate, so exactly one
//! traversal runs at a time while any number of clients may be blocked
//! at the gate. Per-request SLO budgets ride in on
//! [`RunParams::cancel`]: the adapter attaches the token to the pool
//! for the duration of the run and restores the previous token even if
//! the kernel unwinds.

use crate::{bfs, pr, sssp, GapConfig, GapEngine};
use epg_engine_api::{Algorithm, Engine, EngineInfo, QueryEngine, RunOutput, RunParams};
use epg_graph::{Csr, VertexId};
use epg_parallel::{CancelToken, ThreadPool};

/// An immutable, shareable GAP engine answering concurrent point queries.
pub struct GapQuery {
    config: GapConfig,
    csr: Csr,
    csr_t: Csr,
}

impl GapEngine {
    /// Converts a loaded + constructed engine into its reentrant query
    /// form, consuming the exclusive `&mut self` protocol for good.
    ///
    /// Panics if `construct` has not run.
    pub fn into_query(mut self) -> GapQuery {
        let csr = self.csr.take().expect("graph not constructed; call construct()");
        let csr_t = self.csr_t.take().expect("graph not constructed; call construct()");
        GapQuery { config: self.config, csr, csr_t }
    }
}

impl GapQuery {
    /// The resident out-direction CSR (read-only).
    pub fn csr(&self) -> &Csr {
        &self.csr
    }
}

/// Restores the pool's previous cancel token on drop, so a panicking
/// kernel cannot leave a dead request's budget attached.
struct TokenGuard<'p> {
    pool: &'p ThreadPool,
    prev: Option<CancelToken>,
    armed: bool,
}

impl Drop for TokenGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.pool.set_cancel_token(self.prev.take());
        }
    }
}

impl QueryEngine for GapQuery {
    fn info(&self) -> EngineInfo {
        // Identical to the batch engine's inventory row.
        GapEngine::new().info()
    }

    fn supports(&self, algo: Algorithm) -> bool {
        // The point-query surface: the core trio. The §V extensions
        // (BC/TC) are whole-graph statistics, not per-vertex point
        // lookups, and stay on the batch protocol.
        matches!(algo, Algorithm::Bfs | Algorithm::Sssp | Algorithm::PageRank)
    }

    fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    fn out_degree(&self, v: VertexId) -> usize {
        self.csr.out_degree(v)
    }

    fn query(&self, algo: Algorithm, params: &RunParams<'_>) -> RunOutput {
        assert!(self.supports(algo), "GAP query surface does not implement {algo:?}");
        params.pool.exclusive(|pool| {
            let guard = TokenGuard {
                pool,
                prev: if params.cancel.is_some() { pool.cancel_token() } else { None },
                armed: params.cancel.is_some(),
            };
            if let Some(token) = &params.cancel {
                pool.set_cancel_token(Some(token.clone()));
            }
            let out = match algo {
                Algorithm::Bfs => {
                    let root = params.root.expect("BFS needs a root");
                    bfs::direction_optimizing_bfs(
                        &self.csr,
                        &self.csr_t,
                        root,
                        pool,
                        &self.config,
                        params.recorder,
                    )
                }
                Algorithm::Sssp => {
                    let root = params.root.expect("SSSP needs a root");
                    let delta = if self.csr.is_weighted() { self.config.delta } else { 1.0 };
                    sssp::run_kernel(self.config.sssp_kernel, &self.csr, root, pool, delta)
                }
                Algorithm::PageRank => pr::pagerank(&self.csr, &self.csr_t, params),
                _ => unreachable!(),
            };
            drop(guard);
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_engine_api::AlgorithmResult;
    use epg_graph::{oracle, EdgeList};
    use std::sync::Arc;

    fn kron(scale: u32, weighted: bool) -> EdgeList {
        epg_generator::kronecker::generate(
            &epg_generator::kronecker::KroneckerConfig {
                scale,
                edge_factor: 8,
                weighted,
                ..Default::default()
            },
            42,
        )
        .symmetrized()
    }

    fn query_on(el: &EdgeList, pool: &ThreadPool) -> GapQuery {
        let mut e = GapEngine::new();
        e.load_edge_list(el);
        e.construct(pool);
        e.into_query()
    }

    #[test]
    #[should_panic(expected = "not constructed")]
    fn into_query_requires_construction() {
        let _ = GapEngine::new().into_query();
    }

    #[test]
    fn query_matches_batch_run() {
        let el = kron(8, true);
        let pool = ThreadPool::new(2);
        let mut e = GapEngine::new();
        e.load_edge_list(&el);
        e.construct(&pool);
        let roots = epg_graph::degree::sample_roots(&el, 2, 7);
        let batch: Vec<RunOutput> = roots
            .iter()
            .map(|&r| e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(r))))
            .collect();
        let q = e.into_query();
        for (i, &r) in roots.iter().enumerate() {
            let out = q.query(Algorithm::Sssp, &RunParams::new(&pool, Some(r)));
            assert_eq!(out.result, batch[i].result, "root {r}");
        }
    }

    #[test]
    fn concurrent_queries_match_oracle() {
        // Many client threads fire BFS point queries at one shared
        // GapQuery; every returned level array must equal the sequential
        // oracle's. This is the reentrancy contract end to end: shared
        // `&self`, serialized dispatch, no cross-request bleed.
        let el = kron(8, false);
        let pool = ThreadPool::new(2);
        let q = Arc::new(query_on(&el, &pool));
        let g = Csr::from_edge_list(&el);
        let roots = epg_graph::degree::sample_roots(&el, 4, 11);
        std::thread::scope(|s| {
            for &root in &roots {
                let q = Arc::clone(&q);
                let g = &g;
                let pool = &pool;
                s.spawn(move || {
                    for _ in 0..3 {
                        let out = q.query(Algorithm::Bfs, &RunParams::new(pool, Some(root)));
                        let AlgorithmResult::BfsTree { level, .. } = out.result else { panic!() };
                        assert_eq!(level, oracle::bfs(g, root).level, "root {root}");
                    }
                });
            }
        });
    }

    #[test]
    fn expired_budget_reports_cancelled() {
        let el = kron(8, false);
        let pool = ThreadPool::new(2);
        let q = query_on(&el, &pool);
        let root = epg_graph::degree::sample_roots(&el, 1, 3)[0];
        let mut params = RunParams::new(&pool, Some(root));
        let token = CancelToken::new();
        token.cancel(); // already expired before dispatch
        params.cancel = Some(token);
        let out = q.query(Algorithm::Bfs, &params);
        assert!(out.cancelled, "pre-tripped budget must surface as a cancelled run");
        // The guard must have detached the request token again.
        assert!(!pool.is_cancelled(), "request token leaked into the pool");
        // And the engine still answers the next (unbudgeted) query.
        let ok = q.query(Algorithm::Bfs, &RunParams::new(&pool, Some(root)));
        assert!(!ok.cancelled);
    }
}
