//! GAP's frontier data structures: the sliding queue and bitmap.

use epg_graph::VertexId;
use std::sync::atomic::{AtomicU64, Ordering};

/// A concurrent bitmap over vertex ids, as used for bottom-up BFS frontiers.
pub struct Bitmap {
    words: Vec<AtomicU64>,
    len: usize,
}

impl Bitmap {
    /// Creates an all-zero bitmap covering `len` bits.
    pub fn new(len: usize) -> Bitmap {
        Bitmap { words: (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(), len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` (concurrent-safe).
    #[inline]
    pub fn set(&self, i: usize) {
        self.words[i / 64].fetch_or(1 << (i % 64), Ordering::Relaxed);
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64].load(Ordering::Relaxed) >> (i % 64)) & 1 == 1
    }

    /// Clears all bits (not concurrent-safe).
    pub fn clear(&mut self) {
        for w in &self.words {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.load(Ordering::Relaxed).count_ones() as usize).sum()
    }

    /// Iterates the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut bits = w.load(Ordering::Relaxed);
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// GAP's sliding queue: one backing vector, with a window `[head, tail)`
/// forming the current frontier; newly discovered vertices append past
/// `tail` and `slide_window` advances to make them the next frontier.
#[derive(Default)]
pub struct SlidingQueue {
    items: Vec<VertexId>,
    head: usize,
    tail: usize,
}

impl SlidingQueue {
    /// Creates an empty queue.
    pub fn new() -> SlidingQueue {
        SlidingQueue::default()
    }

    /// Appends a vertex beyond the current window.
    pub fn push(&mut self, v: VertexId) {
        self.items.push(v);
    }

    /// Appends many vertices beyond the current window.
    pub fn push_all(&mut self, vs: &[VertexId]) {
        self.items.extend_from_slice(vs);
    }

    /// The current frontier.
    pub fn window(&self) -> &[VertexId] {
        &self.items[self.head..self.tail]
    }

    /// Advances the window over everything appended since the last slide.
    pub fn slide_window(&mut self) {
        self.head = self.tail;
        self.tail = self.items.len();
    }

    /// Size of the current frontier.
    pub fn window_len(&self) -> usize {
        self.tail - self.head
    }

    /// True when the current frontier is empty.
    pub fn window_is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Drops all contents and resets the window.
    pub fn reset(&mut self) {
        self.items.clear();
        self.head = 0;
        self.tail = 0;
    }

    /// Replaces the *next* window's pending contents with `vs` (used when
    /// converting a bitmap frontier back to a queue).
    pub fn refill_pending(&mut self, vs: impl IntoIterator<Item = VertexId>) {
        self.items.truncate(self.tail);
        self.items.extend(vs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_get_count() {
        let bm = Bitmap::new(130);
        assert_eq!(bm.len(), 130);
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1) && !bm.get(128));
        assert_eq!(bm.count_ones(), 3);
        let ones: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(ones, vec![0, 64, 129]);
    }

    #[test]
    fn bitmap_clear() {
        let mut bm = Bitmap::new(70);
        bm.set(3);
        bm.set(69);
        bm.clear();
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn bitmap_concurrent_sets() {
        let bm = Bitmap::new(1024);
        std::thread::scope(|s| {
            for t in 0..4 {
                let bm = &bm;
                s.spawn(move || {
                    for i in (t..1024).step_by(4) {
                        bm.set(i);
                    }
                });
            }
        });
        assert_eq!(bm.count_ones(), 1024);
    }

    #[test]
    fn sliding_queue_windows() {
        let mut q = SlidingQueue::new();
        q.push(5);
        q.push(7);
        assert!(q.window_is_empty());
        q.slide_window();
        assert_eq!(q.window(), &[5, 7]);
        q.push_all(&[9, 11, 13]);
        assert_eq!(q.window(), &[5, 7]); // unchanged until slid
        q.slide_window();
        assert_eq!(q.window(), &[9, 11, 13]);
        q.slide_window();
        assert!(q.window_is_empty());
    }

    #[test]
    fn refill_pending_replaces_unslid_items() {
        let mut q = SlidingQueue::new();
        q.push(1);
        q.slide_window();
        q.push(2); // pending
        q.refill_pending([8, 9]);
        q.slide_window();
        assert_eq!(q.window(), &[8, 9]);
    }
}
