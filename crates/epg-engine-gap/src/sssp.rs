//! Δ-stepping SSSP (Meyer & Sanders), GAP-style.
//!
//! Distances advance bucket by bucket (bucket width Δ). Within a bucket,
//! *light* edges (weight ≤ Δ) are relaxed repeatedly until the bucket
//! settles; *heavy* edges are relaxed once afterwards. Relaxation uses an
//! atomic fetch-min on the distance array, exactly as GAP's OpenMP code
//! does. Δ is a tunable (§V); the `ablation_delta` bench sweeps it.

use epg_engine_api::{AlgorithmResult, Counters, RunOutput, SsspKernel, Trace};
use epg_graph::{Csr, VertexId, Weight, INF_DIST};
use epg_parallel::{AtomicF32, Schedule, ThreadPool};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Dispatches one SSSP run to the selected kernel of the raw-speed tier.
/// `delta` only applies to Δ-stepping; the priority-queue kernels ignore
/// it (they have no bucket width).
pub fn run_kernel(
    kernel: SsspKernel,
    g: &Csr,
    root: VertexId,
    pool: &ThreadPool,
    delta: f32,
) -> RunOutput {
    match kernel {
        SsspKernel::DeltaStepping => delta_stepping(g, root, pool, delta),
        SsspKernel::RadixHeap => crate::radix::dijkstra_radix_heap(g, root, pool),
        SsspKernel::Bmssp => crate::bmssp::bmssp_sssp(g, root, pool),
    }
}

/// Runs Δ-stepping from `root`. Unweighted graphs behave as unit weights.
pub fn delta_stepping(g: &Csr, root: VertexId, pool: &ThreadPool, delta: f32) -> RunOutput {
    assert!(delta > 0.0, "delta must be positive");
    let n = g.num_vertices();
    let dist: Vec<AtomicF32> = (0..n).map(|_| AtomicF32::new(INF_DIST)).collect();
    dist[root as usize].store(0.0, Ordering::Relaxed);

    let bucket_of = |d: f32| (d / delta) as usize;
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); 64];
    buckets[0].push(root);

    let mut counters = Counters::default();
    let mut trace = Trace::default();
    let mut settled_total = 0u64;

    let mut bi = 0usize;
    let mut cancelled = false;
    while bi < buckets.len() {
        if pool.is_cancelled() {
            cancelled = true;
            break;
        }
        if buckets[bi].is_empty() {
            bi += 1;
            continue;
        }
        // Vertices settled in this bucket (for the heavy pass).
        let mut settled: Vec<VertexId> = Vec::new();
        // ---- light-edge phase: iterate until the bucket stops refilling.
        while !buckets[bi].is_empty() {
            let frontier = std::mem::take(&mut buckets[bi]);
            settled.extend_from_slice(&frontier);
            let inserts = relax_edges(
                g,
                &dist,
                &frontier,
                pool,
                delta,
                true,
                bi,
                bucket_of,
                &mut counters,
                &mut trace,
            );
            distribute(&mut buckets, inserts, bi);
        }
        // ---- heavy-edge phase over everything settled in this bucket.
        settled.sort_unstable();
        settled.dedup();
        // Drop stale entries whose distance migrated to a later bucket.
        settled.retain(|&v| bucket_of(dist[v as usize].load(Ordering::Relaxed)) == bi);
        settled_total += settled.len() as u64;
        let inserts = relax_edges(
            g,
            &dist,
            &settled,
            pool,
            delta,
            false,
            bi,
            bucket_of,
            &mut counters,
            &mut trace,
        );
        distribute(&mut buckets, inserts, bi);
        counters.iterations += 1;
        bi += 1;
    }

    counters.vertices_touched = settled_total;
    counters.bytes_read = counters.edges_traversed * 12;
    counters.bytes_written = settled_total * 8;
    let out: Vec<Weight> = dist.iter().map(|d| d.load(Ordering::Relaxed)).collect();
    RunOutput::new(AlgorithmResult::Distances(out), counters, trace).cancelled(cancelled)
}

/// Relaxes the light (`light == true`, w ≤ Δ) or heavy (w > Δ) edges of
/// `frontier`, skipping stale frontier entries. Returns the (vertex,
/// bucket) insertions discovered.
#[allow(clippy::too_many_arguments)]
fn relax_edges(
    g: &Csr,
    dist: &[AtomicF32],
    frontier: &[VertexId],
    pool: &ThreadPool,
    delta: f32,
    light: bool,
    current_bucket: usize,
    bucket_of: impl Fn(f32) -> usize + Sync,
    counters: &mut Counters,
    trace: &mut Trace,
) -> Vec<(VertexId, usize)> {
    if frontier.is_empty() {
        return Vec::new();
    }
    let relaxed = AtomicU64::new(0);
    let max_deg = AtomicU64::new(0);
    let inserts: Mutex<Vec<(VertexId, usize)>> = Mutex::new(Vec::new());
    pool.parallel_for_ranges(frontier.len(), Schedule::Dynamic { chunk: 32 }, |_tid, lo, hi| {
        let mut local: Vec<(VertexId, usize)> = Vec::with_capacity(hi - lo);
        let mut local_relaxed = 0u64;
        let mut local_max = 0u64;
        for &u in &frontier[lo..hi] {
            let du = dist[u as usize].load(Ordering::Relaxed);
            // Stale check: u may have been re-queued for an earlier bucket.
            if bucket_of(du) != current_bucket {
                continue;
            }
            local_max = local_max.max(g.out_degree(u) as u64);
            for (v, w) in g.neighbors_weighted(u) {
                if (w <= delta) != light {
                    continue;
                }
                local_relaxed += 1;
                let nd = du + w;
                if dist[v as usize].fetch_min(nd, Ordering::Relaxed) {
                    local.push((v, bucket_of(nd)));
                }
            }
        }
        relaxed.fetch_add(local_relaxed, Ordering::Relaxed);
        max_deg.fetch_max(local_max, Ordering::Relaxed);
        if !local.is_empty() {
            inserts.lock().append(&mut local);
        }
    });
    let relaxed = relaxed.load(Ordering::Relaxed);
    counters.edges_traversed += relaxed;
    trace.parallel(
        relaxed.max(frontier.len() as u64),
        max_deg.load(Ordering::Relaxed).max(1),
        relaxed * 12 + frontier.len() as u64 * 8,
    );
    inserts.into_inner()
}

/// Routes insertions into their buckets, growing the bucket array as
/// needed; entries for already-passed buckets go to the current bucket
/// (they are deduplicated by the stale check).
fn distribute(buckets: &mut Vec<Vec<VertexId>>, inserts: Vec<(VertexId, usize)>, current: usize) {
    for (v, b) in inserts {
        let b = b.max(current);
        if b >= buckets.len() {
            buckets.resize(b + 1, Vec::new());
        }
        buckets[b].push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::{oracle, EdgeList};

    fn check_against_dijkstra(el: &EdgeList, root: VertexId, delta: f32) {
        let g = Csr::from_edge_list(el);
        let pool = ThreadPool::new(4);
        let out = delta_stepping(&g, root, &pool, delta);
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        let want = oracle::dijkstra(&g, root);
        for v in 0..want.len() {
            if want[v].is_infinite() {
                assert!(d[v].is_infinite(), "vertex {v} should be unreachable");
            } else {
                assert!((d[v] - want[v]).abs() < 1e-3, "vertex {v}: {} vs {}", d[v], want[v]);
            }
        }
    }

    #[test]
    fn matches_dijkstra_across_delta_values() {
        let el = epg_generator::uniform::generate(400, 4000, true, 11).symmetrized();
        for delta in [0.05, 0.5, 2.0, 100.0] {
            check_against_dijkstra(&el, 5, delta);
        }
    }

    #[test]
    fn handles_heavy_only_paths() {
        // All weights > delta: pure heavy-edge propagation.
        let el =
            EdgeList::weighted(4, vec![(0, 1), (1, 2), (2, 3)], vec![5.0, 6.0, 7.0]).symmetrized();
        check_against_dijkstra(&el, 0, 1.0);
    }

    #[test]
    fn handles_reinsertion_within_bucket() {
        // Light edges that improve distances repeatedly inside one bucket.
        let el = EdgeList::weighted(
            5,
            vec![(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)],
            vec![0.1, 0.1, 0.1, 0.4, 0.1],
        )
        .symmetrized();
        check_against_dijkstra(&el, 0, 1.0);
    }

    #[test]
    fn unweighted_graph_counts_hops() {
        let el = EdgeList::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]).symmetrized();
        let g = Csr::from_edge_list(&el);
        let pool = ThreadPool::new(2);
        let out = delta_stepping(&g, 0, &pool, 0.5);
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        assert_eq!(d, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn counters_populated() {
        let el = epg_generator::uniform::generate(100, 800, true, 2).symmetrized();
        let g = Csr::from_edge_list(&el);
        let pool = ThreadPool::new(2);
        let out = delta_stepping(&g, 0, &pool, 0.5);
        assert!(out.counters.edges_traversed > 0);
        assert!(out.counters.iterations > 0);
        assert!(out.trace.total_work() > 0);
    }
}
