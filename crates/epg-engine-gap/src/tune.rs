//! Heuristic parameter tuning — the paper's §V plan, implemented:
//! "We plan to add some level of heuristic parameter tuning as performed
//! in [Beamer et al.] to the next iteration of our framework to take
//! advantage of these algorithmic advances."
//!
//! The tuner probes a small candidate grid on a few sampled roots and
//! picks parameters by *deterministic work counters* (edges relaxed /
//! traversed plus a per-round penalty), not wall time — so tuning is
//! repeatable on noisy machines, in the spirit of the framework.

use crate::GapEngine;
use epg_engine_api::{Algorithm, Engine, RunParams, SsspKernel};
use epg_graph::VertexId;
use epg_parallel::ThreadPool;

/// What the tuner decided and why.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneReport {
    /// Chosen Δ for SSSP.
    pub delta: f32,
    /// Chosen direction-switch α.
    pub alpha: u64,
    /// Chosen direction-switch β.
    pub beta: u64,
    /// Chosen SSSP kernel (see [`SsspKernel`]).
    pub sssp_kernel: SsspKernel,
    /// (candidate Δ, work cost) pairs probed (under Δ-stepping).
    pub delta_probes: Vec<(f32, u64)>,
    /// ((α, β), work cost) pairs probed.
    pub bfs_probes: Vec<((u64, u64), u64)>,
    /// (kernel, work cost) pairs probed, one per [`SsspKernel::ALL`].
    pub kernel_probes: Vec<(SsspKernel, u64)>,
}

/// Synchronization penalty charged per bucket/step during probing: extra
/// rounds cost barriers even when they relax few edges.
const ROUND_PENALTY: u64 = 2_000;

impl GapEngine {
    /// Probes Δ, (α, β) and the SSSP kernel on up to three of the given
    /// roots and installs the best-scoring parameters. The graph must be
    /// constructed.
    pub fn auto_tune(&mut self, pool: &ThreadPool, roots: &[VertexId]) -> TuneReport {
        let probe_roots: Vec<VertexId> = roots.iter().copied().take(3).collect();
        assert!(!probe_roots.is_empty(), "need at least one probe root");

        // ---- Δ candidates seeded from the weight distribution ----
        // Δ only matters under Δ-stepping, so probe it with that kernel
        // pinned regardless of the configured one.
        let saved_kernel = self.config.sssp_kernel;
        self.config.sssp_kernel = SsspKernel::DeltaStepping;
        let avg_w = self.average_weight().unwrap_or(1.0);
        // Include the current Δ so tuning can never regress the config.
        let candidates =
            [self.config.delta, avg_w * 0.05, avg_w * 0.25, avg_w, avg_w * 4.0, avg_w * 1e6];
        let mut delta_probes = Vec::new();
        let mut best_delta = (self.config.delta, u64::MAX);
        for &delta in &candidates {
            let saved = self.config.delta;
            self.config.delta = delta;
            let mut cost = 0u64;
            for &r in &probe_roots {
                let out = self.run(Algorithm::Sssp, &RunParams::new(pool, Some(r)));
                cost +=
                    out.counters.edges_traversed + out.counters.iterations as u64 * ROUND_PENALTY;
            }
            delta_probes.push((delta, cost));
            if cost < best_delta.1 {
                best_delta = (delta, cost);
            }
            self.config.delta = saved;
        }
        self.config.delta = best_delta.0;
        self.config.sssp_kernel = saved_kernel;

        // ---- SSSP kernel, with the chosen Δ installed ----
        // Work counters are deterministic but not comparable across
        // execution models as-is: Δ-stepping spreads its edge work over
        // the pool while the priority-queue kernels run serially, so
        // parallel-region work is divided by the thread count (a perfect
        // speedup assumption — optimistic, but deterministic) while the
        // per-round barrier penalty stays whole.
        let threads = pool.num_threads().max(1) as u64;
        let mut kernel_probes = Vec::new();
        let mut best_kernel = (self.config.sssp_kernel, u64::MAX);
        for kernel in SsspKernel::ALL {
            let saved = self.config.sssp_kernel;
            self.config.sssp_kernel = kernel;
            let mut cost = 0u64;
            for &r in &probe_roots {
                let out = self.run(Algorithm::Sssp, &RunParams::new(pool, Some(r)));
                // The barrier penalty models per-round synchronization;
                // the serial kernels have no barriers (their `iterations`
                // count redistributions/recursions), so they are charged
                // their full, undivided edge work instead.
                cost += if kernel == SsspKernel::DeltaStepping {
                    out.counters.edges_traversed.div_ceil(threads)
                        + out.counters.iterations as u64 * ROUND_PENALTY
                } else {
                    out.counters.edges_traversed
                };
            }
            kernel_probes.push((kernel, cost));
            if cost < best_kernel.1 {
                best_kernel = (kernel, cost);
            }
            self.config.sssp_kernel = saved;
        }
        self.config.sssp_kernel = best_kernel.0;

        // ---- (α, β) candidates around GAP's defaults ----
        let grid = [(4u64, 18u64), (15, 18), (15, 64), (64, 18), (64, 64)];
        let mut bfs_probes = Vec::new();
        let mut best_ab = ((self.config.alpha, self.config.beta), u64::MAX);
        for &(alpha, beta) in &grid {
            let saved = (self.config.alpha, self.config.beta);
            self.config.alpha = alpha;
            self.config.beta = beta;
            let mut cost = 0u64;
            for &r in &probe_roots {
                let out = self.run(Algorithm::Bfs, &RunParams::new(pool, Some(r)));
                cost +=
                    out.counters.edges_traversed + out.counters.iterations as u64 * ROUND_PENALTY;
            }
            bfs_probes.push(((alpha, beta), cost));
            if cost < best_ab.1 {
                best_ab = ((alpha, beta), cost);
            }
            self.config.alpha = saved.0;
            self.config.beta = saved.1;
        }
        self.config.alpha = best_ab.0 .0;
        self.config.beta = best_ab.0 .1;

        TuneReport {
            delta: self.config.delta,
            alpha: self.config.alpha,
            beta: self.config.beta,
            sssp_kernel: self.config.sssp_kernel,
            delta_probes,
            bfs_probes,
            kernel_probes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_engine_api::AlgorithmResult;
    use epg_graph::{oracle, Csr, EdgeList};

    fn weighted_kron() -> EdgeList {
        epg_generator::kronecker::generate(
            &epg_generator::kronecker::KroneckerConfig {
                scale: 9,
                edge_factor: 8,
                weighted: true,
                ..Default::default()
            },
            3,
        )
        .symmetrized()
        .deduplicated()
    }

    #[test]
    fn tuning_never_worsens_probe_cost() {
        let el = weighted_kron();
        let pool = ThreadPool::new(2);
        let mut e = GapEngine::new();
        e.load_edge_list(&el);
        e.construct(&pool);
        let roots = epg_graph::degree::sample_roots(&el, 3, 1);

        let default_cost = {
            let mut c = 0u64;
            for &r in &roots {
                let out = e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(r)));
                c += out.counters.edges_traversed + out.counters.iterations as u64 * 2_000;
            }
            c
        };
        let report = e.auto_tune(&pool, &roots);
        let tuned_cost = report.delta_probes.iter().find(|(d, _)| *d == report.delta).unwrap().1;
        assert!(tuned_cost <= default_cost, "tuned {tuned_cost} vs default {default_cost}");
        assert_eq!(report.delta_probes.len(), 6);
        assert_eq!(report.bfs_probes.len(), 5);
        // One probe per kernel, in SsspKernel::ALL order — a new kernel
        // variant without tuner coverage fails here.
        let probed: Vec<SsspKernel> = report.kernel_probes.iter().map(|&(k, _)| k).collect();
        assert_eq!(probed, SsspKernel::ALL.to_vec());
        assert_eq!(report.sssp_kernel, e.config.sssp_kernel);
    }

    #[test]
    fn kernel_selection_adapts_to_graph_shape() {
        let pool = ThreadPool::new(4);
        // A long near-line graph floods Δ-stepping with bucket rounds
        // (each charged ROUND_PENALTY); the serial priority-queue kernels
        // traverse each edge once. The tuner must move off Δ-stepping.
        let line = epg_generator::adversarial::almost_line(4000, 50, 3);
        let mut e = GapEngine::new();
        e.load_edge_list(&line);
        e.construct(&pool);
        let report = e.auto_tune(&pool, &[0, 1, 2]);
        assert_ne!(
            report.sssp_kernel,
            SsspKernel::DeltaStepping,
            "probes: {:?}",
            report.kernel_probes
        );
        // Selection is driven by deterministic counters: re-tuning a fresh
        // engine reproduces the same report.
        let mut e2 = GapEngine::new();
        e2.load_edge_list(&line);
        e2.construct(&pool);
        assert_eq!(e2.auto_tune(&pool, &[0, 1, 2]), report);
    }

    #[test]
    fn tuned_engine_is_still_correct() {
        let el = weighted_kron();
        let pool = ThreadPool::new(2);
        let mut e = GapEngine::new();
        e.load_edge_list(&el);
        e.construct(&pool);
        let roots = epg_graph::degree::sample_roots(&el, 2, 5);
        let _ = e.auto_tune(&pool, &roots);
        let g = Csr::from_edge_list(&el);
        let out = e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(roots[0])));
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        let want = oracle::dijkstra(&g, roots[0]);
        for v in 0..want.len() {
            if want[v].is_finite() {
                assert!((d[v] - want[v]).abs() < 1e-3, "vertex {v}");
            }
        }
        let out = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(roots[0])));
        let AlgorithmResult::BfsTree { level, .. } = out.result else { panic!() };
        assert_eq!(level, oracle::bfs(&g, roots[0]).level);
    }

    #[test]
    #[should_panic(expected = "at least one probe root")]
    fn empty_roots_rejected() {
        let el = weighted_kron();
        let pool = ThreadPool::new(1);
        let mut e = GapEngine::new();
        e.load_edge_list(&el);
        e.construct(&pool);
        let _ = e.auto_tune(&pool, &[]);
    }
}
