//! Betweenness centrality, GAP-style (§V extension).
//!
//! GAP's `bc` benchmark runs Brandes' algorithm from a set of sampled
//! sources, parallelizing each source's forward BFS and backward
//! dependency accumulation level by level. `bc_sources = None` runs every
//! source (exact Brandes); `Some(k)` samples `k` sources and scales the
//! estimate by `n / k`, as approximate BC implementations do.

use epg_engine_api::{AlgorithmResult, Counters, RunOutput, Trace};
use epg_graph::{Csr, VertexId};
use epg_parallel::{AtomicF64, DisjointWriter, Schedule, ThreadPool};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Runs betweenness centrality over out-edges.
pub fn betweenness(g: &Csr, pool: &ThreadPool, sources: Option<usize>, seed: u64) -> RunOutput {
    let n = g.num_vertices();
    let mut counters = Counters::default();
    let mut trace = Trace::default();
    let mut bc = vec![0.0f64; n];
    if n == 0 {
        return RunOutput::new(AlgorithmResult::Centrality(bc), counters, trace);
    }

    let source_list: Vec<VertexId> = match sources {
        None => (0..n as VertexId).collect(),
        Some(k) => {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..k.min(n)).map(|_| rng.gen_range(0..n as VertexId)).collect()
        }
    };
    let scale = n as f64 / source_list.len() as f64;

    // Per-source state, reused across sources.
    let sigma: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
    let dist: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(-1)).collect();
    let mut delta = vec![0.0f64; n];

    for &s in &source_list {
        pool.parallel_for(n, Schedule::Static { chunk: None }, |v| {
            sigma[v].store(0.0, Ordering::Relaxed);
            dist[v].store(-1, Ordering::Relaxed);
        });
        {
            let dw = DisjointWriter::new(&mut delta);
            // SAFETY: parallel_for hands each index v to exactly one worker.
            pool.parallel_for(n, Schedule::Static { chunk: None }, |v| unsafe {
                dw.write(v, 0.0);
            });
        }
        sigma[s as usize].store(1.0, Ordering::Relaxed);
        dist[s as usize].store(0, Ordering::Relaxed);

        // ---- forward phase: level-synchronous BFS counting paths ----
        let mut levels: Vec<Vec<VertexId>> = vec![vec![s]];
        let mut depth: i64 = 0;
        while let Some(frontier) = levels.last() {
            if frontier.is_empty() {
                levels.pop();
                break;
            }
            let scanned = AtomicU64::new(0);
            let next: Mutex<Vec<VertexId>> = Mutex::new(Vec::with_capacity(frontier.len()));
            pool.parallel_for_ranges(
                frontier.len(),
                Schedule::Guided { min_chunk: 16 },
                |_tid, lo, hi| {
                    let mut local = Vec::with_capacity(hi - lo);
                    let mut sc = 0u64;
                    for &u in &frontier[lo..hi] {
                        let su = sigma[u as usize].load(Ordering::Relaxed);
                        for &v in g.neighbors(u) {
                            sc += 1;
                            let dv = dist[v as usize].load(Ordering::Relaxed);
                            if dv < 0
                                && dist[v as usize]
                                    .compare_exchange(
                                        -1,
                                        depth + 1,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    )
                                    .is_ok()
                            {
                                local.push(v);
                            }
                            if dist[v as usize].load(Ordering::Relaxed) == depth + 1 {
                                sigma[v as usize].fetch_add(su, Ordering::Relaxed);
                            }
                        }
                    }
                    scanned.fetch_add(sc, Ordering::Relaxed);
                    if !local.is_empty() {
                        next.lock().append(&mut local);
                    }
                },
            );
            let scanned = scanned.load(Ordering::Relaxed);
            counters.edges_traversed += scanned;
            trace.parallel(scanned.max(1), 1, scanned * 12);
            depth += 1;
            levels.push(next.into_inner());
        }

        // ---- backward phase: dependency accumulation per level ----
        for (d, level) in levels.iter().enumerate().rev() {
            let d = d as i64;
            let scanned = AtomicU64::new(0);
            {
                // Writes touch only level-d vertices (disjoint per thread);
                // reads touch only level-(d+1) vertices, finalized by the
                // previous pass — no overlap, so the writer contract holds.
                let dw = DisjointWriter::new(&mut delta);
                pool.parallel_for_ranges(
                    level.len(),
                    Schedule::Guided { min_chunk: 16 },
                    |_tid, lo, hi| {
                        let mut sc = 0u64;
                        for &w in &level[lo..hi] {
                            let mut acc = 0.0;
                            let sw = sigma[w as usize].load(Ordering::Relaxed);
                            for &v in g.neighbors(w) {
                                sc += 1;
                                if dist[v as usize].load(Ordering::Relaxed) == d + 1 {
                                    // SAFETY: v is at level d+1, already
                                    // finalized; w is at level d, written
                                    // only by this thread this pass.
                                    let dv = unsafe { *dw.get_raw(v as usize) };
                                    acc +=
                                        sw / sigma[v as usize].load(Ordering::Relaxed) * (1.0 + dv);
                                }
                            }
                            // SAFETY: w is owned by this thread's chunk of
                            // the level-d frontier; no other worker writes it.
                            unsafe { dw.write(w as usize, acc) };
                        }
                        scanned.fetch_add(sc, Ordering::Relaxed);
                    },
                );
            }
            let scanned = scanned.load(Ordering::Relaxed);
            counters.edges_traversed += scanned;
            trace.parallel(scanned.max(1), 1, scanned * 16);
        }
        for (v, &dv) in delta.iter().enumerate() {
            if v as VertexId != s {
                bc[v] += dv * scale;
            }
        }
        counters.iterations += 1;
        counters.vertices_touched += n as u64;
    }
    counters.bytes_read = counters.edges_traversed * 12;
    counters.bytes_written = counters.vertices_touched * 8;
    RunOutput::new(AlgorithmResult::Centrality(bc), counters, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::{oracle, EdgeList};

    fn exact(el: &EdgeList) -> Vec<f64> {
        let g = Csr::from_edge_list(el);
        let pool = ThreadPool::new(3);
        let out = betweenness(&g, &pool, None, 0);
        let AlgorithmResult::Centrality(bc) = out.result else { panic!() };
        bc
    }

    #[test]
    fn exact_matches_brandes_oracle_on_random_graph() {
        let el = epg_generator::uniform::generate(120, 700, false, 4).symmetrized().deduplicated();
        let got = exact(&el);
        let want = oracle::betweenness(&Csr::from_edge_list(&el));
        for v in 0..want.len() {
            assert!(
                (got[v] - want[v]).abs() < 1e-6 * (1.0 + want[v]),
                "vertex {v}: {} vs {}",
                got[v],
                want[v]
            );
        }
    }

    #[test]
    fn exact_matches_oracle_on_directed_dag() {
        let el = epg_generator::citations::generate(
            &epg_generator::citations::CitationsConfig { num_vertices: 200, ..Default::default() },
            7,
        );
        let got = exact(&el);
        let want = oracle::betweenness(&Csr::from_edge_list(&el));
        for v in 0..want.len() {
            assert!((got[v] - want[v]).abs() < 1e-6 * (1.0 + want[v]), "vertex {v}");
        }
    }

    #[test]
    fn sampled_bc_is_unbiased_in_expectation_shape() {
        // On a star, every source sample still sees the hub on all paths:
        // sampled BC of the hub must be positive and leaves ~0.
        let el = EdgeList::new(40, (1..40).map(|v| (0u32, v)).collect::<Vec<_>>()).symmetrized();
        let g = Csr::from_edge_list(&el);
        let pool = ThreadPool::new(2);
        let out = betweenness(&g, &pool, Some(8), 3);
        let AlgorithmResult::Centrality(bc) = out.result else { panic!() };
        assert!(bc[0] > 0.0);
        let hub = bc[0];
        for v in 1..40 {
            assert!(bc[v] <= hub);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let el = epg_generator::uniform::generate(60, 300, false, 1).symmetrized();
        let g = Csr::from_edge_list(&el);
        let pool = ThreadPool::new(2);
        let a = betweenness(&g, &pool, Some(4), 9);
        let b = betweenness(&g, &pool, Some(4), 9);
        assert_eq!(a.result, b.result);
    }
}
