//! GAP Benchmark Suite-style engine.
//!
//! Reproduces the architecture of Beamer, Asanović and Patterson's GAP
//! Benchmark Suite reference implementations (§III-C item 2): flat CSR over
//! both edge directions, OpenMP-style worksharing, and the algorithmic
//! choices that make GAP "the clear winner" across the paper's experiments:
//!
//! - **Direction-optimizing BFS** (α = 15, β = 18 by default — the paper
//!   explicitly notes it ran GAP untuned, §IV-C);
//! - **Δ-stepping SSSP** with light/heavy edge separation;
//! - pull-mode PageRank with the homogenized L1 stopping criterion.
//!
//! Like the real GAP, weights can be stored as floats (default) or cast to
//! integers at construction (`WeightRepr::Int`) — §IV-A warns that "weights
//! like 0.2 are cast to 0"; the `ablation_weights` bench measures the
//! consequences.

#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
mod bc;
mod bfs;
pub mod bmssp;
mod pr;
pub mod query;
pub mod radix;
pub mod sssp;
mod structures;
pub mod tune;

mod tc;

pub use epg_engine_api::SsspKernel;
pub use query::GapQuery;
pub use structures::{Bitmap, SlidingQueue};

use epg_engine_api::{logfmt::LogStyle, Algorithm, Engine, EngineInfo, RunOutput, RunParams};
use epg_graph::{ingest, Csr, EdgeList};
use epg_parallel::ThreadPool;
use std::path::Path;

/// How edge weights are stored (the GAP compile-time switch).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WeightRepr {
    /// Single-precision floats (our default build).
    #[default]
    Float,
    /// Truncated to integers at construction; `0.2` becomes `0.0`.
    Int,
}

/// Tunable parameters (§V: "Advances in parallel SSSP and BFS contain
/// parameterizations (Δ for SSSP and α and β for BFS)... provided in GAP").
#[derive(Clone, Debug, PartialEq)]
pub struct GapConfig {
    /// Direction-switch numerator: go bottom-up when the frontier's
    /// outgoing edges exceed the unexplored edges / α.
    pub alpha: u64,
    /// Switch back top-down when the frontier shrinks below n / β.
    pub beta: u64,
    /// Enable direction optimization at all (ablation switch).
    pub direction_optimizing: bool,
    /// Δ-stepping bucket width.
    pub delta: f32,
    /// Weight storage.
    pub weight_repr: WeightRepr,
    /// Which SSSP kernel `run` dispatches to (raw-speed tier). The
    /// default is the paper's Δ-stepping; `auto_tune` probes all three.
    pub sssp_kernel: SsspKernel,
}

impl Default for GapConfig {
    fn default() -> Self {
        GapConfig {
            alpha: 15,
            beta: 18,
            direction_optimizing: true,
            // GAP's shipped default is Δ=2 over integer weights drawn from
            // [0, 255] — about mean/64. Our weighted graphs draw uniform
            // (0,1] (mean 0.5), so the faithful scaling is ~0.01-0.05.
            delta: 0.05,
            weight_repr: WeightRepr::Float,
            sssp_kernel: SsspKernel::default(),
        }
    }
}

/// The GAP-style engine. Holds one graph; `run` may be invoked repeatedly.
pub struct GapEngine {
    /// Tunables.
    pub config: GapConfig,
    edge_list: Option<EdgeList>,
    csr: Option<Csr>,
    csr_t: Option<Csr>,
}

impl GapEngine {
    /// Creates an engine with the given configuration.
    pub fn with_config(config: GapConfig) -> GapEngine {
        GapEngine { config, edge_list: None, csr: None, csr_t: None }
    }

    /// Creates an engine with paper-default parameters.
    pub fn new() -> GapEngine {
        GapEngine::with_config(GapConfig::default())
    }

    fn csr(&self) -> &Csr {
        self.csr.as_ref().expect("graph not constructed; call construct()")
    }

    fn csr_t(&self) -> &Csr {
        self.csr_t.as_ref().expect("graph not constructed; call construct()")
    }

    /// Mean edge weight of the constructed graph (None when unweighted or
    /// empty) — the seed statistic for Δ tuning.
    pub fn average_weight(&self) -> Option<f32> {
        let ws = self.csr().weights.as_ref()?;
        if ws.is_empty() {
            return None;
        }
        Some((ws.iter().map(|&w| w as f64).sum::<f64>() / ws.len() as f64) as f32)
    }
}

impl Default for GapEngine {
    fn default() -> Self {
        GapEngine::new()
    }
}

impl Engine for GapEngine {
    fn info(&self) -> EngineInfo {
        EngineInfo {
            name: "GAP",
            representation: "CSR (out + in)",
            parallelism: "OpenMP-style worksharing",
            distributed_capable: false,
            requires_proprietary_compiler: false,
        }
    }

    fn supports(&self, algo: Algorithm) -> bool {
        // Core trio plus the GAP suite's bc/tc kernels (§V extensions).
        matches!(
            algo,
            Algorithm::Bfs
                | Algorithm::Sssp
                | Algorithm::PageRank
                | Algorithm::Bc
                | Algorithm::TriangleCount
        )
    }

    fn load_file(&mut self, path: &Path, pool: &ThreadPool) -> std::io::Result<()> {
        let el = ingest::read_binary_file_parallel(path, pool)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.load_edge_list(&el);
        Ok(())
    }

    fn load_edge_list(&mut self, el: &EdgeList) {
        self.edge_list = Some(el.clone());
        self.csr = None;
        self.csr_t = None;
    }

    fn construct(&mut self, pool: &ThreadPool) {
        let mut el = self.edge_list.as_ref().expect("no edge list loaded").clone();
        if self.config.weight_repr == WeightRepr::Int {
            if let Some(ws) = el.weights.as_mut() {
                for w in ws.iter_mut() {
                    *w = w.trunc();
                }
            }
        }
        // GAP builds CSR in parallel (histogram + prefix sum + scatter);
        // the pull-direction transpose uses the same parallel structure.
        let csr = Csr::from_edge_list_parallel(&el, pool);
        self.csr_t = Some(csr.transpose_parallel(pool));
        self.csr = Some(csr);
    }

    fn run(&mut self, algo: Algorithm, params: &RunParams<'_>) -> RunOutput {
        assert!(self.supports(algo), "GAP does not implement {algo:?}");
        match algo {
            Algorithm::Bfs => {
                let root = params.root.expect("BFS needs a root");
                bfs::direction_optimizing_bfs(
                    self.csr(),
                    self.csr_t(),
                    root,
                    params.pool,
                    &self.config,
                    params.recorder,
                )
            }
            Algorithm::Sssp => {
                let root = params.root.expect("SSSP needs a root");
                // Unweighted graphs run with unit weights; a sub-unit Δ
                // would only fragment the (integer) distance range into
                // empty buckets, so hop-sized buckets are used instead.
                let delta = if self.csr().is_weighted() { self.config.delta } else { 1.0 };
                sssp::run_kernel(self.config.sssp_kernel, self.csr(), root, params.pool, delta)
            }
            Algorithm::PageRank => pr::pagerank(self.csr(), self.csr_t(), params),
            Algorithm::Bc => bc::betweenness(self.csr(), params.pool, params.bc_sources, 0x6a0),
            Algorithm::TriangleCount => tc::triangle_count(self.csr(), self.csr_t(), params.pool),
            _ => unreachable!(),
        }
    }

    fn log_style(&self) -> LogStyle {
        LogStyle::Gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_engine_api::AlgorithmResult;
    use epg_graph::{oracle, NO_VERTEX};

    fn engine_on(el: &EdgeList, pool: &ThreadPool) -> GapEngine {
        let mut e = GapEngine::new();
        e.load_edge_list(el);
        e.construct(pool);
        e
    }

    fn kron(scale: u32, weighted: bool) -> EdgeList {
        epg_generator::kronecker::generate(
            &epg_generator::kronecker::KroneckerConfig {
                scale,
                edge_factor: 8,
                weighted,
                ..Default::default()
            },
            42,
        )
        .symmetrized()
    }

    #[test]
    fn bfs_matches_oracle_levels() {
        let el = kron(9, false);
        let pool = ThreadPool::new(3);
        let mut e = engine_on(&el, &pool);
        let g = Csr::from_edge_list(&el);
        let root = epg_graph::degree::sample_roots(&el, 1, 7)[0];
        let out = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(root)));
        let AlgorithmResult::BfsTree { parent, level } = out.result else { panic!() };
        let oracle_res = oracle::bfs(&g, root);
        assert_eq!(level, oracle_res.level, "levels differ from oracle");
        epg_graph::validate::validate_bfs_tree(&g, root, &parent).unwrap();
        assert!(out.counters.edges_traversed > 0);
        assert!(out.trace.sync_points() > 0);
    }

    #[test]
    fn bfs_without_direction_optimization_still_correct() {
        let el = kron(8, false);
        let pool = ThreadPool::new(2);
        let cfg = GapConfig { direction_optimizing: false, ..Default::default() };
        let mut e = GapEngine::with_config(cfg);
        e.load_edge_list(&el);
        e.construct(&pool);
        let g = Csr::from_edge_list(&el);
        let root = epg_graph::degree::sample_roots(&el, 1, 3)[0];
        let out = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(root)));
        let AlgorithmResult::BfsTree { level, .. } = out.result else { panic!() };
        assert_eq!(level, oracle::bfs(&g, root).level);
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let el = kron(8, true);
        let pool = ThreadPool::new(3);
        let mut e = engine_on(&el, &pool);
        let g = Csr::from_edge_list(&el);
        let root = epg_graph::degree::sample_roots(&el, 1, 9)[0];
        let out = e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(root)));
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        let want = oracle::dijkstra(&g, root);
        for v in 0..want.len() {
            if want[v].is_infinite() {
                assert!(d[v].is_infinite(), "vertex {v}");
            } else {
                assert!((d[v] - want[v]).abs() < 1e-3, "vertex {v}: {} vs {}", d[v], want[v]);
            }
        }
    }

    #[test]
    fn pagerank_close_to_oracle_and_converges() {
        let el = kron(8, false);
        let pool = ThreadPool::new(2);
        let mut e = engine_on(&el, &pool);
        let g = Csr::from_edge_list(&el);
        let out = e.run(Algorithm::PageRank, &RunParams::new(&pool, None));
        let AlgorithmResult::Ranks { ranks, iterations } = out.result else { panic!() };
        assert!(iterations > 2 && iterations < 300);
        let (want, _) = oracle::pagerank(&g, 6e-8, 300);
        for v in 0..want.len() {
            assert!((ranks[v] - want[v]).abs() < 1e-5, "vertex {v}: {} vs {}", ranks[v], want[v]);
        }
    }

    #[test]
    fn int_weights_truncate() {
        let el = EdgeList::weighted(3, vec![(0, 1), (1, 2)], vec![0.2, 1.7]).symmetrized();
        let pool = ThreadPool::new(1);
        let cfg = GapConfig { weight_repr: WeightRepr::Int, ..Default::default() };
        let mut e = GapEngine::with_config(cfg);
        e.load_edge_list(&el);
        e.construct(&pool);
        let out = e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(0)));
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        // 0.2 -> 0.0 and 1.7 -> 1.0.
        assert_eq!(d[1], 0.0);
        assert_eq!(d[2], 1.0);
    }

    #[test]
    fn unreached_vertices_flagged() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 0)]);
        let pool = ThreadPool::new(1);
        let mut e = engine_on(&el, &pool);
        let out = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(0)));
        let AlgorithmResult::BfsTree { parent, level } = out.result else { panic!() };
        assert_eq!(level[2], u32::MAX);
        assert_eq!(parent[3], NO_VERTEX);
    }

    #[test]
    fn engine_metadata() {
        let e = GapEngine::new();
        assert_eq!(e.info().name, "GAP");
        assert!(e.supports(Algorithm::Bfs));
        assert!(!e.supports(Algorithm::Lcc));
        assert!(e.supports(Algorithm::Bc));
        assert!(e.supports(Algorithm::TriangleCount));
        assert!(e.separable_construction());
    }
}
