//! Triangle counting, GAP-style (§V extension).
//!
//! GAP's `tc` benchmark orders vertices, keeps only higher-numbered
//! neighbors, and counts each triangle once by sorted intersection —
//! work-efficient and embarrassingly parallel over vertices.

use epg_engine_api::{AlgorithmResult, Counters, RunOutput, Trace};
use epg_graph::{Csr, VertexId};
use epg_parallel::{DisjointWriter, Schedule, ThreadPool};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts triangles in the undirected simple version of the graph.
pub fn triangle_count(g: &Csr, gt: &Csr, pool: &ThreadPool) -> RunOutput {
    let n = g.num_vertices();
    let mut counters = Counters::default();
    let mut trace = Trace::default();

    // Build higher-neighbor lists in parallel.
    let mut higher: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    {
        let w = DisjointWriter::new(&mut higher);
        pool.parallel_for_ranges(n, Schedule::Guided { min_chunk: 64 }, |_tid, lo, hi| {
            for v in lo..hi {
                let vid = v as VertexId;
                let mut set: Vec<VertexId> = g
                    .neighbors(vid)
                    .iter()
                    .chain(gt.neighbors(vid))
                    .copied()
                    .filter(|&u| u > vid)
                    .collect();
                set.sort_unstable();
                set.dedup();
                // SAFETY: single writer per index.
                unsafe { w.write(v, set) };
            }
        });
    }
    let build_work: u64 = higher.iter().map(|h| h.len() as u64 + 1).sum();
    trace.parallel(build_work.max(1), 1, build_work * 8);

    // Count by intersection, dynamic schedule for degree skew.
    let total = AtomicU64::new(0);
    let work = AtomicU64::new(0);
    let max_cost = AtomicU64::new(0);
    {
        let higher = &higher;
        pool.parallel_for_ranges(n, Schedule::Dynamic { chunk: 32 }, |_tid, lo, hi| {
            let mut local = 0u64;
            let mut lw = 0u64;
            let mut lm = 0u64;
            for u in lo..hi {
                let hu = &higher[u];
                let mut cost = 0u64;
                for &v in hu {
                    cost += (hu.len() + higher[v as usize].len()) as u64;
                    local += intersect(hu, &higher[v as usize]);
                }
                lw += cost;
                lm = lm.max(cost);
            }
            total.fetch_add(local, Ordering::Relaxed);
            work.fetch_add(lw, Ordering::Relaxed);
            max_cost.fetch_max(lm, Ordering::Relaxed);
        });
    }
    let work = work.load(Ordering::Relaxed);
    counters.edges_traversed = work + build_work;
    counters.vertices_touched = n as u64;
    counters.iterations = 1;
    counters.bytes_read = work * 8;
    counters.bytes_written = n as u64 * 8;
    trace.parallel(work.max(1), max_cost.load(Ordering::Relaxed).max(1), work * 8);
    RunOutput::new(AlgorithmResult::Triangles(total.load(Ordering::Relaxed)), counters, trace)
}

fn intersect(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut c) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::{oracle, EdgeList};

    fn count(el: &EdgeList) -> u64 {
        let g = Csr::from_edge_list(el);
        let gt = g.transpose();
        let pool = ThreadPool::new(3);
        let out = triangle_count(&g, &gt, &pool);
        let AlgorithmResult::Triangles(t) = out.result else { panic!() };
        t
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..4 {
            let el = epg_generator::uniform::generate(150, 2000, false, seed);
            assert_eq!(
                count(&el),
                oracle::triangle_count(&Csr::from_edge_list(&el)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn kronecker_has_many_triangles() {
        let el = epg_generator::kronecker::generate(
            &epg_generator::kronecker::KroneckerConfig {
                scale: 9,
                edge_factor: 16,
                ..Default::default()
            },
            5,
        );
        let t = count(&el);
        assert!(t > 1000, "Kronecker should be triangle-rich, got {t}");
        assert_eq!(t, oracle::triangle_count(&Csr::from_edge_list(&el)));
    }

    #[test]
    fn triangle_free_bipartite_graph() {
        // Complete bipartite K3,3: no odd cycles.
        let mut edges = Vec::new();
        for u in 0..3u32 {
            for v in 3..6u32 {
                edges.push((u, v));
            }
        }
        assert_eq!(count(&EdgeList::new(6, edges).symmetrized()), 0);
    }
}
