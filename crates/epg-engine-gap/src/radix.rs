//! Sequential Dijkstra over a monotone radix heap — the first kernel of
//! the raw-speed SSSP tier.
//!
//! Non-negative IEEE-754 floats compare exactly like their bit patterns,
//! so [`dist_to_key`] maps each f32 distance to a u64 key that preserves
//! order across 0.0, subnormals, normals and +∞. Dijkstra's extraction
//! sequence is non-decreasing, which is precisely the contract a radix
//! heap needs: keys are bucketed by the highest bit in which they differ
//! from the last extracted minimum, and a bucket is redistributed (around
//! its own minimum) only when the low bucket drains. Stale heap entries
//! are skipped by comparing the popped key against the vertex's current
//! distance key, exactly like the lazy-deletion binary-heap oracle.

use epg_engine_api::{AlgorithmResult, Counters, RunOutput, Trace};
use epg_graph::{Csr, VertexId, Weight, INF_DIST};
use epg_parallel::ThreadPool;

/// Order-preserving key mapping for non-negative distances: for
/// `0.0 ≤ a ≤ b ≤ +∞`, `dist_to_key(a) ≤ dist_to_key(b)`, with equality
/// exactly when `a == b`. Subnormals and zero are handled by the IEEE-754
/// layout itself (sign 0, then exponent, then mantissa, all big-endian).
#[inline]
pub fn dist_to_key(d: f32) -> u64 {
    debug_assert!(d >= 0.0, "distance keys are defined for non-negative floats");
    f32::to_bits(d) as u64
}

/// Inverse of [`dist_to_key`] (bit-exact).
#[inline]
pub fn key_to_dist(k: u64) -> f32 {
    f32::from_bits(k as u32)
}

/// Monotone priority queue over u64 keys. `push` requires keys no smaller
/// than the last popped key (Dijkstra with non-negative weights satisfies
/// this: a relaxation from the minimum produces `d + w ≥ d`, and f32
/// addition of non-negative operands is monotone).
pub struct RadixHeap {
    /// Bucket `i` holds keys whose highest differing bit vs `last` is
    /// `i - 1`; bucket 0 holds keys equal to `last`.
    buckets: Vec<Vec<(u64, VertexId)>>,
    last: u64,
    len: usize,
    /// Number of bucket redistributions (the kernel's "iterations").
    pub redistributions: u64,
}

impl RadixHeap {
    /// An empty heap with the extraction floor at 0.
    pub fn new() -> RadixHeap {
        RadixHeap { buckets: vec![Vec::new(); 65], last: 0, len: 0, redistributions: 0 }
    }

    #[inline]
    fn bucket_index(last: u64, key: u64) -> usize {
        (64 - (key ^ last).leading_zeros()) as usize
    }

    /// Number of stored entries (including stale ones).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry. `key` must be ≥ the last popped key.
    #[inline]
    pub fn push(&mut self, key: u64, v: VertexId) {
        debug_assert!(key >= self.last, "radix heap requires monotone insertion");
        self.buckets[Self::bucket_index(self.last, key)].push((key, v));
        self.len += 1;
    }

    /// Extracts an entry with the minimum key.
    pub fn pop(&mut self) -> Option<(u64, VertexId)> {
        if self.len == 0 {
            return None;
        }
        if self.buckets[0].is_empty() {
            // Find the first nonempty bucket and redistribute it around
            // its minimum; everything equal to that minimum lands in
            // bucket 0, the rest in strictly lower buckets than before.
            let mut i = 1;
            while self.buckets[i].is_empty() {
                i += 1;
            }
            let drained = std::mem::take(&mut self.buckets[i]);
            let mut min = u64::MAX;
            for &(k, _) in &drained {
                min = min.min(k);
            }
            self.last = min;
            for (k, v) in drained {
                self.buckets[Self::bucket_index(min, k)].push((k, v));
            }
            self.redistributions += 1;
        }
        self.len -= 1;
        self.buckets[0].pop()
    }
}

impl Default for RadixHeap {
    fn default() -> Self {
        RadixHeap::new()
    }
}

/// Sequential Dijkstra from `root` using the radix heap. Unweighted
/// graphs behave as unit weights (`neighbors_weighted` yields 1.0). The
/// pool is used only for cooperative cancellation polling — the kernel
/// itself is single-threaded, and its trace records a serial region so
/// the machine model does not credit it with parallel speedup.
pub fn dijkstra_radix_heap(g: &Csr, root: VertexId, pool: &ThreadPool) -> RunOutput {
    let n = g.num_vertices();
    let mut dist: Vec<Weight> = vec![INF_DIST; n];
    let mut counters = Counters::default();
    let mut trace = Trace::default();
    let mut cancelled = false;
    let mut settled = 0u64;

    if n > 0 {
        dist[root as usize] = 0.0;
        let mut heap = RadixHeap::new();
        heap.push(dist_to_key(0.0), root);
        let mut since_poll = 0u32;
        while let Some((key, u)) = heap.pop() {
            since_poll += 1;
            if since_poll >= 1024 {
                since_poll = 0;
                if pool.is_cancelled() {
                    cancelled = true;
                    break;
                }
            }
            let du = dist[u as usize];
            // Stale entry: u was re-pushed with a smaller key after this
            // entry was queued.
            if key != dist_to_key(du) {
                continue;
            }
            settled += 1;
            for (v, w) in g.neighbors_weighted(u) {
                counters.edges_traversed += 1;
                let nd = du + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(dist_to_key(nd), v);
                }
            }
        }
        counters.iterations = (heap.redistributions as u32).max(1);
    }

    counters.vertices_touched = settled;
    counters.bytes_read = counters.edges_traversed * 12;
    counters.bytes_written = settled * 8;
    trace.serial(counters.edges_traversed.max(1), counters.bytes_read + settled * 8);
    RunOutput::new(AlgorithmResult::Distances(dist), counters, trace).cancelled(cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::{oracle, EdgeList};

    #[test]
    fn key_mapping_is_order_preserving() {
        // Ascending ladder through the tricky regions of the f32 range:
        // zero, the smallest subnormal, larger subnormals, the smallest
        // normal, ordinary values, the largest finite value, infinity.
        let ladder: Vec<f32> = vec![
            0.0,
            f32::from_bits(1), // smallest positive subnormal
            f32::from_bits(0x0000_ffff),
            1e-40, // subnormal
            f32::MIN_POSITIVE,
            1e-20,
            0.1,
            0.5,
            1.0,
            1.0 + f32::EPSILON,
            1.5,
            1e20,
            f32::MAX,
            f32::INFINITY,
        ];
        for w in ladder.windows(2) {
            assert!(w[0] < w[1], "ladder must be strictly ascending: {} vs {}", w[0], w[1]);
            assert!(
                dist_to_key(w[0]) < dist_to_key(w[1]),
                "keys must be strictly ascending: {} vs {}",
                w[0],
                w[1]
            );
        }
        for &d in &ladder {
            assert_eq!(key_to_dist(dist_to_key(d)).to_bits(), d.to_bits(), "roundtrip {d}");
        }
        assert_eq!(dist_to_key(0.0), 0);
    }

    #[test]
    fn heap_pops_sorted_with_duplicates() {
        let keys = [5u64, 3, 3, 0, 7, u32::MAX as u64, 3, 1 << 33, 42];
        let mut h = RadixHeap::new();
        // Monotone usage: push an initial batch, then interleave.
        for (i, &k) in keys.iter().enumerate() {
            h.push(k, i as VertexId);
        }
        let mut out = Vec::new();
        while let Some((k, _)) = h.pop() {
            out.push(k);
        }
        let mut want = keys.to_vec();
        want.sort_unstable();
        assert_eq!(out, want);
        assert!(h.is_empty());
    }

    #[test]
    fn heap_interleaved_monotone_pushes() {
        let mut h = RadixHeap::new();
        h.push(10, 0);
        h.push(20, 1);
        let (k, _) = h.pop().unwrap();
        assert_eq!(k, 10);
        // After popping 10, pushes ≥ 10 are legal.
        h.push(11, 2);
        h.push(u64::MAX, 3);
        assert_eq!(h.pop().unwrap().0, 11);
        assert_eq!(h.pop().unwrap().0, 20);
        assert_eq!(h.pop().unwrap().0, u64::MAX);
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn matches_dijkstra_oracle_exactly() {
        let el = epg_generator::uniform::generate(300, 2400, true, 13).symmetrized();
        let g = Csr::from_edge_list(&el);
        let pool = ThreadPool::new(2);
        let out = dijkstra_radix_heap(&g, 4, &pool);
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        let want = oracle::dijkstra(&g, 4);
        for v in 0..want.len() {
            assert_eq!(d[v].to_bits(), want[v].to_bits(), "vertex {v}: {} vs {}", d[v], want[v]);
        }
        assert!(out.counters.edges_traversed > 0);
        assert!(out.counters.iterations > 0);
    }

    #[test]
    fn zero_weight_edges_and_unreachables() {
        let el = EdgeList::weighted(5, vec![(0, 1), (1, 2), (0, 2)], vec![0.0, 0.0, 0.5]);
        let g = Csr::from_edge_list(&el);
        let pool = ThreadPool::new(1);
        let out = dijkstra_radix_heap(&g, 0, &pool);
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 0.0);
        assert_eq!(d[2], 0.0);
        assert!(d[3].is_infinite() && d[4].is_infinite());
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Csr::from_edge_list(&EdgeList::new(0, vec![]));
        let pool = ThreadPool::new(1);
        let out = dijkstra_radix_heap(&g, 0, &pool);
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        assert!(d.is_empty());
    }
}
