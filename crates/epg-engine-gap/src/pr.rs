//! Pull-mode PageRank with the homogenized L1 stopping criterion (§IV-A).

use epg_engine_api::{
    AlgorithmResult, Counters, DeltaTracker, Dir, RunOutput, RunParams, StoppingCriterion, Tracer,
};
use epg_graph::{Csr, VertexId};
use epg_parallel::{DisjointWriter, Schedule};

/// Damping factor shared by all engines.
pub const DAMPING: f64 = 0.85;

/// Runs PageRank: each iteration pulls rank across in-edges, then the L1
/// change decides convergence (default ε = 6e-8; overridable through
/// [`RunParams::stopping`]).
pub fn pagerank(g: &Csr, gt: &Csr, params: &RunParams<'_>) -> RunOutput {
    let n = g.num_vertices();
    let pool = params.pool;
    let rec = params.recorder;
    let stopping = params.stopping.unwrap_or(StoppingCriterion::paper_default());
    let mut counters = Counters::default();
    let mut trace = Tracer::new(rec);
    let mut deltas = DeltaTracker::new();
    if n == 0 {
        return RunOutput::new(
            AlgorithmResult::Ranks { ranks: Vec::new(), iterations: 0 },
            counters,
            trace.into_trace(),
        );
    }
    rec.alloc_hwm("gap.pr.rank+next", n as u64 * 16);

    let out_deg: Vec<u32> = (0..n as VertexId).map(|v| g.out_degree(v) as u32).collect();
    let sinks: Vec<VertexId> = (0..n as VertexId).filter(|&v| out_deg[v as usize] == 0).collect();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let base = (1.0 - DAMPING) / n as f64;
    let m = g.num_edges() as u64;
    let max_in_deg = (0..n as VertexId).map(|v| gt.out_degree(v)).max().unwrap_or(0) as u64;

    let mut iterations = 0u32;
    let mut cancelled = false;
    loop {
        if pool.is_cancelled() {
            cancelled = true;
            break;
        }
        iterations += 1;
        let sink_mass: f64 = sinks.iter().map(|&v| rank[v as usize]).sum::<f64>() / n as f64;
        {
            let next_cell = DisjointWriter::new(&mut next);
            let rank_ref = &rank;
            pool.parallel_for_ranges(n, Schedule::gap_default(), |_tid, lo, hi| {
                for v in lo..hi {
                    let incoming: f64 = gt
                        .neighbors(v as VertexId)
                        .iter()
                        .map(|&u| rank_ref[u as usize] / out_deg[u as usize] as f64)
                        .sum();
                    // SAFETY: ranges are disjoint, so each index v is
                    // written by exactly one thread per region, and
                    // `v < hi <= n == next.len()`.
                    unsafe {
                        next_cell.write_unchecked(v, base + DAMPING * (incoming + sink_mass))
                    };
                }
            });
        }
        let rank_ref = &rank;
        let next_ref = &next;
        let l1 = pool
            .parallel_sum_f64(n, Schedule::gap_default(), |v| (rank_ref[v] - next_ref[v]).abs());
        let changed = pool.parallel_reduce(
            n,
            Schedule::gap_default(),
            || 0u64,
            |acc, v| *acc += ((rank_ref[v] as f32) != (next_ref[v] as f32)) as u64,
            |a, b| a + b,
        );
        std::mem::swap(&mut rank, &mut next);
        counters.edges_traversed += m;
        counters.vertices_touched += n as u64;
        trace.parallel(m.max(1), max_in_deg.max(1), m * 12 + n as u64 * 16);
        trace.parallel(n as u64, 1, n as u64 * 16); // convergence reductions
        deltas.flush("iteration", &counters, rec);
        // Pull-mode: every vertex is active every round.
        rec.iteration(iterations, n as u64, Dir::Pull);
        if stopping.is_converged(l1, changed) || iterations >= params.max_iterations {
            break;
        }
    }

    counters.iterations = iterations;
    counters.bytes_read = counters.edges_traversed * 12;
    counters.bytes_written = counters.vertices_touched * 8;
    deltas.flush("finalize", &counters, rec);
    RunOutput::new(AlgorithmResult::Ranks { ranks: rank, iterations }, counters, trace.into_trace())
        .cancelled(cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_engine_api::RunParams;
    use epg_graph::{oracle, EdgeList};
    use epg_parallel::ThreadPool;

    fn run(el: &EdgeList, stopping: Option<StoppingCriterion>) -> (Vec<f64>, u32) {
        let g = Csr::from_edge_list(el);
        let gt = g.transpose();
        let pool = ThreadPool::new(4);
        let mut params = RunParams::new(&pool, None);
        params.stopping = stopping;
        let out = pagerank(&g, &gt, &params);
        let AlgorithmResult::Ranks { ranks, iterations } = out.result else { panic!() };
        (ranks, iterations)
    }

    #[test]
    fn agrees_with_oracle() {
        let el = epg_generator::uniform::generate(300, 2400, false, 4);
        let (ranks, _) = run(&el, None);
        let (want, _) = oracle::pagerank(&Csr::from_edge_list(&el), 6e-8, 300);
        for v in 0..want.len() {
            assert!((ranks[v] - want[v]).abs() < 1e-5, "vertex {v}");
        }
    }

    #[test]
    fn ranks_sum_to_one_with_sinks() {
        // Half the vertices are sinks.
        let el = EdgeList::new(6, vec![(0, 3), (1, 4), (2, 5), (0, 1), (1, 2)]);
        let (ranks, _) = run(&el, None);
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
    }

    #[test]
    fn nochange_criterion_iterates_longer_than_l1() {
        let el = epg_generator::uniform::generate(200, 1600, false, 8);
        let (_, iters_l1) = run(&el, Some(StoppingCriterion::paper_default()));
        let (_, iters_nc) = run(&el, Some(StoppingCriterion::NoChange));
        assert!(
            iters_nc >= iters_l1,
            "NoChange ({iters_nc}) should need at least as many iterations as L1 ({iters_l1})"
        );
    }

    #[test]
    fn iteration_cap_respected() {
        let el = epg_generator::uniform::generate(100, 500, false, 1);
        let g = Csr::from_edge_list(&el);
        let gt = g.transpose();
        let pool = ThreadPool::new(1);
        let mut params = RunParams::new(&pool, None);
        params.max_iterations = 3;
        params.stopping = Some(StoppingCriterion::L1Norm(0.0));
        let out = pagerank(&g, &gt, &params);
        assert_eq!(out.result.iterations(), Some(3));
    }
}
