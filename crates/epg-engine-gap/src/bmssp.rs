//! Bounded multi-source shortest paths (BMSSP) — the recursive SSSP
//! kernel of Duan, Mao, Mao, Shu and Yin, "Breaking the Sorting Barrier
//! for Directed Single-Source Shortest Paths" (arXiv:2504.17033).
//!
//! The recursion `bmssp(l, B, S)` completes every vertex whose shortest
//! path stays below the bound `B` and runs through the source set `S`,
//! either fully (returning `B` itself) or partially (returning a smaller
//! bound `B'` under which everything is complete). Each level finds pivot
//! sources via `k` rounds of Bellman-Ford-style relaxation
//! ([`Ctx::find_pivots`]), feeds them to a partial-order block queue
//! ([`PullQueue`]), and repeatedly pulls the smallest batch for the level
//! below; level 0 is a truncated Dijkstra ([`Ctx::base_case`]).
//!
//! Two ports from the paper's real-weight setting to f32 matter here:
//!
//! - **Composite keys.** Every ordering decision uses
//!   `(dist_to_key(d) << 32) | vertex` — the order-preserving f32→u64
//!   mapping from [`crate::radix`] widened with the vertex id. Keys are
//!   totally ordered and distinct per vertex, so tied distances (zero
//!   weights, duplicate weights) cannot stall the bound-shrinking
//!   argument the recursion's termination rests on.
//! - **Tie-robust truncation.** The base case only truncates at a *clean
//!   cut*: after `k+1` settles it keeps settling until the smallest
//!   pending key exceeds the largest settled one, so the returned bound
//!   never strands an equal-distance vertex below itself (all-zero-weight
//!   graphs like `max_dense_zero` exercise exactly this).
//!
//! The adaptive constant-degree preprocessing of the paper (§2) is
//! applied when the graph's maximum out-degree exceeds a small cap: each
//! vertex becomes a zero-weight cycle of slots carrying at most
//! [`CD_FAN`] original out-edges each, with all in-edges retargeted to
//! the head slot; distances map back through the head.

use crate::radix::dist_to_key;
use epg_engine_api::{AlgorithmResult, Counters, RunOutput, Trace};
use epg_graph::{Csr, VertexId, Weight, INF_DIST};
use epg_parallel::ThreadPool;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Expansion trigger: graphs whose maximum out-degree stays at or below
/// this run in place (the "adaptive" half of the preprocessing).
const CD_CAP: usize = 8;
/// Original out-edges carried per slot vertex after expansion.
const CD_FAN: usize = 4;
/// Clamp for `2^(l·t)` block/workload sizes, far above any real level.
const MAX_SHIFT: usize = 30;

// ---------------------------------------------------------------------
// Constant-degree preprocessing
// ---------------------------------------------------------------------

/// Flat adjacency worked on by the recursion: either a plain copy of the
/// CSR or its constant-degree expansion.
struct FlatGraph {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
    /// Original vertex → head slot; `None` when no expansion happened.
    heads: Option<Vec<VertexId>>,
    /// Expanded vertex count.
    n: usize,
}

impl FlatGraph {
    #[inline]
    fn edges(&self, u: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let (lo, hi) = (self.offsets[u as usize], self.offsets[u as usize + 1]);
        self.targets[lo..hi].iter().copied().zip(self.weights[lo..hi].iter().copied())
    }
}

/// Copies or expands `g`. Expansion replaces each vertex with
/// `ceil(out_degree / CD_FAN)` slots joined in a zero-weight cycle; slot
/// `j` carries original out-edges `[j·CD_FAN, (j+1)·CD_FAN)` retargeted
/// to head slots, so every slot has out-degree ≤ CD_FAN + 1 and in-edges
/// concentrate on heads whose distances equal the original vertex's.
fn build_graph(g: &Csr) -> FlatGraph {
    let n = g.num_vertices();
    let max_deg = (0..n).fold(0usize, |m, v| m.max(g.out_degree(v as VertexId)));
    if max_deg <= CD_CAP {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut targets = Vec::with_capacity(g.num_edges());
        let mut weights = Vec::with_capacity(g.num_edges());
        for v in 0..n {
            for (u, w) in g.neighbors_weighted(v as VertexId) {
                targets.push(u);
                weights.push(w);
            }
            offsets.push(targets.len());
        }
        return FlatGraph { offsets, targets, weights, heads: None, n };
    }

    let slot_count = |d: usize| d.div_ceil(CD_FAN).max(1);
    let mut heads: Vec<VertexId> = Vec::with_capacity(n);
    let mut slots = 0usize;
    for v in 0..n {
        heads.push(slots as VertexId);
        slots += slot_count(g.out_degree(v as VertexId));
    }
    let mut offsets = Vec::with_capacity(slots + 1);
    offsets.push(0);
    let mut targets = Vec::new();
    let mut weights = Vec::new();
    for v in 0..n {
        let deg = g.out_degree(v as VertexId);
        let q = slot_count(deg);
        let mut out = g.neighbors_weighted(v as VertexId);
        for j in 0..q {
            for _ in 0..CD_FAN {
                let Some((u, w)) = out.next() else { break };
                targets.push(heads[u as usize]);
                weights.push(w);
            }
            if q > 1 {
                // Zero-weight cycle edge to the next slot (wrapping), so
                // every slot's distance equals the head's.
                let next = heads[v] + ((j + 1) % q) as VertexId;
                targets.push(next);
                weights.push(0.0);
            }
            offsets.push(targets.len());
        }
    }
    FlatGraph { offsets, targets, weights, heads: Some(heads), n: slots }
}

// ---------------------------------------------------------------------
// Partial-order block queue (Lemma 3.3, simplified)
// ---------------------------------------------------------------------

/// Block-list priority structure over composite u64 keys, simplified
/// from the paper's Lemma 3.3: `d0` holds batch-prepended blocks (each
/// batch strictly below everything stored at prepend time, so the block
/// sequence is fully ordered), `d1` holds inserted keys partitioned by
/// exclusive upper bounds with median splits. `pull` removes up to `cap`
/// smallest keys and returns a separating bound. Amortized costs differ
/// from the paper's (blocks stay sorted); the interface and invariants
/// are the ones the recursion needs.
struct PullQueue {
    cap: usize,
    bound: u64,
    d0: VecDeque<Vec<u64>>,
    d1: Vec<Vec<u64>>,
    /// `d1_upper[i]` is the exclusive upper bound of `d1[i]`; ascending,
    /// last always equal to `bound`.
    d1_upper: Vec<u64>,
    len: usize,
}

impl PullQueue {
    fn new(cap: usize, bound: u64) -> PullQueue {
        PullQueue {
            cap: cap.max(1),
            bound,
            d0: VecDeque::new(),
            d1: Vec::new(),
            d1_upper: Vec::new(),
            len: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Smallest stored key, if any (front blocks hold each list's
    /// minimum).
    fn min_key(&self) -> Option<u64> {
        let m0 = self.d0.front().and_then(|b| b.first().copied());
        let m1 = self.d1.first().and_then(|b| b.first().copied());
        match (m0, m1) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// Inserts one key below the bound. A key encodes a (distance,
    /// vertex) pair, so per-block dedup gives the paper's set semantics.
    fn insert(&mut self, key: u64) {
        if key >= self.bound {
            return;
        }
        if self.d1.is_empty() {
            self.d1.push(Vec::new());
            self.d1_upper.push(self.bound);
        }
        // First block whose exclusive upper bound covers the key.
        let i = self.d1_upper.partition_point(|&u| u <= key);
        match self.d1[i].binary_search(&key) {
            Ok(_) => return,
            Err(pos) => self.d1[i].insert(pos, key),
        }
        self.len += 1;
        if self.d1[i].len() > self.cap {
            // Median split; keys are distinct so the boundary is clean.
            let mid = self.d1[i].len() / 2;
            let right = self.d1[i].split_off(mid);
            let boundary = right[0];
            self.d1_upper.insert(i, boundary);
            self.d1.insert(i + 1, right);
        }
    }

    /// Prepends a batch of keys, all strictly smaller than every key
    /// currently stored (the recursion only prepends keys below the
    /// separating bound of the last pull).
    fn batch_prepend(&mut self, mut items: Vec<u64>) {
        items.retain(|&k| k < self.bound);
        items.sort_unstable();
        items.dedup();
        let mut hi = items.len();
        while hi > 0 {
            let lo = hi.saturating_sub(self.cap);
            let chunk = items[lo..hi].to_vec();
            self.len += chunk.len();
            self.d0.push_front(chunk);
            hi = lo;
        }
    }

    /// Removes up to `cap` smallest keys. Returns `(sep, keys)` where
    /// every returned key is ≤ `sep`, every remaining key is ≥ `sep`, and
    /// `sep == bound` exactly when the structure drained.
    fn pull(&mut self) -> (u64, Vec<u64>) {
        // Candidate prefix runs; each is sorted and holds its list's
        // smallest keys, so the global cap-smallest live inside them.
        let mut run0: Vec<u64> = Vec::new();
        while run0.len() < self.cap {
            match self.d0.pop_front() {
                Some(b) => run0.extend_from_slice(&b),
                None => break,
            }
        }
        let mut run1: Vec<u64> = Vec::new();
        let mut popped_upper = self.bound;
        while run1.len() < self.cap && !self.d1.is_empty() {
            run1.extend_from_slice(&self.d1.remove(0));
            popped_upper = self.d1_upper.remove(0);
        }

        // Two-pointer select of the cap smallest; equal keys across the
        // two runs collapse into one pulled copy.
        let mut pulled: Vec<u64> = Vec::with_capacity(self.cap);
        let (mut i, mut j) = (0usize, 0usize);
        let mut consumed = 0usize;
        while pulled.len() < self.cap && (i < run0.len() || j < run1.len()) {
            if i < run0.len() && j < run1.len() && run0[i] == run1[j] {
                pulled.push(run0[i]);
                i += 1;
                j += 1;
                consumed += 2;
            } else if i < run0.len() && (j >= run1.len() || run0[i] < run1[j]) {
                pulled.push(run0[i]);
                i += 1;
                consumed += 1;
            } else {
                pulled.push(run1[j]);
                j += 1;
                consumed += 1;
            }
        }
        self.len -= consumed;

        // Leftover suffixes go back to their own lists (cross-list order
        // is not maintained, per-list order is).
        if i < run0.len() {
            let mut hi = run0.len();
            while hi > i {
                let lo = hi.saturating_sub(self.cap).max(i);
                self.d0.push_front(run0[lo..hi].to_vec());
                hi = lo;
            }
        }
        if j < run1.len() {
            let leftover = &run1[j..];
            let mut blocks: Vec<Vec<u64>> = Vec::new();
            let mut uppers: Vec<u64> = Vec::new();
            let mut at = 0usize;
            while at < leftover.len() {
                let end = (at + self.cap).min(leftover.len());
                blocks.push(leftover[at..end].to_vec());
                uppers.push(if end < leftover.len() { leftover[end] } else { popped_upper });
                at = end;
            }
            // Reinstate as the new prefix of d1.
            blocks.append(&mut self.d1);
            uppers.append(&mut self.d1_upper);
            self.d1 = blocks;
            self.d1_upper = uppers;
        }

        let mut sep = self.bound;
        if let Some(front) = self.d0.front() {
            sep = sep.min(front[0]);
        }
        if let Some(first) = self.d1.first() {
            if let Some(&k) = first.first() {
                sep = sep.min(k);
            }
        }
        (sep, pulled)
    }
}

// ---------------------------------------------------------------------
// The recursion
// ---------------------------------------------------------------------

struct Ctx<'a> {
    g: &'a FlatGraph,
    pool: &'a ThreadPool,
    dist: Vec<Weight>,
    /// Completed = member of exactly one returned U set; distances of
    /// completed vertices are final.
    complete: Vec<bool>,
    /// Stamped membership marks (W sets and forest visits) — stamps make
    /// the arrays reentrant across nested `find_pivots` calls.
    mark: Vec<u64>,
    mark2: Vec<u64>,
    stamp: u64,
    k: usize,
    t: usize,
    counters: Counters,
    completed: u64,
    cancelled: bool,
    poll: u32,
}

impl Ctx<'_> {
    /// Composite ordering key: order-preserving distance bits, then
    /// vertex id. Distinct per vertex, monotone in distance.
    #[inline]
    fn key(&self, v: VertexId) -> u64 {
        (dist_to_key(self.dist[v as usize]) << 32) | v as u64
    }

    #[inline]
    fn poll_cancel(&mut self) -> bool {
        if self.cancelled {
            return true;
        }
        self.poll = self.poll.wrapping_add(1);
        if self.poll & 1023 == 0 && self.pool.is_cancelled() {
            self.cancelled = true;
        }
        self.cancelled
    }

    fn mark_complete(&mut self, v: VertexId) {
        self.complete[v as usize] = true;
        self.completed += 1;
    }

    /// Algorithm 2: truncated Dijkstra from the single source `x` under
    /// bound `b`. Relaxation uses `≤` so vertices whose exact distance a
    /// `find_pivots` round already installed still get queued and settled
    /// (their out-edges must be relaxed onward). Settles through distance
    /// ties (see module docs) so the returned bound is a clean cut: every
    /// vertex reachable below it through `x` is complete.
    fn base_case(&mut self, b: u64, x: VertexId) -> (u64, Vec<VertexId>) {
        self.counters.iterations = self.counters.iterations.saturating_add(1);
        let g = self.g;
        let mut u0: Vec<VertexId> = Vec::new();
        let mut heap: BinaryHeap<Reverse<(u64, VertexId)>> = BinaryHeap::new();
        heap.push(Reverse((self.key(x), x)));
        let mut max_settled = 0u64;
        let mut bp = b;
        while let Some(&Reverse((kk, u))) = heap.peek() {
            if u0.len() > self.k && kk > max_settled {
                // Clean cut: nothing pending ties the settled prefix. The
                // peeked key is the minimum over all remaining entries
                // (stale ones included), so it is an honest bound.
                bp = kk;
                break;
            }
            heap.pop();
            if self.poll_cancel() {
                break;
            }
            if kk >= b || kk != self.key(u) || self.complete[u as usize] {
                continue;
            }
            u0.push(u);
            self.mark_complete(u);
            max_settled = kk;
            let du = self.dist[u as usize];
            for (v, w) in g.edges(u) {
                self.counters.edges_traversed += 1;
                let nd = du + w;
                let dv = self.dist[v as usize];
                if nd < dv {
                    self.dist[v as usize] = nd;
                }
                if nd <= dv && !self.complete[v as usize] {
                    let vk = self.key(v);
                    if vk < b {
                        heap.push(Reverse((vk, v)));
                    }
                }
            }
        }
        (bp, u0)
    }

    /// Algorithm 1: `k` rounds of relaxation from `S`. Returns `(P, W)`:
    /// the pivot sources whose tight-edge trees reach ≥ k vertices (or
    /// all of `S` when `W` outgrew `k·|S|`), and the touched set `W`.
    fn find_pivots(&mut self, b: u64, s: &[VertexId]) -> (Vec<VertexId>, Vec<VertexId>) {
        let g = self.g;
        self.stamp += 1;
        let stamp = self.stamp;
        let mut w: Vec<VertexId> = Vec::new();
        for &x in s {
            if self.mark[x as usize] != stamp {
                self.mark[x as usize] = stamp;
                w.push(x);
            }
        }
        let mut frontier = w.clone();
        let cap = self.k.saturating_mul(s.len().max(1));
        for _ in 0..self.k {
            if frontier.is_empty() || self.poll_cancel() {
                break;
            }
            let mut next: Vec<VertexId> = Vec::new();
            for &u in &frontier {
                let du = self.dist[u as usize];
                for (v, wt) in g.edges(u) {
                    self.counters.edges_traversed += 1;
                    let nd = du + wt;
                    let dv = self.dist[v as usize];
                    if nd < dv {
                        self.dist[v as usize] = nd;
                    }
                    // ≤ keeps ties in W, mirroring the paper's forest.
                    if nd <= dv && self.mark[v as usize] != stamp && self.key(v) < b {
                        self.mark[v as usize] = stamp;
                        next.push(v);
                        w.push(v);
                    }
                }
            }
            if w.len() > cap {
                return (s.to_vec(), w);
            }
            frontier = next;
        }
        // Tight-edge forest over W: BFS from each source over edges that
        // realize current distances, crediting each vertex to one root.
        self.stamp += 1;
        let stamp2 = self.stamp;
        let mut sizes: Vec<usize> = vec![0; s.len()];
        let mut queue: VecDeque<(VertexId, u32)> = VecDeque::new();
        for (i, &x) in s.iter().enumerate() {
            if self.mark2[x as usize] != stamp2 {
                self.mark2[x as usize] = stamp2;
                queue.push_back((x, i as u32));
            }
        }
        while let Some((u, ri)) = queue.pop_front() {
            sizes[ri as usize] += 1;
            let du = self.dist[u as usize];
            for (v, wt) in g.edges(u) {
                if self.mark[v as usize] == stamp
                    && self.mark2[v as usize] != stamp2
                    && self.dist[v as usize] == du + wt
                {
                    self.mark2[v as usize] = stamp2;
                    queue.push_back((v, ri));
                }
            }
        }
        let p: Vec<VertexId> =
            s.iter().enumerate().filter(|&(i, _)| sizes[i] >= self.k).map(|(_, &x)| x).collect();
        (p, w)
    }

    /// Algorithm 3: the main recursion.
    fn bmssp(&mut self, l: usize, b: u64, s: Vec<VertexId>) -> (u64, Vec<VertexId>) {
        if self.cancelled {
            return (b, Vec::new());
        }
        if l == 0 {
            debug_assert!(s.len() <= 1, "level-0 sources are singletons (pull cap is 1)");
            return match s.first() {
                None => (b, Vec::new()),
                Some(&x) => self.base_case(b, x),
            };
        }
        self.counters.iterations = self.counters.iterations.saturating_add(1);
        let g = self.g;
        let (p, w) = self.find_pivots(b, &s);
        let m_cap = 1usize << ((l - 1) * self.t).min(MAX_SHIFT);
        let target = self.k.saturating_mul(1usize << (l * self.t).min(MAX_SHIFT));
        let mut d = PullQueue::new(m_cap, b);
        for &x in &p {
            if !self.complete[x as usize] {
                d.insert(self.key(x));
            }
        }
        let mut u_all: Vec<VertexId> = Vec::new();
        let mut bprime = b;
        while !d.is_empty() {
            if self.poll_cancel() {
                break;
            }
            let (bi, pulled) = d.pull();
            // Live, incomplete members only; a key is live when its
            // distance bits still match the vertex's tentative distance.
            let mut si: Vec<VertexId> = Vec::with_capacity(pulled.len());
            for &kk in &pulled {
                let v = (kk & 0xffff_ffff) as VertexId;
                if kk == self.key(v) && !self.complete[v as usize] {
                    si.push(v);
                }
            }
            let (bpi, ui) = self.bmssp(l - 1, bi, si.clone());
            // Relax out-edges of the newly completed set. `≤` matters:
            // the recursion may already have installed this exact
            // distance, but the parent still owns requeueing the vertex.
            let mut prepend: Vec<u64> = Vec::new();
            for &u in &ui {
                let du = self.dist[u as usize];
                for (v, wt) in g.edges(u) {
                    self.counters.edges_traversed += 1;
                    let nd = du + wt;
                    let dv = self.dist[v as usize];
                    if nd < dv {
                        self.dist[v as usize] = nd;
                    }
                    if nd <= dv && !self.complete[v as usize] {
                        let vk = self.key(v);
                        if vk >= bpi && vk < bi {
                            prepend.push(vk);
                        } else {
                            // Covers the paper's [B_i, B) insert range
                            // (insert() drops keys ≥ b itself) and, below
                            // bpi, a safety net for same-distance-bits
                            // ties the child's bound may sit above; the
                            // partial-exit bound accounts for them via
                            // min_key().
                            d.insert(vk);
                        }
                    }
                }
            }
            // Sources the child truncated out stay pending.
            for &x in &si {
                if !self.complete[x as usize] {
                    let xk = self.key(x);
                    if xk >= bpi && xk < bi {
                        prepend.push(xk);
                    }
                }
            }
            d.batch_prepend(prepend);
            u_all.extend_from_slice(&ui);
            if u_all.len() > target {
                // Partial execution: the workload bound tripped. The
                // returned bound must sit below every key still pending,
                // child's bound and abandoned queue entries alike.
                bprime = d.min_key().map_or(bpi, |m| m.min(bpi));
                break;
            }
        }
        // Vertices the pivot search itself settled (within k relaxation
        // hops of S) that fall under the final bound.
        for &x in &w {
            if !self.complete[x as usize] && self.key(x) < bprime {
                self.mark_complete(x);
                u_all.push(x);
            }
        }
        (bprime, u_all)
    }
}

/// Runs BMSSP from `root`. The pool is used for cooperative cancellation
/// polling only — the kernel is single-threaded and its trace records a
/// serial region, like [`crate::radix::dijkstra_radix_heap`].
pub fn bmssp_sssp(g: &Csr, root: VertexId, pool: &ThreadPool) -> RunOutput {
    let n = g.num_vertices();
    let mut counters = Counters::default();
    let mut trace = Trace::default();
    if n == 0 {
        trace.serial(1, 0);
        return RunOutput::new(AlgorithmResult::Distances(Vec::new()), counters, trace);
    }
    let fg = build_graph(g);
    let np = fg.n;
    // Paper constants on the (possibly expanded) vertex count: k = the
    // pivot-tree threshold, t = the per-level branching exponent, and
    // ⌈log n / t⌉ recursion levels so k·2^{L·t} ≥ n and the top-level
    // call can never exit partially.
    let lg = (np.max(2) as f64).log2();
    let k = (lg.powf(1.0 / 3.0).floor() as usize).max(1);
    let t = (lg.powf(2.0 / 3.0).floor() as usize).max(1);
    let top = ((lg / t as f64).ceil() as usize).max(1);
    let src = fg.heads.as_ref().map_or(root, |h| h[root as usize]);
    let mut ctx = Ctx {
        g: &fg,
        pool,
        dist: vec![INF_DIST; np],
        complete: vec![false; np],
        mark: vec![0; np],
        mark2: vec![0; np],
        stamp: 0,
        k,
        t,
        counters: Counters::default(),
        completed: 0,
        cancelled: false,
        poll: 0,
    };
    ctx.dist[src as usize] = 0.0;
    ctx.bmssp(top, u64::MAX, vec![src]);

    let out: Vec<Weight> = match &fg.heads {
        None => ctx.dist,
        Some(h) => (0..n).map(|v| ctx.dist[h[v] as usize]).collect(),
    };
    counters = ctx.counters;
    counters.vertices_touched = ctx.completed;
    counters.bytes_read = counters.edges_traversed * 12;
    counters.bytes_written = ctx.completed * 8;
    counters.iterations = counters.iterations.max(1);
    trace.serial(counters.edges_traversed.max(1), counters.bytes_read + ctx.completed * 8);
    RunOutput::new(AlgorithmResult::Distances(out), counters, trace).cancelled(ctx.cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::{oracle, EdgeList};

    fn assert_exact(el: &EdgeList, root: VertexId) {
        let g = Csr::from_edge_list(el);
        let pool = ThreadPool::new(2);
        let out = bmssp_sssp(&g, root, &pool);
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        let want = oracle::dijkstra(&g, root);
        assert_eq!(d.len(), want.len());
        for v in 0..want.len() {
            assert_eq!(d[v].to_bits(), want[v].to_bits(), "vertex {v}: {} vs {}", d[v], want[v]);
        }
    }

    #[test]
    fn matches_dijkstra_exactly_on_random_graph() {
        assert_exact(&epg_generator::uniform::generate(300, 2400, true, 21).symmetrized(), 7);
    }

    #[test]
    fn matches_on_low_degree_graph_without_expansion() {
        // A path stays below CD_CAP, so no expansion happens.
        let el = EdgeList::weighted(
            6,
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (0, 5), (5, 4)],
            vec![1.0, 0.5, 0.25, 2.0, 0.1, 0.1],
        );
        let g = Csr::from_edge_list(&el);
        assert!(build_graph(&g).heads.is_none());
        assert_exact(&el, 0);
    }

    #[test]
    fn expansion_triggers_on_high_degree_hub_and_stays_exact() {
        // Star hub with out-degree 40 > CD_CAP: heads mapping kicks in.
        let edges: Vec<(VertexId, VertexId)> = (1..41).map(|v| (0, v)).collect();
        let weights: Vec<f32> = (1..41).map(|v| v as f32 * 0.125).collect();
        let el = EdgeList::weighted(41, edges, weights);
        let g = Csr::from_edge_list(&el);
        let fg = build_graph(&g);
        assert!(fg.heads.is_some());
        assert!(fg.n > 41, "hub must expand into multiple slots");
        assert_exact(&el, 0);
    }

    #[test]
    fn all_zero_weights_terminate_and_match() {
        // Dense all-pairs zero-weight graph: every distance ties at 0.0 —
        // the composite-key clean-cut rule is what makes this terminate.
        let n = 12u32;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let m = edges.len();
        let el = EdgeList::weighted(n as usize, edges, vec![0.0; m]);
        assert_exact(&el, 3);
    }

    #[test]
    fn disconnected_vertices_stay_infinite() {
        let el = EdgeList::weighted(5, vec![(0, 1)], vec![2.5]);
        let g = Csr::from_edge_list(&el);
        let pool = ThreadPool::new(1);
        let out = bmssp_sssp(&g, 0, &pool);
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        assert_eq!(d[1], 2.5);
        assert!(d[2].is_infinite() && d[3].is_infinite() && d[4].is_infinite());
        assert!(out.counters.iterations >= 1);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Csr::from_edge_list(&EdgeList::new(0, vec![]));
        let pool = ThreadPool::new(1);
        let out = bmssp_sssp(&g, 0, &pool);
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        assert!(d.is_empty());
    }

    // Model check: the block queue behaves like a sorted set under a
    // scripted insert / batch_prepend / pull interleaving.
    #[test]
    fn pull_queue_matches_sorted_set_model() {
        let bound = 1_000u64;
        for cap in [1usize, 2, 3, 7] {
            let mut q = PullQueue::new(cap, bound);
            let mut model: Vec<u64> = Vec::new();
            let push = |q: &mut PullQueue, model: &mut Vec<u64>, k: u64| {
                q.insert(k);
                if k < bound && !model.contains(&k) {
                    model.push(k);
                }
            };
            for k in [500, 320, 900, 44, 701, 320, 999, 1_000, 1_200, 45, 46, 47, 48] {
                push(&mut q, &mut model, k);
            }
            // First pull takes the cap smallest.
            model.sort_unstable();
            let (sep1, got) = q.pull();
            let take = cap.min(model.len());
            assert_eq!(got, model[..take].to_vec());
            let mut rest = model[take..].to_vec();
            assert!(got.iter().all(|&k| k <= sep1));
            assert!(rest.iter().all(|&k| k >= sep1));
            // Prepend strictly below everything remaining, then drain.
            let batch: Vec<u64> = vec![1, 2, 3];
            for &k in &batch {
                assert!(rest.iter().all(|&r| r > k));
            }
            q.batch_prepend(batch.clone());
            rest.splice(0..0, batch);
            let mut drained: Vec<u64> = Vec::new();
            while !q.is_empty() {
                let before = drained.len();
                let (sep, got) = q.pull();
                assert!(got.iter().all(|&k| k <= sep));
                drained.extend(got);
                assert!(drained.len() > before, "pull must make progress");
            }
            assert_eq!(drained, rest, "cap {cap}");
            let (sep, empty) = q.pull();
            assert_eq!((sep, empty.len()), (bound, 0));
        }
    }
}
