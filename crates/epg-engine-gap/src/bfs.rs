//! Direction-optimizing BFS (Beamer, Asanović, Patterson, SC'12).
//!
//! The hybrid algorithm the paper credits for GAP's BFS lead (§IV-C):
//! top-down steps expand a sliding-queue frontier; once the frontier's
//! outgoing edge count exceeds `edges_unexplored / α` the search flips to
//! bottom-up steps, where every unvisited vertex scans its in-neighbors for
//! a frontier member; it flips back once the frontier shrinks below
//! `n / β`. Defaults α = 15, β = 18 (§IV-C).

use crate::structures::{Bitmap, SlidingQueue};
use crate::GapConfig;
use epg_engine_api::{
    AlgorithmResult, Counters, DeltaTracker, Dir, RecorderCtx, RunOutput, Tracer,
};
use epg_graph::{Csr, VertexId, NO_VERTEX};
use epg_parallel::{Schedule, ThreadPool};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Runs direction-optimizing BFS from `root`. `g` holds out-edges, `gt`
/// in-edges (identical for symmetric graphs). `rec` is the telemetry
/// sink; per-step events carry the frontier size and whether the step
/// ran push (top-down), pull (bottom-up), or was the hybrid switch.
pub fn direction_optimizing_bfs(
    g: &Csr,
    gt: &Csr,
    root: VertexId,
    pool: &ThreadPool,
    cfg: &GapConfig,
    rec: RecorderCtx<'_>,
) -> RunOutput {
    let n = g.num_vertices();
    let m = g.num_edges() as u64;
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NO_VERTEX)).collect();
    let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    parent[root as usize].store(root, Ordering::Relaxed);
    level[root as usize].store(0, Ordering::Relaxed);
    rec.alloc_hwm("gap.bfs.parent+level", n as u64 * 8);

    let mut queue = SlidingQueue::new();
    queue.push(root);
    queue.slide_window();

    let mut counters = Counters::default();
    let mut trace = Tracer::new(rec);
    let mut deltas = DeltaTracker::new();
    let mut depth = 0u32;
    let mut edges_to_check = m;
    let mut scout = g.out_degree(root) as u64;
    let mut bitmaps_reported = false;
    let mut cancelled = false;

    while !queue.window_is_empty() {
        if pool.is_cancelled() {
            cancelled = true;
            break;
        }
        if cfg.direction_optimizing && scout > edges_to_check / cfg.alpha.max(1) {
            // ---- bottom-up phase ----
            let mut front = Bitmap::new(n);
            for &v in queue.window() {
                front.set(v as usize);
            }
            if !bitmaps_reported {
                bitmaps_reported = true;
                rec.alloc_hwm("gap.bfs.bitmaps", 2 * n.div_ceil(8) as u64);
            }
            let mut awake = queue.window_len() as u64;
            let mut switched = true;
            loop {
                depth += 1;
                let old_awake = awake;
                let next = Bitmap::new(n);
                let (new_awake, scanned, max_scan) =
                    bottom_up_step(gt, &parent, &level, &front, &next, depth, pool);
                awake = new_awake;
                counters.edges_traversed += scanned;
                counters.vertices_touched += awake;
                // Span is the largest *actual* per-vertex scan: bottom-up
                // stops at the first frontier neighbor, so hubs rarely pay
                // their full in-degree — the reason direction-optimized BFS
                // keeps scaling (Fig. 5).
                trace.parallel(scanned.max(1), max_scan.max(1), scanned * 8 + awake * 8);
                deltas.flush("iteration", &counters, rec);
                // The step that flipped the direction is the hybrid
                // switch; subsequent bottom-up steps are plain pulls.
                rec.iteration(depth, old_awake, if switched { Dir::Hybrid } else { Dir::Pull });
                switched = false;
                front = next;
                if awake == 0 || pool.is_cancelled() {
                    break;
                }
                // GAP keeps going bottom-up while the frontier still grows
                // or remains above n / β.
                if !(awake >= old_awake || awake > n as u64 / cfg.beta.max(1)) {
                    break;
                }
            }
            // Convert the bitmap frontier back into the sliding queue.
            queue.refill_pending(front.iter_ones().map(|v| v as VertexId));
            queue.slide_window();
            scout = 1;
        } else {
            // ---- top-down step ----
            depth += 1;
            let frontier = queue.window_len() as u64;
            let (checked, new_scout, max_deg, discovered) =
                top_down_step(g, &parent, &level, &mut queue, depth, pool);
            counters.edges_traversed += checked;
            counters.vertices_touched += discovered;
            edges_to_check = edges_to_check.saturating_sub(checked);
            scout = new_scout;
            trace.parallel(checked.max(1), max_deg.max(1), checked * 8 + discovered * 12);
            deltas.flush("iteration", &counters, rec);
            rec.iteration(depth, frontier, Dir::Push);
            queue.slide_window();
        }
        counters.iterations += 1;
    }

    counters.bytes_read = counters.edges_traversed * 8;
    counters.bytes_written = counters.vertices_touched * 12;
    deltas.flush("finalize", &counters, rec);
    parent[root as usize].store(NO_VERTEX, Ordering::Relaxed);
    let parent: Vec<VertexId> = parent.iter().map(|p| p.load(Ordering::Relaxed)).collect();
    let level: Vec<u32> = level.iter().map(|l| l.load(Ordering::Relaxed)).collect();
    RunOutput::new(AlgorithmResult::BfsTree { parent, level }, counters, trace.into_trace())
        .cancelled(cancelled)
}

/// One top-down step. Returns (edges checked, scout count = out-degrees of
/// newly discovered vertices, max frontier degree, vertices discovered).
fn top_down_step(
    g: &Csr,
    parent: &[AtomicU32],
    level: &[AtomicU32],
    queue: &mut SlidingQueue,
    depth: u32,
    pool: &ThreadPool,
) -> (u64, u64, u64, u64) {
    let window = queue.window().to_vec();
    let checked = AtomicU64::new(0);
    let scout = AtomicU64::new(0);
    let max_deg = AtomicU64::new(0);
    let discovered: Mutex<Vec<VertexId>> = Mutex::new(Vec::new());
    pool.parallel_for_ranges(window.len(), Schedule::Guided { min_chunk: 16 }, |_tid, lo, hi| {
        let mut local: Vec<VertexId> = Vec::with_capacity(hi - lo);
        let mut local_checked = 0u64;
        let mut local_scout = 0u64;
        let mut local_max = 0u64;
        for &u in &window[lo..hi] {
            local_max = local_max.max(g.out_degree(u) as u64);
            for &v in g.neighbors(u) {
                local_checked += 1;
                if parent[v as usize].load(Ordering::Relaxed) == NO_VERTEX
                    && parent[v as usize]
                        .compare_exchange(NO_VERTEX, u, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    level[v as usize].store(depth, Ordering::Relaxed);
                    local_scout += g.out_degree(v) as u64;
                    local.push(v);
                }
            }
        }
        checked.fetch_add(local_checked, Ordering::Relaxed);
        scout.fetch_add(local_scout, Ordering::Relaxed);
        max_deg.fetch_max(local_max, Ordering::Relaxed);
        if !local.is_empty() {
            discovered.lock().append(&mut local);
        }
    });
    let discovered = discovered.into_inner();
    let count = discovered.len() as u64;
    queue.push_all(&discovered);
    (
        checked.load(Ordering::Relaxed),
        scout.load(Ordering::Relaxed),
        max_deg.load(Ordering::Relaxed),
        count,
    )
}

/// One bottom-up step. Returns (vertices awakened, edges scanned, largest
/// single-vertex scan).
fn bottom_up_step(
    gt: &Csr,
    parent: &[AtomicU32],
    level: &[AtomicU32],
    front: &Bitmap,
    next: &Bitmap,
    depth: u32,
    pool: &ThreadPool,
) -> (u64, u64, u64) {
    let n = gt.num_vertices();
    let awake = AtomicU64::new(0);
    let scanned = AtomicU64::new(0);
    let max_scan = AtomicU64::new(0);
    pool.parallel_for_ranges(n, Schedule::Guided { min_chunk: 64 }, |_tid, lo, hi| {
        let mut local_awake = 0u64;
        let mut local_scanned = 0u64;
        let mut local_max = 0u64;
        for v in lo..hi {
            if parent[v].load(Ordering::Relaxed) != NO_VERTEX {
                continue;
            }
            let mut this_scan = 0u64;
            for &u in gt.neighbors(v as VertexId) {
                this_scan += 1;
                if front.get(u as usize) {
                    // Single writer per v: no CAS needed bottom-up.
                    parent[v].store(u, Ordering::Relaxed);
                    level[v].store(depth, Ordering::Relaxed);
                    next.set(v);
                    local_awake += 1;
                    break;
                }
            }
            local_scanned += this_scan;
            local_max = local_max.max(this_scan);
        }
        awake.fetch_add(local_awake, Ordering::Relaxed);
        scanned.fetch_add(local_scanned, Ordering::Relaxed);
        max_scan.fetch_max(local_max, Ordering::Relaxed);
    });
    (
        awake.load(Ordering::Relaxed),
        scanned.load(Ordering::Relaxed),
        max_scan.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_graph::{oracle, EdgeList};

    fn run_both_ways(el: &EdgeList, root: VertexId) {
        let g = Csr::from_edge_list(el);
        let gt = g.transpose();
        let pool = ThreadPool::new(4);
        let want = oracle::bfs(&g, root);
        for dir_opt in [false, true] {
            let cfg = GapConfig { direction_optimizing: dir_opt, ..Default::default() };
            let out = direction_optimizing_bfs(&g, &gt, root, &pool, &cfg, RecorderCtx::none());
            let AlgorithmResult::BfsTree { parent, level } = out.result else { panic!() };
            assert_eq!(level, want.level, "dir_opt={dir_opt}");
            epg_graph::validate::validate_bfs_tree(&g, root, &parent).unwrap();
        }
    }

    #[test]
    fn correct_on_dense_graph_forcing_bottom_up() {
        // Dense random graph: the α heuristic flips to bottom-up quickly.
        let el = epg_generator::uniform::generate(256, 12_000, false, 3).symmetrized();
        run_both_ways(&el, 0);
    }

    #[test]
    fn correct_on_long_path_staying_top_down() {
        let edges: Vec<_> = (0..999).map(|i| (i as VertexId, i as VertexId + 1)).collect();
        let el = EdgeList::new(1000, edges).symmetrized();
        run_both_ways(&el, 17);
    }

    #[test]
    fn single_vertex_graph() {
        // A root with a single self-loop and no other edges.
        let el = EdgeList::new(2, vec![(0, 1), (1, 0)]);
        run_both_ways(&el, 0);
    }

    #[test]
    fn trace_records_steps() {
        let el = epg_generator::uniform::generate(128, 1024, false, 5).symmetrized();
        let g = Csr::from_edge_list(&el);
        let gt = g.transpose();
        let pool = ThreadPool::new(2);
        let out =
            direction_optimizing_bfs(&g, &gt, 0, &pool, &GapConfig::default(), RecorderCtx::none());
        // Each BFS step records one region; a bottom-up phase may record
        // several steps under a single outer iteration.
        assert!(out.trace.records.len() as u32 >= out.counters.iterations);
        assert!(out.trace.records.iter().all(|r| r.parallel));
    }
}
