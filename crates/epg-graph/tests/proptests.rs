#![allow(clippy::needless_range_loop)]

//! Property-based tests for the graph substrate.

use epg_graph::{csr::Csr, dcsc::Dcsc, degree, oracle, snap, validate, EdgeList, VertexId};
use proptest::prelude::*;

/// Strategy: an arbitrary directed graph as (n, edges) with n in 1..=40.
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (1usize..=40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..200)
            .prop_map(move |edges| EdgeList::new(n, edges))
    })
}

/// Strategy: weighted graph with positive finite weights.
fn arb_weighted_graph() -> impl Strategy<Value = EdgeList> {
    (1usize..=30).prop_flat_map(|n| {
        proptest::collection::vec(((0..n as VertexId, 0..n as VertexId), 0.01f32..10.0), 0..150)
            .prop_map(move |ews| {
                let (edges, weights): (Vec<_>, Vec<_>) = ews.into_iter().unzip();
                EdgeList::weighted(n, edges, weights)
            })
    })
}

fn edge_multiset(el: &EdgeList) -> Vec<(VertexId, VertexId, u32)> {
    let mut v: Vec<_> = el.iter().map(|(u, w, x)| (u, w, x.to_bits())).collect();
    v.sort_unstable();
    v
}

proptest! {
    #[test]
    fn csr_roundtrip_preserves_edges(el in arb_weighted_graph()) {
        let g = Csr::from_edge_list(&el);
        prop_assert_eq!(edge_multiset(&g.to_edge_list()), edge_multiset(&el));
    }

    #[test]
    fn csr_degrees_sum_to_edge_count(el in arb_graph()) {
        let g = Csr::from_edge_list(&el);
        let total: usize = (0..g.num_vertices() as VertexId).map(|v| g.out_degree(v)).sum();
        prop_assert_eq!(total, el.num_edges());
    }

    #[test]
    fn transpose_is_involution(el in arb_weighted_graph()) {
        let g = Csr::from_edge_list(&el);
        let mut tt = g.transpose().transpose();
        let mut gg = g.clone();
        tt.sort_adjacency();
        gg.sort_adjacency();
        prop_assert_eq!(tt, gg);
    }

    #[test]
    fn dcsc_matches_csr_after_dedup(el in arb_weighted_graph()) {
        let m = Dcsc::from_edge_list(&el);
        // DCSC dedups (r,c); compare against deduped set of (src,dst).
        let mut expect: Vec<(VertexId, VertexId)> = el.edges.clone();
        expect.sort_unstable();
        expect.dedup();
        let mut got: Vec<(VertexId, VertexId)> =
            m.triples().map(|(r, c, _)| (c, r)).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn symmetrized_total_degree_even_without_loops(el in arb_graph()) {
        let sym = el.deduplicated().symmetrized();
        let g = Csr::from_edge_list(&sym);
        // In a symmetric loop-free graph, in-degree == out-degree everywhere.
        let t = g.transpose();
        for v in 0..g.num_vertices() as VertexId {
            prop_assert_eq!(g.out_degree(v), t.out_degree(v));
        }
    }

    #[test]
    fn snap_text_roundtrip(el in arb_weighted_graph()) {
        let mut buf = Vec::new();
        snap::write_snap(&el, "prop", &mut buf).unwrap();
        let back = snap::parse_snap(buf.as_slice()).unwrap();
        prop_assert_eq!(back.edges.clone(), el.edges.clone());
        // Weights survive text round-trip exactly (Rust prints the shortest
        // representation that reparses to the same f32). An empty file has
        // no data lines, so weightedness cannot be recovered.
        if el.num_edges() == 0 {
            prop_assert_eq!(back.weights, None);
        } else {
            prop_assert_eq!(back.weights, el.weights);
        }
    }

    #[test]
    fn binary_roundtrip(el in arb_weighted_graph()) {
        let mut buf = Vec::new();
        snap::write_binary(&el, &mut buf).unwrap();
        let back = snap::read_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(back, el);
    }

    #[test]
    fn oracle_bfs_tree_always_validates(el in arb_graph()) {
        let sym = el.deduplicated().symmetrized();
        if sym.num_edges() == 0 { return Ok(()); }
        let g = Csr::from_edge_list(&sym);
        let root = sym.edges[0].0;
        let r = oracle::bfs(&g, root);
        prop_assert!(validate::validate_bfs_tree(&g, root, &r.parent).is_ok());
    }

    #[test]
    fn oracle_dijkstra_always_validates(el in arb_weighted_graph()) {
        let sym = el.symmetrized();
        if sym.num_edges() == 0 { return Ok(()); }
        let g = Csr::from_edge_list(&sym);
        let root = sym.edges[0].0;
        let d = oracle::dijkstra(&g, root);
        prop_assert!(validate::validate_sssp_distances(&g, root, &d).is_ok());
    }

    #[test]
    fn bfs_levels_lower_bound_dijkstra_hops(el in arb_graph()) {
        // On unit weights, dijkstra == bfs levels.
        let sym = el.deduplicated().symmetrized();
        if sym.num_edges() == 0 { return Ok(()); }
        let g = Csr::from_edge_list(&sym);
        let root = sym.edges[0].0;
        let b = oracle::bfs(&g, root);
        let d = oracle::dijkstra(&g, root);
        for v in 0..g.num_vertices() {
            if b.level[v] != u32::MAX {
                prop_assert!((d[v] - b.level[v] as f32).abs() < 1e-3);
            } else {
                prop_assert!(d[v].is_infinite());
            }
        }
    }

    #[test]
    fn wcc_is_a_partition_refinable_by_edges(el in arb_graph()) {
        let g = Csr::from_edge_list(&el);
        let comp = oracle::wcc(&g);
        for &(u, v) in &el.edges {
            prop_assert_eq!(comp[u as usize], comp[v as usize]);
        }
        // Component id is min member.
        for (v, &c) in comp.iter().enumerate() {
            prop_assert!(c as usize <= v);
        }
    }

    #[test]
    fn pagerank_is_a_distribution(el in arb_graph()) {
        let g = Csr::from_edge_list(&el);
        let (pr, _) = oracle::pagerank(&g, 1e-9, 300);
        let sum: f64 = pr.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {}", sum);
        prop_assert!(pr.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn lcc_in_unit_interval(el in arb_graph()) {
        let g = Csr::from_edge_list(&el.deduplicated());
        for c in oracle::lcc(&g) {
            prop_assert!((0.0..=1.0).contains(&c), "lcc = {}", c);
        }
    }

    #[test]
    fn sampled_roots_qualify(el in arb_graph(), seed in 0u64..1000) {
        let roots = degree::sample_roots(&el, 8, seed);
        let deg = el.total_degrees();
        for r in roots {
            prop_assert!(deg[r as usize] > 1);
        }
    }
}

proptest! {
    #[test]
    fn betweenness_is_nonnegative_and_zero_on_leaves(el in arb_graph()) {
        let sym = el.deduplicated().symmetrized();
        let g = Csr::from_edge_list(&sym);
        let bc = oracle::betweenness(&g);
        let deg = sym.total_degrees();
        for (v, &score) in bc.iter().enumerate() {
            prop_assert!(score >= 0.0);
            // A vertex of (symmetric) degree <= 1 lies on no shortest path
            // between two *other* vertices.
            if deg[v] <= 2 && g.out_degree(v as VertexId) <= 1 {
                prop_assert_eq!(score, 0.0, "leaf {} has bc {}", v, score);
            }
        }
    }

    #[test]
    fn triangle_count_invariant_under_edge_permutation(el in arb_graph(), seed in 0u64..100) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let base = oracle::triangle_count(&Csr::from_edge_list(&el));
        let mut shuffled = el.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        shuffled.edges.shuffle(&mut rng);
        prop_assert_eq!(base, oracle::triangle_count(&Csr::from_edge_list(&shuffled)));
        // Symmetrizing (no new undirected edges) keeps the count too.
        prop_assert_eq!(
            base,
            oracle::triangle_count(&Csr::from_edge_list(&el.symmetrized()))
        );
    }

    #[test]
    fn triangle_count_monotone_in_edges(el in arb_graph()) {
        // Removing edges can only remove triangles.
        if el.num_edges() < 2 { return Ok(()); }
        let full = oracle::triangle_count(&Csr::from_edge_list(&el));
        let mut half = el.clone();
        half.edges.truncate(el.num_edges() / 2);
        let fewer = oracle::triangle_count(&Csr::from_edge_list(&half));
        prop_assert!(fewer <= full, "{} > {}", fewer, full);
    }
}
