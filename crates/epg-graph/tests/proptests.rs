#![allow(clippy::needless_range_loop)]

//! Property-based tests for the graph substrate.

use epg_graph::{csr::Csr, dcsc::Dcsc, degree, oracle, snap, validate, EdgeList, VertexId};
use proptest::prelude::*;

/// Strategy: an arbitrary directed graph as (n, edges) with n in 1..=40.
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (1usize..=40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..200)
            .prop_map(move |edges| EdgeList::new(n, edges))
    })
}

/// Strategy: weighted graph with positive finite weights.
fn arb_weighted_graph() -> impl Strategy<Value = EdgeList> {
    (1usize..=30).prop_flat_map(|n| {
        proptest::collection::vec(((0..n as VertexId, 0..n as VertexId), 0.01f32..10.0), 0..150)
            .prop_map(move |ews| {
                let (edges, weights): (Vec<_>, Vec<_>) = ews.into_iter().unzip();
                EdgeList::weighted(n, edges, weights)
            })
    })
}

fn edge_multiset(el: &EdgeList) -> Vec<(VertexId, VertexId, u32)> {
    let mut v: Vec<_> = el.iter().map(|(u, w, x)| (u, w, x.to_bits())).collect();
    v.sort_unstable();
    v
}

proptest! {
    #[test]
    fn csr_roundtrip_preserves_edges(el in arb_weighted_graph()) {
        let g = Csr::from_edge_list(&el);
        prop_assert_eq!(edge_multiset(&g.to_edge_list()), edge_multiset(&el));
    }

    #[test]
    fn csr_degrees_sum_to_edge_count(el in arb_graph()) {
        let g = Csr::from_edge_list(&el);
        let total: usize = (0..g.num_vertices() as VertexId).map(|v| g.out_degree(v)).sum();
        prop_assert_eq!(total, el.num_edges());
    }

    #[test]
    fn transpose_is_involution(el in arb_weighted_graph()) {
        let g = Csr::from_edge_list(&el);
        let mut tt = g.transpose().transpose();
        let mut gg = g.clone();
        tt.sort_adjacency();
        gg.sort_adjacency();
        prop_assert_eq!(tt, gg);
    }

    #[test]
    fn dcsc_matches_csr_after_dedup(el in arb_weighted_graph()) {
        let m = Dcsc::from_edge_list(&el);
        // DCSC dedups (r,c); compare against deduped set of (src,dst).
        let mut expect: Vec<(VertexId, VertexId)> = el.edges.clone();
        expect.sort_unstable();
        expect.dedup();
        let mut got: Vec<(VertexId, VertexId)> =
            m.triples().map(|(r, c, _)| (c, r)).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn symmetrized_total_degree_even_without_loops(el in arb_graph()) {
        let sym = el.deduplicated().symmetrized();
        let g = Csr::from_edge_list(&sym);
        // In a symmetric loop-free graph, in-degree == out-degree everywhere.
        let t = g.transpose();
        for v in 0..g.num_vertices() as VertexId {
            prop_assert_eq!(g.out_degree(v), t.out_degree(v));
        }
    }

    #[test]
    fn snap_text_roundtrip(el in arb_weighted_graph()) {
        let mut buf = Vec::new();
        snap::write_snap(&el, "prop", &mut buf).unwrap();
        let back = snap::parse_snap(buf.as_slice()).unwrap();
        prop_assert_eq!(back.edges.clone(), el.edges.clone());
        // Weights survive text round-trip exactly (Rust prints the shortest
        // representation that reparses to the same f32). An empty file has
        // no data lines, so weightedness cannot be recovered.
        if el.num_edges() == 0 {
            prop_assert_eq!(back.weights, None);
        } else {
            prop_assert_eq!(back.weights, el.weights);
        }
    }

    #[test]
    fn binary_roundtrip(el in arb_weighted_graph()) {
        let mut buf = Vec::new();
        snap::write_binary(&el, &mut buf).unwrap();
        let back = snap::read_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(back, el);
    }

    #[test]
    fn oracle_bfs_tree_always_validates(el in arb_graph()) {
        let sym = el.deduplicated().symmetrized();
        if sym.num_edges() == 0 { return Ok(()); }
        let g = Csr::from_edge_list(&sym);
        let root = sym.edges[0].0;
        let r = oracle::bfs(&g, root);
        prop_assert!(validate::validate_bfs_tree(&g, root, &r.parent).is_ok());
    }

    #[test]
    fn oracle_dijkstra_always_validates(el in arb_weighted_graph()) {
        let sym = el.symmetrized();
        if sym.num_edges() == 0 { return Ok(()); }
        let g = Csr::from_edge_list(&sym);
        let root = sym.edges[0].0;
        let d = oracle::dijkstra(&g, root);
        prop_assert!(validate::validate_sssp_distances(&g, root, &d).is_ok());
    }

    #[test]
    fn bfs_levels_lower_bound_dijkstra_hops(el in arb_graph()) {
        // On unit weights, dijkstra == bfs levels.
        let sym = el.deduplicated().symmetrized();
        if sym.num_edges() == 0 { return Ok(()); }
        let g = Csr::from_edge_list(&sym);
        let root = sym.edges[0].0;
        let b = oracle::bfs(&g, root);
        let d = oracle::dijkstra(&g, root);
        for v in 0..g.num_vertices() {
            if b.level[v] != u32::MAX {
                prop_assert!((d[v] - b.level[v] as f32).abs() < 1e-3);
            } else {
                prop_assert!(d[v].is_infinite());
            }
        }
    }

    #[test]
    fn wcc_is_a_partition_refinable_by_edges(el in arb_graph()) {
        let g = Csr::from_edge_list(&el);
        let comp = oracle::wcc(&g);
        for &(u, v) in &el.edges {
            prop_assert_eq!(comp[u as usize], comp[v as usize]);
        }
        // Component id is min member.
        for (v, &c) in comp.iter().enumerate() {
            prop_assert!(c as usize <= v);
        }
    }

    #[test]
    fn pagerank_is_a_distribution(el in arb_graph()) {
        let g = Csr::from_edge_list(&el);
        let (pr, _) = oracle::pagerank(&g, 1e-9, 300);
        let sum: f64 = pr.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {}", sum);
        prop_assert!(pr.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn lcc_in_unit_interval(el in arb_graph()) {
        let g = Csr::from_edge_list(&el.deduplicated());
        for c in oracle::lcc(&g) {
            prop_assert!((0.0..=1.0).contains(&c), "lcc = {}", c);
        }
    }

    #[test]
    fn sampled_roots_qualify(el in arb_graph(), seed in 0u64..1000) {
        let roots = degree::sample_roots(&el, 8, seed);
        let deg = el.total_degrees();
        for r in roots {
            prop_assert!(deg[r as usize] > 1);
        }
    }
}

/// Strategy: one SNAP-ish line drawn from a grab-bag of valid edges,
/// truncated lines, non-numeric ids, oversized ids, comments, and
/// arbitrary printable soup.
fn arb_snap_line() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("0 1".to_string()),
        Just("2\t3\t0.5".to_string()),
        Just("7".to_string()),                      // truncated: missing dst
        Just("a b".to_string()),                    // non-numeric ids
        Just("4294967295 0".to_string()),           // id == VertexId::MAX (reserved)
        Just("18446744073709551616 0".to_string()), // overflows u64
        Just("# comment mid-file".to_string()),
        Just("   ".to_string()),
        Just("0 1 2 3".to_string()),   // too many columns
        Just("5 6 heavy".to_string()), // unparseable weight
        "[ -~]{0,16}",
    ]
}

/// Strategy: a whole input assembled from grab-bag lines with mixed LF /
/// CRLF / missing terminators.
fn arb_snap_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec((arb_snap_line(), 0u8..3), 0..24).prop_map(|lines| {
        let mut text = String::new();
        for (line, ending) in lines {
            text.push_str(&line);
            match ending {
                0 => text.push('\n'),
                1 => text.push_str("\r\n"),
                _ => {} // run-on: no terminator, fuses with the next line
            }
        }
        text
    })
}

proptest! {
    #[test]
    fn snap_parser_never_panics_on_line_soup(text in arb_snap_soup()) {
        // Any Ok/Err outcome is acceptable; a panic is not. On success the
        // parsed list must be internally consistent.
        if let Ok(el) = snap::parse_snap(text.as_bytes()) {
            if let Some(w) = &el.weights {
                prop_assert_eq!(w.len(), el.edges.len());
            }
            for &(u, v) in &el.edges {
                prop_assert!((u as usize) < el.num_vertices);
                prop_assert!((v as usize) < el.num_vertices);
            }
        }
    }

    #[test]
    fn snap_parser_never_panics_on_printable_soup(text in "[ -~\r\n\t]{0,400}") {
        let _ = snap::parse_snap(text.as_bytes());
    }

    #[test]
    fn malformed_line_is_reported_by_number(good in 0usize..12, crlf in 0u8..2) {
        // `good` valid data lines after a header, then one bad line: the
        // error must carry the bad line's 1-based number regardless of
        // line-ending style.
        let newline = if crlf == 1 { "\r\n" } else { "\n" };
        let mut text = format!("# header{newline}");
        for i in 0..good {
            let _ = std::fmt::Write::write_fmt(
                &mut text,
                format_args!("{} {}{}", i, i + 1, newline),
            );
        }
        text.push_str("not numbers");
        match snap::parse_snap(text.as_bytes()) {
            Err(snap::ParseError::Malformed { line, .. }) => prop_assert_eq!(line, good + 2),
            _ => prop_assert!(false, "expected a Malformed error with a line number"),
        }
    }

    #[test]
    fn oversized_ids_are_rejected_not_truncated(id in (VertexId::MAX as u64)..u64::MAX) {
        // VertexId::MAX is reserved as a sentinel; anything at or above it
        // must be a clean parse error, never a silent wrap to a small id.
        let text = format!("{id} 0\n");
        prop_assert!(snap::parse_snap(text.as_bytes()).is_err());
    }

    #[test]
    fn crlf_line_endings_parse_like_lf(el in arb_weighted_graph()) {
        let mut buf = Vec::new();
        snap::write_snap(&el, "crlf", &mut buf).unwrap();
        let lf_text = String::from_utf8(buf).unwrap();
        let crlf_text = lf_text.replace('\n', "\r\n");
        let lf = snap::parse_snap(lf_text.as_bytes()).unwrap();
        let crlf = snap::parse_snap(crlf_text.as_bytes()).unwrap();
        prop_assert_eq!(crlf, lf);
    }

    #[test]
    fn comments_and_blanks_are_transparent(el in arb_graph(), every in 1usize..4) {
        // Interleaving comments and blank lines between data lines never
        // changes the parsed graph.
        let mut buf = Vec::new();
        snap::write_snap(&el, "plain", &mut buf).unwrap();
        let plain = snap::parse_snap(buf.as_slice()).unwrap();
        let mut noisy = String::new();
        for (i, line) in String::from_utf8(buf).unwrap().lines().enumerate() {
            if i % every == 0 {
                noisy.push_str("# interleaved comment\n\n");
            }
            noisy.push_str(line);
            noisy.push('\n');
        }
        let parsed = snap::parse_snap(noisy.as_bytes()).unwrap();
        prop_assert_eq!(parsed, plain);
    }
}

// ---------------------------------------------------------------------------
// Parallel ingest parity: the chunked zero-copy parser, parallel CSR
// phases, and block generators must agree with their serial oracles for
// every input and every chunk/thread count. These run under the
// `check-disjoint` feature in CI, so the unsafe disjoint writes are also
// dynamically race-checked here.
// ---------------------------------------------------------------------------

use epg_graph::ingest;
use epg_parallel::ThreadPool;

/// Serial and chunked parse must agree: same edge multiset and vertex
/// count on success, identical `Malformed { line, reason }` on failure.
/// (The soup strategies are printable ASCII, so the documented UTF-8
/// `Io`-vs-`Malformed` divergence cannot trigger here.)
fn assert_parse_parity(text: &str, pool: &ThreadPool, nchunks: usize) -> Result<(), TestCaseError> {
    let serial = snap::parse_snap(text.as_bytes());
    let chunked = ingest::parse_snap_chunked(text.as_bytes(), pool, nchunks);
    match (serial, chunked) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(a.num_vertices, b.num_vertices);
            prop_assert_eq!(edge_multiset(&a), edge_multiset(&b));
        }
        (
            Err(snap::ParseError::Malformed { line: l1, reason: r1 }),
            Err(snap::ParseError::Malformed { line: l2, reason: r2 }),
        ) => {
            prop_assert_eq!(l1, l2, "line mismatch: {} vs {}", r1, r2);
            prop_assert_eq!(r1, r2);
        }
        (a, b) => prop_assert!(false, "outcome class diverged: {:?} vs {:?}", a, b),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_parse_matches_serial_on_soup(
        text in arb_snap_soup(),
        threads in 1usize..=4,
        nchunks in 1usize..=6,
    ) {
        let pool = ThreadPool::new(threads);
        assert_parse_parity(&text, &pool, nchunks)?;
    }

    #[test]
    fn error_line_numbers_are_physical_lines(
        good in 0usize..8,
        noise_every in 1usize..4,
        threads in 1usize..=4,
    ) {
        // Valid data lines interleaved with comments and blanks, then a
        // bad line: the reported number must be the bad line's *physical*
        // position in the file — for the serial oracle AND every chunking
        // of the parallel parser.
        let mut text = String::new();
        let mut physical = 0usize;
        for i in 0..good {
            if i % noise_every == 0 {
                text.push_str("# interleaved comment\n\n");
                physical += 2;
            }
            let _ = std::fmt::Write::write_fmt(
                &mut text,
                format_args!("{} {}\n", i, i + 1),
            );
            physical += 1;
        }
        text.push_str("# trailing comment\n\n");
        text.push_str("not numbers\n");
        let want = physical + 3;
        match snap::parse_snap(text.as_bytes()) {
            Err(snap::ParseError::Malformed { line, .. }) => prop_assert_eq!(line, want),
            other => prop_assert!(false, "serial: expected Malformed, got {:?}", other),
        }
        let pool = ThreadPool::new(threads);
        for nchunks in 1..=5 {
            match ingest::parse_snap_chunked(text.as_bytes(), &pool, nchunks) {
                Err(snap::ParseError::Malformed { line, .. }) => prop_assert_eq!(line, want),
                other => prop_assert!(
                    false, "parallel ({} chunks): expected Malformed, got {:?}", nchunks, other
                ),
            }
        }
    }

    #[test]
    fn parallel_csr_phases_match_serial(
        el in arb_weighted_graph(),
        threads in 1usize..=4,
    ) {
        let pool = ThreadPool::new(threads);
        let g = Csr::from_edge_list(&el);

        // Build: same graph after canonical adjacency ordering.
        let mut pb = Csr::from_edge_list_parallel(&el, &pool);
        let mut sb = g.clone();
        pb.sort_adjacency_parallel(&pool);
        sb.sort_adjacency();
        prop_assert_eq!(&pb, &sb);

        // Transpose: parallel and serial agree after sorting.
        let mut pt = g.transpose_parallel(&pool);
        let mut st = g.transpose();
        pt.sort_adjacency_parallel(&pool);
        st.sort_adjacency();
        prop_assert_eq!(pt, st);
    }

    #[test]
    fn parallel_binary_codec_matches_serial(
        el in arb_weighted_graph(),
        threads in 1usize..=4,
    ) {
        let pool = ThreadPool::new(threads);
        let mut serial_bytes = Vec::new();
        snap::write_binary(&el, &mut serial_bytes).unwrap();
        // Byte-identical encode; decode parity both ways.
        prop_assert_eq!(&ingest::encode_binary_parallel(&el, &pool), &serial_bytes);
        prop_assert_eq!(&ingest::decode_binary_parallel(&serial_bytes, &pool).unwrap(), &el);
        prop_assert_eq!(&snap::read_binary(serial_bytes.as_slice()).unwrap(), &el);
    }
}

proptest! {
    #[test]
    fn betweenness_is_nonnegative_and_zero_on_leaves(el in arb_graph()) {
        let sym = el.deduplicated().symmetrized();
        let g = Csr::from_edge_list(&sym);
        let bc = oracle::betweenness(&g);
        let deg = sym.total_degrees();
        for (v, &score) in bc.iter().enumerate() {
            prop_assert!(score >= 0.0);
            // A vertex of (symmetric) degree <= 1 lies on no shortest path
            // between two *other* vertices.
            if deg[v] <= 2 && g.out_degree(v as VertexId) <= 1 {
                prop_assert_eq!(score, 0.0, "leaf {} has bc {}", v, score);
            }
        }
    }

    #[test]
    fn triangle_count_invariant_under_edge_permutation(el in arb_graph(), seed in 0u64..100) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let base = oracle::triangle_count(&Csr::from_edge_list(&el));
        let mut shuffled = el.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        shuffled.edges.shuffle(&mut rng);
        prop_assert_eq!(base, oracle::triangle_count(&Csr::from_edge_list(&shuffled)));
        // Symmetrizing (no new undirected edges) keeps the count too.
        prop_assert_eq!(
            base,
            oracle::triangle_count(&Csr::from_edge_list(&el.symmetrized()))
        );
    }

    #[test]
    fn triangle_count_monotone_in_edges(el in arb_graph()) {
        // Removing edges can only remove triangles.
        if el.num_edges() < 2 { return Ok(()); }
        let full = oracle::triangle_count(&Csr::from_edge_list(&el));
        let mut half = el.clone();
        half.edges.truncate(el.num_edges() / 2);
        let fewer = oracle::triangle_count(&Csr::from_edge_list(&half));
        prop_assert!(fewer <= full, "{} > {}", fewer, full);
    }
}
