//! Differential construction suite: the parallel two-pass CSR kernels must
//! be **byte-identical** to their serial counterparts — offsets, targets,
//! and weights, with no canonicalizing sort pass — across thread counts and
//! adversarial degree distributions.
//!
//! On schedules: the two-pass kernels intentionally take no `Schedule` — the
//! per-worker split is a fixed function of `(len, nthreads)` (see
//! `worker_range` in `csr.rs`), so there is no scheduler dimension left to
//! vary. Thread count is the only knob that could perturb the partition,
//! and this suite sweeps it {1, 2, 4, 8} on every shape. Run with
//! `--features epg-parallel/check-disjoint` to additionally verify that
//! every scatter slot is written exactly once per region (CI does).

use epg_graph::{csr::Csr, EdgeList, VertexId};
use epg_parallel::ThreadPool;
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Asserts field-by-field equality so a failure names the component.
fn assert_identical(par: &Csr, ser: &Csr, ctx: &str) {
    assert_eq!(par.offsets, ser.offsets, "offsets differ: {ctx}");
    assert_eq!(par.targets, ser.targets, "targets differ: {ctx}");
    assert_eq!(par.weights, ser.weights, "weights differ: {ctx}");
}

/// Runs the full build + transpose differential on one edge list.
fn check_all(el: &EdgeList, shape: &str) {
    let ser = Csr::from_edge_list(el);
    let ser_t = ser.transpose();
    for nthreads in THREADS {
        let pool = ThreadPool::new(nthreads);
        let ctx = format!("shape={shape} nthreads={nthreads}");
        let par = Csr::from_edge_list_parallel(el, &pool);
        assert_identical(&par, &ser, &ctx);
        let par_t = par.transpose_parallel(&pool);
        assert_identical(&par_t, &ser_t, &ctx);
        // Parallel adjacency sort reaches the same canonical form.
        let mut sorted_par = par;
        let mut sorted_ser = ser.clone();
        sorted_par.sort_adjacency_parallel(&pool);
        sorted_ser.sort_adjacency();
        assert_identical(&sorted_par, &sorted_ser, &ctx);
    }
}

fn weighted_from(edges: Vec<(VertexId, VertexId)>, n: usize) -> EdgeList {
    let weights = (0..edges.len()).map(|i| (i % 31) as f32 * 0.5 + 0.25).collect();
    EdgeList::weighted(n, edges, weights)
}

// ---- skew-killer shapes -------------------------------------------------

#[test]
fn star_in_and_out() {
    // Hub 0 receives and emits everything: the worst case for per-vertex
    // cursor contention, and the case the old atomic scatter serialized on.
    let n = 512;
    let mut edges = Vec::new();
    for v in 1..n as VertexId {
        edges.push((0, v));
        edges.push((v, 0));
    }
    check_all(&EdgeList::new(n, edges.clone()), "star");
    check_all(&weighted_from(edges, n), "star-weighted");
}

#[test]
fn power_law_degrees() {
    // Zipf-ish skew from a deterministic LCG: a few heavy vertices, a long
    // light tail, duplicates included.
    let n = 300usize;
    let mut state = 0x9e37_79b9u64;
    let mut lcg = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let mut edges = Vec::with_capacity(6000);
    for _ in 0..6000 {
        // Squaring a uniform sample skews mass toward low vertex ids.
        let u = ((lcg() as u64).pow(2) >> 44) as u32 % n as u32;
        let v = lcg() % n as u32;
        edges.push((u, v));
    }
    check_all(&EdgeList::new(n, edges.clone()), "power-law");
    check_all(&weighted_from(edges, n), "power-law-weighted");
}

#[test]
fn all_self_loops() {
    let n = 97;
    let edges: Vec<_> = (0..3000u32).map(|i| (i % n, i % n)).collect();
    check_all(&EdgeList::new(n as usize, edges.clone()), "self-loops");
    check_all(&weighted_from(edges, n as usize), "self-loops-weighted");
}

#[test]
fn zero_vertex_and_zero_edge() {
    check_all(&EdgeList::new(0, vec![]), "zero-vertex");
    check_all(&EdgeList::new(64, vec![]), "zero-edge");
    check_all(&EdgeList::weighted(64, vec![], vec![]), "zero-edge-weighted");
}

#[test]
fn isolated_vertex_tail() {
    // Edges touch only the first 8 of 4096 vertices: the count matrix is
    // almost entirely zeros and most per-worker vertex ranges reduce and
    // cursor-init nothing but padding.
    let n = 4096;
    let edges: Vec<_> = (0..500u32).map(|i| (i % 8, (i * 3 + 1) % 8)).collect();
    check_all(&EdgeList::new(n, edges.clone()), "isolated-tail");
    check_all(&weighted_from(edges, n), "isolated-tail-weighted");
}

#[test]
fn fewer_edges_than_workers() {
    // With 8 threads and 3 edges most workers get empty ranges.
    check_all(&EdgeList::new(10, vec![(4, 2), (9, 0), (4, 2)]), "tiny");
    check_all(&weighted_from(vec![(1, 1), (0, 9)], 10), "tiny-weighted");
}

// ---- property-based matrix ---------------------------------------------

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (1usize..=40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..200)
            .prop_map(move |edges| EdgeList::new(n, edges))
    })
}

fn arb_weighted_graph() -> impl Strategy<Value = EdgeList> {
    (1usize..=30).prop_flat_map(|n| {
        proptest::collection::vec(((0..n as VertexId, 0..n as VertexId), 0.01f32..10.0), 0..150)
            .prop_map(move |ews| {
                let (edges, weights): (Vec<_>, Vec<_>) = ews.into_iter().unzip();
                EdgeList::weighted(n, edges, weights)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_build_byte_equal(el in arb_graph()) {
        let ser = Csr::from_edge_list(&el);
        for nthreads in THREADS {
            let pool = ThreadPool::new(nthreads);
            let par = Csr::from_edge_list_parallel(&el, &pool);
            prop_assert_eq!(&par, &ser, "nthreads={}", nthreads);
        }
    }

    #[test]
    fn parallel_build_byte_equal_weighted(el in arb_weighted_graph()) {
        let ser = Csr::from_edge_list(&el);
        for nthreads in THREADS {
            let pool = ThreadPool::new(nthreads);
            let par = Csr::from_edge_list_parallel(&el, &pool);
            prop_assert_eq!(&par, &ser, "nthreads={}", nthreads);
        }
    }

    #[test]
    fn parallel_transpose_byte_equal(el in arb_weighted_graph()) {
        let g = Csr::from_edge_list(&el);
        let ser = g.transpose();
        for nthreads in THREADS {
            let pool = ThreadPool::new(nthreads);
            let par = g.transpose_parallel(&pool);
            prop_assert_eq!(&par, &ser, "nthreads={}", nthreads);
        }
    }

    #[test]
    fn transpose_roundtrip_is_sorted_original(el in arb_graph()) {
        // Unweighted: transposing twice sorts each adjacency list (the
        // transpose scatters sources in ascending order), so the parallel
        // round trip must land exactly on the serial canonical form.
        let g = Csr::from_edge_list(&el);
        let mut sorted = g.clone();
        sorted.sort_adjacency();
        for nthreads in THREADS {
            let pool = ThreadPool::new(nthreads);
            let tt = g.transpose_parallel(&pool).transpose_parallel(&pool);
            prop_assert_eq!(&tt, &sorted, "nthreads={}", nthreads);
        }
    }

    #[test]
    fn transpose_roundtrip_weighted_canonicalizes(el in arb_weighted_graph()) {
        // Weighted: duplicate (u, v) edges with different weights keep edge
        // order through the round trip while sort_adjacency breaks weight
        // ties by bit pattern — so canonicalize both sides before comparing.
        let g = Csr::from_edge_list(&el);
        let mut sorted = g.clone();
        sorted.sort_adjacency();
        for nthreads in THREADS {
            let pool = ThreadPool::new(nthreads);
            let mut tt = g.transpose_parallel(&pool).transpose_parallel(&pool);
            prop_assert_eq!(tt.offsets.clone(), sorted.offsets.clone(), "nthreads={}", nthreads);
            tt.sort_adjacency_parallel(&pool);
            prop_assert_eq!(&tt, &sorted, "nthreads={}", nthreads);
        }
    }

    #[test]
    fn parallel_sort_matches_serial(el in arb_weighted_graph()) {
        let g = Csr::from_edge_list(&el);
        let mut ser = g.clone();
        ser.sort_adjacency();
        for nthreads in THREADS {
            let pool = ThreadPool::new(nthreads);
            let mut par = g.clone();
            par.sort_adjacency_parallel(&pool);
            prop_assert_eq!(&par, &ser, "nthreads={}", nthreads);
        }
    }
}
