//! openG-style property graph storage.
//!
//! GraphBIG is built on IBM System G's `openG` framework, which — unlike
//! the flat CSR of GAP/Graph500 — stores a vector of vertex objects whose
//! adjacency lives in **linked lists** (`std::list` in openG) so that the
//! graph can mutate dynamically. The pointer-chasing this causes is a real
//! architectural property the paper's comparison exposes (GraphBIG's wide
//! performance variation and its slow kernels at scale, §IV-C), so we
//! reproduce it with arena-backed linked lists rather than aliasing CSR:
//! per-vertex edge chains thread through shared arenas in global insertion
//! order, so traversing one vertex's list hops around memory exactly the
//! way a node-based `std::list` does.

use crate::{EdgeList, VertexId, Weight};

/// Arena index sentinel for "end of list".
const NIL: u32 = u32::MAX;

/// Mutable per-vertex algorithm properties, mirroring openG's pattern of
/// attaching a property record to every vertex.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VertexProperty {
    /// BFS/SSSP parent.
    pub parent: VertexId,
    /// BFS level or SSSP distance.
    pub distance: Weight,
    /// PageRank value / CDLP label / WCC component, depending on kernel.
    pub value: f64,
    /// Scratch value for the next iteration.
    pub next_value: f64,
    /// Visited/active flag.
    pub active: bool,
}

/// One out-edge list node.
#[derive(Clone, Debug, PartialEq)]
struct EdgeCell {
    target: VertexId,
    weight: Weight,
    next: u32,
}

/// One in-edge list node.
#[derive(Clone, Debug, PartialEq)]
struct InCell {
    source: VertexId,
    next: u32,
}

/// One vertex record: properties plus linked-list heads/tails.
#[derive(Clone, Debug, PartialEq)]
pub struct VertexRecord {
    out_head: u32,
    out_tail: u32,
    out_degree: u32,
    in_head: u32,
    in_tail: u32,
    in_degree: u32,
    /// Algorithm property record.
    pub prop: VertexProperty,
}

impl Default for VertexRecord {
    fn default() -> Self {
        VertexRecord {
            out_head: NIL,
            out_tail: NIL,
            out_degree: 0,
            in_head: NIL,
            in_tail: NIL,
            in_degree: 0,
            prop: VertexProperty::default(),
        }
    }
}

/// The property graph: a vector of vertex objects over edge arenas.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PropertyGraph {
    /// All vertex records, indexed by `VertexId`.
    pub vertices: Vec<VertexRecord>,
    out_arena: Vec<EdgeCell>,
    in_arena: Vec<InCell>,
}

impl PropertyGraph {
    /// Creates an empty graph with `n` isolated vertices.
    pub fn with_vertices(n: usize) -> PropertyGraph {
        PropertyGraph {
            vertices: vec![VertexRecord::default(); n],
            out_arena: Vec::new(),
            in_arena: Vec::new(),
        }
    }

    /// Inserts one directed edge. openG ingests edges one at a time while
    /// streaming the input file — which is exactly why GraphBIG's file-read
    /// and construction phases cannot be separated (§III-B). Insertion
    /// order is preserved per vertex (appended at the list tail).
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, w: Weight) {
        let cell = self.out_arena.len() as u32;
        self.out_arena.push(EdgeCell { target: dst, weight: w, next: NIL });
        let rec = &mut self.vertices[src as usize];
        if rec.out_tail == NIL {
            rec.out_head = cell;
        } else {
            self.out_arena[rec.out_tail as usize].next = cell;
        }
        rec.out_tail = cell;
        rec.out_degree += 1;

        let cell = self.in_arena.len() as u32;
        self.in_arena.push(InCell { source: src, next: NIL });
        let rec = &mut self.vertices[dst as usize];
        if rec.in_tail == NIL {
            rec.in_head = cell;
        } else {
            self.in_arena[rec.in_tail as usize].next = cell;
        }
        rec.in_tail = cell;
        rec.in_degree += 1;
    }

    /// Builds from an edge list (used by tests and oracles; the GraphBIG
    /// engine itself streams from its homogenized file).
    pub fn from_edge_list(el: &EdgeList) -> PropertyGraph {
        let mut g = PropertyGraph::with_vertices(el.num_vertices);
        for (u, v, w) in el.iter() {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.out_arena.len()
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.vertices[v as usize].out_degree as usize
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.vertices[v as usize].in_degree as usize
    }

    /// Out-neighbors of `v` with weights, walked through the linked list.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let mut cur = self.vertices[v as usize].out_head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let cell = &self.out_arena[cur as usize];
                cur = cell.next;
                Some((cell.target, cell.weight))
            }
        })
    }

    /// In-neighbor sources of `v`, walked through the linked list.
    pub fn in_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let mut cur = self.vertices[v as usize].in_head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let cell = &self.in_arena[cur as usize];
                cur = cell.next;
                Some(cell.source)
            }
        })
    }

    /// Resets every property record (each kernel run starts clean).
    pub fn reset_properties(&mut self) {
        for rec in &mut self.vertices {
            rec.prop = VertexProperty::default();
        }
    }

    /// Approximate resident size in bytes; noticeably larger than CSR for
    /// the same graph (list nodes carry link fields), which feeds the
    /// machine model's memory-traffic term.
    pub fn size_bytes(&self) -> usize {
        self.vertices.len() * std::mem::size_of::<VertexRecord>()
            + self.out_arena.len() * std::mem::size_of::<EdgeCell>()
            + self.in_arena.len() * std::mem::size_of::<InCell>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let el = EdgeList::weighted(4, vec![(0, 1), (1, 2), (1, 3)], vec![0.5, 1.0, 2.0]);
        let g = PropertyGraph::from_edge_list(&el);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(1), 2);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![(1, 0.5)]);
        assert_eq!(g.in_neighbors(2).collect::<Vec<_>>(), vec![1]);
        assert_eq!(g.in_neighbors(0).count(), 0);
    }

    #[test]
    fn insertion_order_preserved_per_vertex() {
        let mut g = PropertyGraph::with_vertices(4);
        g.add_edge(0, 3, 1.0);
        g.add_edge(1, 2, 2.0); // interleaved: arenas are globally ordered
        g.add_edge(0, 1, 3.0);
        g.add_edge(0, 2, 4.0);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![(3, 1.0), (1, 3.0), (2, 4.0)]);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![(2, 2.0)]);
    }

    #[test]
    fn incremental_insertion_matches_bulk() {
        let el = EdgeList::new(3, vec![(0, 1), (2, 0)]);
        let bulk = PropertyGraph::from_edge_list(&el);
        let mut inc = PropertyGraph::with_vertices(3);
        inc.add_edge(0, 1, 1.0);
        inc.add_edge(2, 0, 1.0);
        assert_eq!(bulk, inc);
    }

    #[test]
    fn degrees_track_insertions() {
        let el = EdgeList::new(5, vec![(0, 1), (0, 2), (3, 0), (4, 0), (1, 0)]);
        let g = PropertyGraph::from_edge_list(&el);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 3);
        assert_eq!(g.in_neighbors(0).collect::<Vec<_>>(), vec![3, 4, 1]);
    }

    #[test]
    fn reset_clears_properties() {
        let mut g = PropertyGraph::from_edge_list(&EdgeList::new(2, vec![(0, 1)]));
        g.vertices[0].prop.value = 42.0;
        g.vertices[1].prop.active = true;
        g.reset_properties();
        assert_eq!(g.vertices[0].prop, VertexProperty::default());
        assert_eq!(g.vertices[1].prop, VertexProperty::default());
    }

    #[test]
    fn property_graph_is_bigger_than_flat() {
        let edges: Vec<_> =
            (0..100).map(|i| (i as VertexId, ((i + 1) % 100) as VertexId)).collect();
        let el = EdgeList::new(100, edges);
        let pg = PropertyGraph::from_edge_list(&el);
        let csr = crate::Csr::from_edge_list(&el);
        assert!(pg.size_bytes() > csr.size_bytes());
    }

    #[test]
    fn self_loops_count_in_both_directions() {
        let mut g = PropertyGraph::with_vertices(2);
        g.add_edge(1, 1, 0.5);
        assert_eq!(g.out_degree(1), 1);
        assert_eq!(g.in_degree(1), 1);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![(1, 0.5)]);
    }
}
