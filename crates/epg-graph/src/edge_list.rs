//! Unsorted edge lists (COO format).
//!
//! The Graph500 specification hands its construction kernel "an unsorted
//! edge list stored in RAM"; this type is that list. It is also the common
//! interchange format of the dataset homogenizer: generators produce an
//! `EdgeList`, each engine constructs its own structure from it.

use crate::{VertexId, Weight};

/// An edge list with optional per-edge weights.
///
/// Invariant: if `weights` is `Some`, `weights.len() == edges.len()`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EdgeList {
    /// Number of vertices (vertex ids are `0..num_vertices`).
    pub num_vertices: usize,
    /// Directed edges `(src, dst)`.
    pub edges: Vec<(VertexId, VertexId)>,
    /// Optional weights, parallel to `edges`.
    pub weights: Option<Vec<Weight>>,
}

impl EdgeList {
    /// Creates an unweighted edge list.
    pub fn new(num_vertices: usize, edges: Vec<(VertexId, VertexId)>) -> Self {
        debug_assert!(edges
            .iter()
            .all(|&(u, v)| (u as usize) < num_vertices && (v as usize) < num_vertices));
        EdgeList { num_vertices, edges, weights: None }
    }

    /// Creates a weighted edge list. Panics if lengths differ.
    pub fn weighted(
        num_vertices: usize,
        edges: Vec<(VertexId, VertexId)>,
        weights: Vec<Weight>,
    ) -> Self {
        assert_eq!(edges.len(), weights.len(), "weights must parallel edges");
        EdgeList { num_vertices, edges, weights: Some(weights) }
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True if the list carries weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Weight of edge `i`, defaulting to 1.0 for unweighted lists.
    pub fn weight(&self, i: usize) -> Weight {
        self.weights.as_ref().map_or(1.0, |w| w[i])
    }

    /// Iterates `(src, dst, weight)` with weight 1.0 when unweighted.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.edges.iter().enumerate().map(move |(i, &(u, v))| (u, v, self.weight(i)))
    }

    /// Returns a copy with every edge also present reversed, making the
    /// graph symmetric (undirected). Self-loops are not duplicated.
    pub fn symmetrized(&self) -> EdgeList {
        let extra = self.iter().filter(|&(u, v, _)| u != v).count();
        let mut edges = Vec::with_capacity(self.edges.len() + extra);
        let mut weights =
            self.weights.as_ref().map(|_| Vec::with_capacity(self.edges.len() + extra));
        for (u, v, w) in self.iter() {
            edges.push((u, v));
            if let Some(ws) = weights.as_mut() {
                ws.push(w);
            }
            if u != v {
                edges.push((v, u));
                if let Some(ws) = weights.as_mut() {
                    ws.push(w);
                }
            }
        }
        EdgeList { num_vertices: self.num_vertices, edges, weights }
    }

    /// Removes duplicate edges and self-loops (keeping the first weight seen
    /// for a duplicate). Used by homogenization for engines that require
    /// simple graphs.
    pub fn deduplicated(&self) -> EdgeList {
        let mut order: Vec<u32> = (0..self.edges.len() as u32).collect();
        order.sort_unstable_by_key(|&i| self.edges[i as usize]);
        let mut edges = Vec::new();
        let mut weights = self.weights.as_ref().map(|_| Vec::new());
        let mut last: Option<(VertexId, VertexId)> = None;
        for &i in &order {
            let e = self.edges[i as usize];
            if e.0 == e.1 || last == Some(e) {
                continue;
            }
            last = Some(e);
            edges.push(e);
            if let Some(ws) = weights.as_mut() {
                ws.push(self.weight(i as usize));
            }
        }
        EdgeList { num_vertices: self.num_vertices, edges, weights }
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices];
        for &(u, _) in &self.edges {
            deg[u as usize] += 1;
        }
        deg
    }

    /// Total degree (in + out) of every vertex; self-loops count twice.
    pub fn total_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        deg
    }

    /// Strips weights, if any.
    pub fn unweighted(&self) -> EdgeList {
        EdgeList { num_vertices: self.num_vertices, edges: self.edges.clone(), weights: None }
    }

    /// Approximate resident size in bytes (the Graph500 input-kernel sizing).
    pub fn size_bytes(&self) -> usize {
        self.edges.len() * std::mem::size_of::<(VertexId, VertexId)>()
            + self.weights.as_ref().map_or(0, |w| w.len() * std::mem::size_of::<Weight>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::weighted(
            4,
            vec![(0, 1), (1, 2), (2, 3), (0, 1), (3, 3)],
            vec![0.5, 1.5, 2.5, 9.0, 4.0],
        )
    }

    #[test]
    fn basic_accessors() {
        let el = sample();
        assert_eq!(el.num_edges(), 5);
        assert!(el.is_weighted());
        assert_eq!(el.weight(2), 2.5);
        let unw = el.unweighted();
        assert!(!unw.is_weighted());
        assert_eq!(unw.weight(2), 1.0);
    }

    #[test]
    fn symmetrize_doubles_non_loops() {
        let el = sample();
        let sym = el.symmetrized();
        // 4 non-loop edges doubled + 1 self loop kept once = 9.
        assert_eq!(sym.num_edges(), 9);
        assert!(sym.edges.contains(&(1, 0)));
        assert!(sym.edges.contains(&(3, 2)));
        // Weights follow their edge.
        let idx = sym.edges.iter().position(|&e| e == (2, 1)).unwrap();
        assert_eq!(sym.weight(idx), 1.5);
    }

    #[test]
    fn dedup_removes_loops_and_duplicates() {
        let el = sample();
        let d = el.deduplicated();
        assert_eq!(d.num_edges(), 3);
        assert!(!d.edges.contains(&(3, 3)));
        // The (0,1) duplicate keeps the first weight in sorted-index order.
        let idx = d.edges.iter().position(|&e| e == (0, 1)).unwrap();
        assert_eq!(d.weight(idx), 0.5);
    }

    #[test]
    fn degrees() {
        let el = sample();
        assert_eq!(el.out_degrees(), vec![2, 1, 1, 1]);
        assert_eq!(el.total_degrees(), vec![2, 3, 2, 3]);
    }

    #[test]
    fn iter_yields_unit_weights_when_unweighted() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 2)]);
        let ws: Vec<Weight> = el.iter().map(|(_, _, w)| w).collect();
        assert_eq!(ws, vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "weights must parallel edges")]
    fn weighted_length_mismatch_panics() {
        let _ = EdgeList::weighted(2, vec![(0, 1)], vec![]);
    }
}
