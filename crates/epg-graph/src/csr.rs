//! Compressed sparse row adjacency.
//!
//! CSR is the representation shared (with implementation differences the
//! paper notes in §V) by Graph500, GAP, and GraphBIG. Construction uses the
//! counting-sort scheme of the Graph500 reference code so that the engines'
//! "data structure construction" phase does real, representative work.

use crate::{EdgeList, VertexId, Weight};

/// Compressed-sparse-row graph. Always stores out-edges; build the transpose
/// for in-edges (pull-direction algorithms such as direction-optimizing BFS
/// and pull PageRank need both).
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` (and `weights`).
    pub offsets: Vec<usize>,
    /// Concatenated adjacency lists.
    pub targets: Vec<VertexId>,
    /// Optional weights parallel to `targets`.
    pub weights: Option<Vec<Weight>>,
}

impl Csr {
    /// Builds a CSR from an edge list via counting sort. `O(V + E)`.
    pub fn from_edge_list(el: &EdgeList) -> Csr {
        let n = el.num_vertices;
        let mut counts = vec![0usize; n + 1];
        for &(u, _) in &el.edges {
            counts[u as usize + 1] += 1;
        }
        for v in 0..n {
            counts[v + 1] += counts[v];
        }
        let offsets = counts.clone();
        let mut targets = vec![0 as VertexId; el.edges.len()];
        let mut weights = el.weights.as_ref().map(|_| vec![0.0 as Weight; el.edges.len()]);
        let mut cursor = counts;
        for (i, &(u, v)) in el.edges.iter().enumerate() {
            let slot = cursor[u as usize];
            cursor[u as usize] += 1;
            targets[slot] = v;
            if let Some(ws) = weights.as_mut() {
                ws[slot] = el.weight(i);
            }
        }
        Csr { offsets, targets, weights }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// True if edges carry weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Neighbors of `v` with weights (1.0 when unweighted).
    pub fn neighbors_weighted(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let range = self.offsets[v as usize]..self.offsets[v as usize + 1];
        let ws = self.weights.as_deref();
        range.map(move |i| (self.targets[i], ws.map_or(1.0, |w| w[i])))
    }

    /// Builds the transposed graph (in-edges become out-edges). `O(V + E)`.
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut counts = vec![0usize; n + 1];
        for &t in &self.targets {
            counts[t as usize + 1] += 1;
        }
        for v in 0..n {
            counts[v + 1] += counts[v];
        }
        let offsets = counts.clone();
        let mut targets = vec![0 as VertexId; self.targets.len()];
        let mut weights = self.weights.as_ref().map(|_| vec![0.0 as Weight; self.targets.len()]);
        let mut cursor = counts;
        for u in 0..n as VertexId {
            for i in self.offsets[u as usize]..self.offsets[u as usize + 1] {
                let t = self.targets[i] as usize;
                let slot = cursor[t];
                cursor[t] += 1;
                targets[slot] = u;
                if let (Some(dst), Some(src)) = (weights.as_mut(), self.weights.as_ref()) {
                    dst[slot] = src[i];
                }
            }
        }
        Csr { offsets, targets, weights }
    }

    /// Sorts each adjacency list (weights permuted alongside). Sorted lists
    /// are required by the LCC intersection kernels.
    pub fn sort_adjacency(&mut self) {
        let n = self.num_vertices();
        for v in 0..n {
            let lo = self.offsets[v];
            let hi = self.offsets[v + 1];
            if let Some(ws) = self.weights.as_mut() {
                let mut pairs: Vec<(VertexId, Weight)> =
                    self.targets[lo..hi].iter().copied().zip(ws[lo..hi].iter().copied()).collect();
                pairs.sort_unstable_by_key(|&(t, w)| (t, w.to_bits()));
                for (k, (t, w)) in pairs.into_iter().enumerate() {
                    self.targets[lo + k] = t;
                    ws[lo + k] = w;
                }
            } else {
                self.targets[lo..hi].sort_unstable();
            }
        }
    }

    /// Converts back to an edge list (in adjacency order).
    pub fn to_edge_list(&self) -> EdgeList {
        let mut edges = Vec::with_capacity(self.num_edges());
        let mut weights = self.weights.as_ref().map(|_| Vec::with_capacity(self.num_edges()));
        for u in 0..self.num_vertices() as VertexId {
            for (v, w) in self.neighbors_weighted(u) {
                edges.push((u, v));
                if let Some(ws) = weights.as_mut() {
                    ws.push(w);
                }
            }
        }
        EdgeList { num_vertices: self.num_vertices(), edges, weights }
    }

    /// Approximate resident size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self.weights.as_ref().map_or(0, |w| w.len() * std::mem::size_of::<Weight>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::weighted(
            5,
            vec![(0, 1), (0, 2), (1, 3), (3, 0), (3, 4), (2, 2)],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
    }

    #[test]
    fn build_and_degrees() {
        let g = Csr::from_edge_list(&sample());
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 2);
        assert_eq!(g.out_degree(4), 0);
        assert_eq!(g.neighbors(1), &[3]);
    }

    #[test]
    fn weights_follow_edges() {
        let g = Csr::from_edge_list(&sample());
        let nbrs: Vec<_> = g.neighbors_weighted(3).collect();
        assert_eq!(nbrs, vec![(0, 4.0), (4, 5.0)]);
    }

    #[test]
    fn transpose_reverses() {
        let g = Csr::from_edge_list(&sample());
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        // In-neighbors of 0 = {3}; of 2 = {0, 2}.
        assert_eq!(t.neighbors(0), &[3]);
        let mut in2 = t.neighbors(2).to_vec();
        in2.sort_unstable();
        assert_eq!(in2, vec![0, 2]);
        // Transposing twice restores the original edges (as sets per vertex).
        let mut tt = t.transpose();
        let mut orig = g.clone();
        tt.sort_adjacency();
        orig.sort_adjacency();
        assert_eq!(tt, orig);
    }

    #[test]
    fn sort_adjacency_keeps_weight_pairing() {
        let el = EdgeList::weighted(3, vec![(0, 2), (0, 1)], vec![9.0, 7.0]);
        let mut g = Csr::from_edge_list(&el);
        g.sort_adjacency();
        let nbrs: Vec<_> = g.neighbors_weighted(0).collect();
        assert_eq!(nbrs, vec![(1, 7.0), (2, 9.0)]);
    }

    #[test]
    fn edge_list_roundtrip_preserves_multiset() {
        let el = sample();
        let g = Csr::from_edge_list(&el);
        let back = g.to_edge_list();
        let mut a: Vec<_> = el.iter().map(|(u, v, w)| (u, v, w.to_bits())).collect();
        let mut b: Vec<_> = back.iter().map(|(u, v, w)| (u, v, w.to_bits())).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edge_list(&EdgeList::new(0, vec![]));
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = Csr::from_edge_list(&EdgeList::new(4, vec![(1, 2)]));
        assert_eq!(g.out_degree(0), 0);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.neighbors(1), &[2]);
    }
}

impl Csr {
    /// Parallel CSR construction: histogram → parallel exclusive scan →
    /// scatter with atomic cursors. This is the Graph500 construction
    /// kernel's parallel structure; adjacency order within a vertex is
    /// unspecified (call [`Csr::sort_adjacency`] for a canonical form).
    pub fn from_edge_list_parallel(el: &EdgeList, pool: &epg_parallel::ThreadPool) -> Csr {
        use epg_parallel::{DisjointWriter, Schedule};
        use std::sync::atomic::{AtomicU64, Ordering};

        if pool.num_threads() == 1 {
            // Serial fast path: the atomic histogram/cursor protocol only
            // pays off once threads can share it.
            return Csr::from_edge_list(el);
        }
        let n = el.num_vertices;
        let m = el.edges.len();
        // Histogram of out-degrees.
        let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        {
            let edges = &el.edges;
            pool.parallel_for_ranges(m, Schedule::Static { chunk: None }, |_t, lo, hi| {
                for &(u, _) in &edges[lo..hi] {
                    counts[u as usize].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Exclusive scan over the histogram.
        let mut scanned: Vec<u64> = counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let total = pool.exclusive_scan(&mut scanned);
        debug_assert_eq!(total as usize, m);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.extend(scanned.iter().map(|&x| x as usize));
        offsets.push(m);
        // Scatter: atomic cursor per vertex hands out slots.
        let cursor: Vec<AtomicU64> = scanned.iter().map(|&x| AtomicU64::new(x)).collect();
        let mut targets = vec![0 as VertexId; m];
        let mut weights = el.weights.as_ref().map(|_| vec![0.0 as Weight; m]);
        {
            let tw = DisjointWriter::new(&mut targets);
            let ww = weights.as_mut().map(|w| DisjointWriter::new(w.as_mut_slice()));
            pool.parallel_for_ranges(m, Schedule::Static { chunk: None }, |_t, lo, hi| {
                for i in lo..hi {
                    let (u, v) = el.edges[i];
                    let slot = cursor[u as usize].fetch_add(1, Ordering::Relaxed) as usize;
                    // SAFETY: cursors hand out each slot exactly once.
                    unsafe {
                        tw.write(slot, v);
                        if let Some(ww) = &ww {
                            ww.write(slot, el.weight(i));
                        }
                    }
                }
            });
        }
        Csr { offsets, targets, weights }
    }

    /// Parallel transpose: same histogram → scan → atomic-cursor scatter
    /// structure as [`Csr::from_edge_list_parallel`], iterating sources by
    /// vertex range. Adjacency order within a transposed vertex is
    /// unspecified (call [`Csr::sort_adjacency`] for a canonical form).
    pub fn transpose_parallel(&self, pool: &epg_parallel::ThreadPool) -> Csr {
        use epg_parallel::{DisjointWriter, Schedule};
        use std::sync::atomic::{AtomicU64, Ordering};

        if pool.num_threads() == 1 {
            return self.transpose();
        }
        let n = self.num_vertices();
        let m = self.num_edges();
        let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        {
            let targets = &self.targets;
            pool.parallel_for_ranges(m, Schedule::Static { chunk: None }, |_t, lo, hi| {
                for &t in &targets[lo..hi] {
                    counts[t as usize].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let mut scanned: Vec<u64> = counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let total = pool.exclusive_scan(&mut scanned);
        debug_assert_eq!(total as usize, m);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.extend(scanned.iter().map(|&x| x as usize));
        offsets.push(m);
        let cursor: Vec<AtomicU64> = scanned.iter().map(|&x| AtomicU64::new(x)).collect();
        let mut targets = vec![0 as VertexId; m];
        let mut weights = self.weights.as_ref().map(|_| vec![0.0 as Weight; m]);
        {
            let tw = DisjointWriter::new(&mut targets);
            let ww = weights.as_mut().map(|w| DisjointWriter::new(w.as_mut_slice()));
            pool.parallel_for_ranges(n, Schedule::Guided { min_chunk: 64 }, |_t, lo, hi| {
                for u in lo..hi {
                    for i in self.offsets[u]..self.offsets[u + 1] {
                        let t = self.targets[i] as usize;
                        let slot = cursor[t].fetch_add(1, Ordering::Relaxed) as usize;
                        // SAFETY: cursors hand out each slot exactly once.
                        unsafe {
                            tw.write(slot, u as VertexId);
                            if let (Some(ww), Some(src)) = (&ww, self.weights.as_ref()) {
                                ww.write(slot, src[i]);
                            }
                        }
                    }
                }
            });
        }
        Csr { offsets, targets, weights }
    }

    /// Parallel adjacency sort: vertices are dealt out in ranges and each
    /// worker sorts its vertices' (disjoint) `targets`/`weights` spans in
    /// place. Same canonical order as the serial [`Csr::sort_adjacency`].
    pub fn sort_adjacency_parallel(&mut self, pool: &epg_parallel::ThreadPool) {
        use epg_parallel::{DisjointWriter, Schedule};

        let n = self.num_vertices();
        let Csr { offsets, targets, weights } = self;
        let tw = DisjointWriter::new(targets.as_mut_slice());
        let ww = weights.as_mut().map(|w| DisjointWriter::new(w.as_mut_slice()));
        pool.parallel_for_ranges(n, Schedule::Guided { min_chunk: 64 }, |_t, vlo, vhi| {
            for v in vlo..vhi {
                let (lo, hi) = (offsets[v], offsets[v + 1]);
                // SAFETY: per-vertex spans [lo, hi) are disjoint because the
                // vertex ranges handed to workers are disjoint.
                unsafe {
                    let ts = tw.range_mut(lo, hi);
                    if let Some(ww) = &ww {
                        let ws = ww.range_mut(lo, hi);
                        let mut pairs: Vec<(VertexId, Weight)> =
                            ts.iter().copied().zip(ws.iter().copied()).collect();
                        pairs.sort_unstable_by_key(|&(t, w)| (t, w.to_bits()));
                        for (k, (t, w)) in pairs.into_iter().enumerate() {
                            ts[k] = t;
                            ws[k] = w;
                        }
                    } else {
                        ts.sort_unstable();
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod parallel_build_tests {
    use super::*;
    use epg_parallel::ThreadPool;

    #[test]
    fn parallel_build_equals_serial_after_sorting() {
        for nthreads in [1, 2, 4] {
            let pool = ThreadPool::new(nthreads);
            let el = crate::EdgeList::weighted(
                200,
                (0..3000u32).map(|i| (i % 200, (i * 7 + 3) % 200)).collect(),
                (0..3000).map(|i| i as f32 * 0.5).collect(),
            );
            let mut par = Csr::from_edge_list_parallel(&el, &pool);
            let mut ser = Csr::from_edge_list(&el);
            par.sort_adjacency();
            ser.sort_adjacency();
            assert_eq!(par, ser, "nthreads={nthreads}");
        }
    }

    #[test]
    fn parallel_transpose_equals_serial_after_sorting() {
        for nthreads in [1, 2, 4] {
            let pool = ThreadPool::new(nthreads);
            let el = crate::EdgeList::weighted(
                150,
                (0..2500u32).map(|i| (i % 150, (i * 11 + 5) % 150)).collect(),
                (0..2500).map(|i| i as f32 * 0.25).collect(),
            );
            let g = Csr::from_edge_list(&el);
            let mut par = g.transpose_parallel(&pool);
            let mut ser = g.transpose();
            par.sort_adjacency();
            ser.sort_adjacency();
            assert_eq!(par, ser, "nthreads={nthreads}");
            assert_eq!(par.offsets, ser.offsets);
        }
    }

    #[test]
    fn parallel_sort_adjacency_equals_serial() {
        for nthreads in [1, 2, 4] {
            let pool = ThreadPool::new(nthreads);
            for weighted in [false, true] {
                let edges: Vec<_> = (0..2000u32).map(|i| (i % 97, (i * 31 + 7) % 97)).collect();
                let el = if weighted {
                    crate::EdgeList::weighted(
                        97,
                        edges.clone(),
                        (0..2000).map(|i| (i % 13) as f32).collect(),
                    )
                } else {
                    crate::EdgeList::new(97, edges)
                };
                let mut par = Csr::from_edge_list(&el);
                let mut ser = par.clone();
                par.sort_adjacency_parallel(&pool);
                ser.sort_adjacency();
                assert_eq!(par, ser, "nthreads={nthreads} weighted={weighted}");
            }
        }
    }

    #[test]
    fn parallel_transpose_empty_graph() {
        let pool = ThreadPool::new(2);
        let g = Csr::from_edge_list(&crate::EdgeList::new(0, vec![]));
        let t = g.transpose_parallel(&pool);
        assert_eq!(t.num_vertices(), 0);
        assert_eq!(t.num_edges(), 0);
    }

    #[test]
    fn size_bytes_accounts_for_weights() {
        // Pin the accounting: offsets are usize, targets u32, weights f32.
        let el = crate::EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let g = Csr::from_edge_list(&el);
        let unweighted = 5 * std::mem::size_of::<usize>() + 3 * std::mem::size_of::<VertexId>();
        assert_eq!(g.size_bytes(), unweighted);
        let elw = crate::EdgeList::weighted(4, vec![(0, 1), (1, 2), (2, 3)], vec![1.0, 2.0, 3.0]);
        let gw = Csr::from_edge_list(&elw);
        assert_eq!(gw.size_bytes(), unweighted + 3 * std::mem::size_of::<Weight>());
    }

    #[test]
    fn parallel_build_empty_and_isolated() {
        let pool = ThreadPool::new(2);
        let g = Csr::from_edge_list_parallel(&crate::EdgeList::new(5, vec![(2, 3)]), &pool);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_degree(0), 0);
        assert_eq!(g.neighbors(2), &[3]);
        let g = Csr::from_edge_list_parallel(&crate::EdgeList::new(0, vec![]), &pool);
        assert_eq!(g.num_vertices(), 0);
    }
}
