//! Compressed sparse row adjacency.
//!
//! CSR is the representation shared (with implementation differences the
//! paper notes in §V) by Graph500, GAP, and GraphBIG. Construction uses the
//! counting-sort scheme of the Graph500 reference code so that the engines'
//! "data structure construction" phase does real, representative work.

use crate::{EdgeList, VertexId, Weight};

/// Compressed-sparse-row graph. Always stores out-edges; build the transpose
/// for in-edges (pull-direction algorithms such as direction-optimizing BFS
/// and pull PageRank need both).
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` (and `weights`).
    pub offsets: Vec<usize>,
    /// Concatenated adjacency lists.
    pub targets: Vec<VertexId>,
    /// Optional weights parallel to `targets`.
    pub weights: Option<Vec<Weight>>,
}

impl Csr {
    /// Builds a CSR from an edge list via counting sort. `O(V + E)`.
    pub fn from_edge_list(el: &EdgeList) -> Csr {
        let n = el.num_vertices;
        let mut counts = vec![0usize; n + 1];
        for &(u, _) in &el.edges {
            counts[u as usize + 1] += 1;
        }
        for v in 0..n {
            counts[v + 1] += counts[v];
        }
        let offsets = counts.clone();
        let mut targets = vec![0 as VertexId; el.edges.len()];
        let mut weights = el.weights.as_ref().map(|_| vec![0.0 as Weight; el.edges.len()]);
        let mut cursor = counts;
        for (i, &(u, v)) in el.edges.iter().enumerate() {
            let slot = cursor[u as usize];
            cursor[u as usize] += 1;
            targets[slot] = v;
            if let Some(ws) = weights.as_mut() {
                ws[slot] = el.weight(i);
            }
        }
        Csr { offsets, targets, weights }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// True if edges carry weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Neighbors of `v` with weights (1.0 when unweighted).
    pub fn neighbors_weighted(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let range = self.offsets[v as usize]..self.offsets[v as usize + 1];
        let ws = self.weights.as_deref();
        range.map(move |i| (self.targets[i], ws.map_or(1.0, |w| w[i])))
    }

    /// Builds the transposed graph (in-edges become out-edges). `O(V + E)`.
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut counts = vec![0usize; n + 1];
        for &t in &self.targets {
            counts[t as usize + 1] += 1;
        }
        for v in 0..n {
            counts[v + 1] += counts[v];
        }
        let offsets = counts.clone();
        let mut targets = vec![0 as VertexId; self.targets.len()];
        let mut weights = self.weights.as_ref().map(|_| vec![0.0 as Weight; self.targets.len()]);
        let mut cursor = counts;
        for u in 0..n as VertexId {
            for i in self.offsets[u as usize]..self.offsets[u as usize + 1] {
                let t = self.targets[i] as usize;
                let slot = cursor[t];
                cursor[t] += 1;
                targets[slot] = u;
                if let (Some(dst), Some(src)) = (weights.as_mut(), self.weights.as_ref()) {
                    dst[slot] = src[i];
                }
            }
        }
        Csr { offsets, targets, weights }
    }

    /// Sorts each adjacency list (weights permuted alongside). Sorted lists
    /// are required by the LCC intersection kernels.
    pub fn sort_adjacency(&mut self) {
        let n = self.num_vertices();
        for v in 0..n {
            let lo = self.offsets[v];
            let hi = self.offsets[v + 1];
            if let Some(ws) = self.weights.as_mut() {
                let mut pairs: Vec<(VertexId, Weight)> =
                    self.targets[lo..hi].iter().copied().zip(ws[lo..hi].iter().copied()).collect();
                pairs.sort_unstable_by_key(|&(t, w)| (t, w.to_bits()));
                for (k, (t, w)) in pairs.into_iter().enumerate() {
                    self.targets[lo + k] = t;
                    ws[lo + k] = w;
                }
            } else {
                self.targets[lo..hi].sort_unstable();
            }
        }
    }

    /// Converts back to an edge list (in adjacency order).
    pub fn to_edge_list(&self) -> EdgeList {
        let mut edges = Vec::with_capacity(self.num_edges());
        let mut weights = self.weights.as_ref().map(|_| Vec::with_capacity(self.num_edges()));
        for u in 0..self.num_vertices() as VertexId {
            for (v, w) in self.neighbors_weighted(u) {
                edges.push((u, v));
                if let Some(ws) = weights.as_mut() {
                    ws.push(w);
                }
            }
        }
        EdgeList { num_vertices: self.num_vertices(), edges, weights }
    }

    /// Approximate resident size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self.weights.as_ref().map_or(0, |w| w.len() * std::mem::size_of::<Weight>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::weighted(
            5,
            vec![(0, 1), (0, 2), (1, 3), (3, 0), (3, 4), (2, 2)],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
    }

    #[test]
    fn build_and_degrees() {
        let g = Csr::from_edge_list(&sample());
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 2);
        assert_eq!(g.out_degree(4), 0);
        assert_eq!(g.neighbors(1), &[3]);
    }

    #[test]
    fn weights_follow_edges() {
        let g = Csr::from_edge_list(&sample());
        let nbrs: Vec<_> = g.neighbors_weighted(3).collect();
        assert_eq!(nbrs, vec![(0, 4.0), (4, 5.0)]);
    }

    #[test]
    fn transpose_reverses() {
        let g = Csr::from_edge_list(&sample());
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        // In-neighbors of 0 = {3}; of 2 = {0, 2}.
        assert_eq!(t.neighbors(0), &[3]);
        let mut in2 = t.neighbors(2).to_vec();
        in2.sort_unstable();
        assert_eq!(in2, vec![0, 2]);
        // Transposing twice restores the original edges (as sets per vertex).
        let mut tt = t.transpose();
        let mut orig = g.clone();
        tt.sort_adjacency();
        orig.sort_adjacency();
        assert_eq!(tt, orig);
    }

    #[test]
    fn sort_adjacency_keeps_weight_pairing() {
        let el = EdgeList::weighted(3, vec![(0, 2), (0, 1)], vec![9.0, 7.0]);
        let mut g = Csr::from_edge_list(&el);
        g.sort_adjacency();
        let nbrs: Vec<_> = g.neighbors_weighted(0).collect();
        assert_eq!(nbrs, vec![(1, 7.0), (2, 9.0)]);
    }

    #[test]
    fn edge_list_roundtrip_preserves_multiset() {
        let el = sample();
        let g = Csr::from_edge_list(&el);
        let back = g.to_edge_list();
        let mut a: Vec<_> = el.iter().map(|(u, v, w)| (u, v, w.to_bits())).collect();
        let mut b: Vec<_> = back.iter().map(|(u, v, w)| (u, v, w.to_bits())).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edge_list(&EdgeList::new(0, vec![]));
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = Csr::from_edge_list(&EdgeList::new(4, vec![(1, 2)]));
        assert_eq!(g.out_degree(0), 0);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.neighbors(1), &[2]);
    }
}

/// Fixed per-worker partition used by the two-pass kernels: worker `w` of
/// `nworkers` owns `[w·B, (w+1)·B) ∩ [0, len)` with `B = ceil(len/nworkers)`.
/// The split depends only on `len` and `nworkers` — never on scheduler
/// state — which is what makes the parallel builds deterministic.
fn worker_range(len: usize, w: usize, nworkers: usize) -> (usize, usize) {
    let block = len.div_ceil(nworkers).max(1);
    let lo = (w * block).min(len);
    let hi = (lo + block).min(len);
    (lo, hi)
}

impl Csr {
    /// Turns a worker-major count matrix (`counts[w*n + v]` = occurrences of
    /// vertex `v` counted by worker `w`) into the CSR `offsets` array, and
    /// rewrites `counts` in place into per-(worker, vertex) write cursors:
    /// after this call, `counts[w*n + v]` is the first slot worker `w` may
    /// fill for vertex `v`, and the cursor ranges of successive workers for
    /// the same vertex are adjacent and in worker order. Shared core of the
    /// two-pass [`Csr::from_edge_list_parallel`] / [`Csr::transpose_parallel`].
    fn scan_count_matrix(
        counts: &mut [u64],
        n: usize,
        m: usize,
        pool: &epg_parallel::ThreadPool,
    ) -> Vec<usize> {
        use epg_parallel::DisjointWriter;

        let nworkers = pool.num_threads();
        // Reduce worker rows into per-vertex degrees, each worker owning a
        // disjoint vertex range.
        let mut deg = vec![0u64; n];
        {
            let counts_ref: &[u64] = counts;
            let dw = DisjointWriter::new(&mut deg);
            pool.region(|t| {
                let (vlo, vhi) = worker_range(n, t, nworkers);
                // SAFETY: vertex ranges are pairwise disjoint across workers.
                let out = unsafe { dw.range_mut(vlo, vhi) };
                for (k, v) in (vlo..vhi).enumerate() {
                    let mut s = 0u64;
                    for w in 0..nworkers {
                        s += counts_ref[w * n + v];
                    }
                    out[k] = s;
                }
            });
        }
        let total = pool.exclusive_scan(&mut deg);
        debug_assert_eq!(total as usize, m);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.extend(deg.iter().map(|&x| x as usize));
        offsets.push(m);
        // Scan each vertex's column down the worker rows so every
        // (worker, vertex) pair gets its own disjoint slot range, laid out
        // in worker order — the parallel scatter then reproduces the global
        // edge order exactly.
        {
            let deg_ref: &[u64] = &deg;
            let cw = DisjointWriter::new(counts);
            pool.region(|t| {
                let (vlo, vhi) = worker_range(n, t, nworkers);
                for v in vlo..vhi {
                    let mut run = deg_ref[v];
                    for w in 0..nworkers {
                        // SAFETY: column `v` lies in this worker's disjoint
                        // vertex range, so each index is touched once.
                        let slot = unsafe { cw.get_raw(w * n + v) };
                        let c = *slot;
                        *slot = run;
                        run += c;
                    }
                }
            });
        }
        offsets
    }

    /// Parallel CSR construction via a contention-free two-pass counting
    /// build (the GBBS scheme): each worker histograms a fixed contiguous
    /// edge range into its private count-matrix row, a parallel exclusive
    /// scan turns the matrix into disjoint per-(worker, vertex) cursors, and
    /// a second pass over the same ranges scatters through those cursors —
    /// no shared atomics anywhere.
    ///
    /// Because the worker ranges are fixed (see [`worker_range`]) and cursor
    /// ranges are laid out in worker order, the output preserves the global
    /// edge order within each adjacency list and is **byte-identical to the
    /// serial [`Csr::from_edge_list`] at every thread count** — no
    /// [`Csr::sort_adjacency`] pass is needed to canonicalize.
    pub fn from_edge_list_parallel(el: &EdgeList, pool: &epg_parallel::ThreadPool) -> Csr {
        use epg_parallel::DisjointWriter;

        let nworkers = pool.num_threads();
        if nworkers == 1 {
            // Serial fast path: one worker needs neither the count matrix
            // nor the second read of the edge array.
            return Csr::from_edge_list(el);
        }
        let n = el.num_vertices;
        let m = el.edges.len();
        if m == 0 {
            return Csr {
                offsets: vec![0; n + 1],
                targets: Vec::new(),
                weights: el.weights.as_ref().map(|_| Vec::new()),
            };
        }
        // Pass 1: private degree histograms, one count-matrix row per worker.
        let mut counts = vec![0u64; nworkers * n];
        {
            let edges = &el.edges;
            let cw = DisjointWriter::new(&mut counts);
            pool.region(|w| {
                let (lo, hi) = worker_range(m, w, nworkers);
                // SAFETY: row `w` of the count matrix belongs to worker `w`
                // alone; rows are pairwise disjoint.
                let row = unsafe { cw.range_mut(w * n, (w + 1) * n) };
                for &(u, _) in &edges[lo..hi] {
                    row[u as usize] += 1;
                }
            });
        }
        let offsets = Csr::scan_count_matrix(&mut counts, n, m, pool);
        // Pass 2: re-read the same fixed ranges; each (worker, vertex) pair
        // writes into its own precomputed slot range.
        let mut targets = vec![0 as VertexId; m];
        let mut weights = el.weights.as_ref().map(|_| vec![0.0 as Weight; m]);
        {
            let cw = DisjointWriter::new(&mut counts);
            let tw = DisjointWriter::new(&mut targets);
            let ww = weights.as_mut().map(|w| DisjointWriter::new(w.as_mut_slice()));
            pool.region(|w| {
                let (lo, hi) = worker_range(m, w, nworkers);
                // SAFETY: cursor row `w` is private to worker `w`.
                let row = unsafe { cw.range_mut(w * n, (w + 1) * n) };
                for i in lo..hi {
                    let (u, v) = el.edges[i];
                    let slot = row[u as usize] as usize;
                    row[u as usize] += 1;
                    // SAFETY: cursor ranges partition `0..m`, so each slot
                    // is handed out exactly once across all workers.
                    unsafe {
                        tw.write_unchecked(slot, v);
                        if let Some(ww) = &ww {
                            ww.write_unchecked(slot, el.weight(i));
                        }
                    }
                }
            });
        }
        Csr { offsets, targets, weights }
    }

    /// Parallel transpose with the same two-pass counting structure as
    /// [`Csr::from_edge_list_parallel`], histogramming in-degrees over fixed
    /// edge-index ranges. Deterministic and **byte-identical to the serial
    /// [`Csr::transpose`] at every thread count**: both scatter edges in
    /// global edge-index order, so each transposed adjacency list holds its
    /// sources in first-occurrence order.
    pub fn transpose_parallel(&self, pool: &epg_parallel::ThreadPool) -> Csr {
        use epg_parallel::DisjointWriter;

        let nworkers = pool.num_threads();
        if nworkers == 1 {
            return self.transpose();
        }
        let n = self.num_vertices();
        let m = self.num_edges();
        if m == 0 {
            return Csr {
                offsets: vec![0; n + 1],
                targets: Vec::new(),
                weights: self.weights.as_ref().map(|_| Vec::new()),
            };
        }
        // Pass 1: private in-degree histograms over fixed edge ranges.
        let mut counts = vec![0u64; nworkers * n];
        {
            let targets = &self.targets;
            let cw = DisjointWriter::new(&mut counts);
            pool.region(|w| {
                let (lo, hi) = worker_range(m, w, nworkers);
                // SAFETY: row `w` of the count matrix belongs to worker `w`
                // alone; rows are pairwise disjoint.
                let row = unsafe { cw.range_mut(w * n, (w + 1) * n) };
                for &t in &targets[lo..hi] {
                    row[t as usize] += 1;
                }
            });
        }
        let offsets = Csr::scan_count_matrix(&mut counts, n, m, pool);
        // Pass 2: walk the same edge ranges, deriving each edge's source
        // vertex from the CSR offsets as the range is traversed.
        let mut targets = vec![0 as VertexId; m];
        let mut weights = self.weights.as_ref().map(|_| vec![0.0 as Weight; m]);
        {
            let cw = DisjointWriter::new(&mut counts);
            let tw = DisjointWriter::new(&mut targets);
            let ww = weights.as_mut().map(|w| DisjointWriter::new(w.as_mut_slice()));
            pool.region(|w| {
                let (lo, hi) = worker_range(m, w, nworkers);
                if lo >= hi {
                    return;
                }
                // SAFETY: cursor row `w` is private to worker `w`.
                let row = unsafe { cw.range_mut(w * n, (w + 1) * n) };
                // Source of edge `lo`: the last `u` with `offsets[u] <= lo`
                // (well-defined since `offsets[0] = 0 <= lo`).
                let mut u = self.offsets.partition_point(|&o| o <= lo) - 1;
                for i in lo..hi {
                    while self.offsets[u + 1] <= i {
                        u += 1;
                    }
                    let t = self.targets[i] as usize;
                    let slot = row[t] as usize;
                    row[t] += 1;
                    // SAFETY: cursor ranges partition `0..m`, so each slot
                    // is handed out exactly once across all workers.
                    unsafe {
                        tw.write_unchecked(slot, u as VertexId);
                        if let Some(src) = self.weights.as_ref() {
                            if let Some(ww) = &ww {
                                ww.write_unchecked(slot, src[i]);
                            }
                        }
                    }
                }
            });
        }
        Csr { offsets, targets, weights }
    }

    /// Parallel adjacency sort: vertices are split at edge-balanced cuts
    /// (the same fixed [`worker_range`] rule over edge indices, rounded to
    /// vertex boundaries) and each worker sorts its vertices' disjoint
    /// `targets`/`weights` spans in place. Same canonical order as the
    /// serial [`Csr::sort_adjacency`], and — like the construction kernels —
    /// free of scheduler state and shared-counter chunk claims.
    pub fn sort_adjacency_parallel(&mut self, pool: &epg_parallel::ThreadPool) {
        use epg_parallel::DisjointWriter;

        let nworkers = pool.num_threads();
        if nworkers == 1 {
            self.sort_adjacency();
            return;
        }
        let n = self.num_vertices();
        let m = self.num_edges();
        // cuts[w]..cuts[w+1] is worker w's vertex range; cut points land on
        // the vertex whose adjacency straddles each m/nworkers boundary, so
        // skewed degree distributions still balance by edges, not vertices.
        let block = m.div_ceil(nworkers).max(1);
        let mut cuts = Vec::with_capacity(nworkers + 1);
        for w in 0..=nworkers {
            let target = (w * block).min(m);
            cuts.push(self.offsets.partition_point(|&o| o < target));
        }
        cuts[0] = 0;
        cuts[nworkers] = n; // sweep zero-degree tail vertices into the last range
        let Csr { offsets, targets, weights } = self;
        let tw = DisjointWriter::new(targets.as_mut_slice());
        let ww = weights.as_mut().map(|w| DisjointWriter::new(w.as_mut_slice()));
        let cuts_ref = &cuts;
        pool.region(|t| {
            for v in cuts_ref[t]..cuts_ref[t + 1] {
                let (lo, hi) = (offsets[v], offsets[v + 1]);
                // SAFETY: per-vertex spans [lo, hi) are disjoint because the
                // vertex cut ranges handed to workers are disjoint.
                unsafe {
                    let ts = tw.range_mut(lo, hi);
                    if let Some(ww) = &ww {
                        let ws = ww.range_mut(lo, hi);
                        let mut pairs: Vec<(VertexId, Weight)> =
                            ts.iter().copied().zip(ws.iter().copied()).collect();
                        pairs.sort_unstable_by_key(|&(t, w)| (t, w.to_bits()));
                        for (k, (t, w)) in pairs.into_iter().enumerate() {
                            ts[k] = t;
                            ws[k] = w;
                        }
                    } else {
                        ts.sort_unstable();
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod parallel_build_tests {
    use super::*;
    use epg_parallel::ThreadPool;

    #[test]
    fn parallel_build_is_byte_identical_to_serial() {
        // No sort pass: the two-pass build preserves global edge order, so
        // every field must match the serial counting sort exactly.
        for nthreads in [1, 2, 3, 4, 8] {
            let pool = ThreadPool::new(nthreads);
            let el = crate::EdgeList::weighted(
                200,
                (0..3000u32).map(|i| (i % 200, (i * 7 + 3) % 200)).collect(),
                (0..3000).map(|i| i as f32 * 0.5).collect(),
            );
            let par = Csr::from_edge_list_parallel(&el, &pool);
            let ser = Csr::from_edge_list(&el);
            assert_eq!(par.offsets, ser.offsets, "nthreads={nthreads}");
            assert_eq!(par.targets, ser.targets, "nthreads={nthreads}");
            assert_eq!(par.weights, ser.weights, "nthreads={nthreads}");
        }
    }

    #[test]
    fn parallel_transpose_is_byte_identical_to_serial() {
        for nthreads in [1, 2, 3, 4, 8] {
            let pool = ThreadPool::new(nthreads);
            let el = crate::EdgeList::weighted(
                150,
                (0..2500u32).map(|i| (i % 150, (i * 11 + 5) % 150)).collect(),
                (0..2500).map(|i| i as f32 * 0.25).collect(),
            );
            let g = Csr::from_edge_list(&el);
            let par = g.transpose_parallel(&pool);
            let ser = g.transpose();
            assert_eq!(par.offsets, ser.offsets, "nthreads={nthreads}");
            assert_eq!(par.targets, ser.targets, "nthreads={nthreads}");
            assert_eq!(par.weights, ser.weights, "nthreads={nthreads}");
        }
    }

    #[test]
    fn two_pass_kernels_report_zero_data_rmw() {
        // Runtime pin of the "no shared atomics" claim: the build and
        // transpose kernels must not report a single data RMW to the pool.
        let pool = ThreadPool::new(4);
        let el = crate::EdgeList::weighted(
            128,
            (0..4000u32).map(|i| (i % 128, (i * 13 + 1) % 128)).collect(),
            (0..4000).map(|i| i as f32).collect(),
        );
        let before = pool.stats();
        let g = Csr::from_edge_list_parallel(&el, &pool);
        let mut t = g.transpose_parallel(&pool);
        t.sort_adjacency_parallel(&pool);
        let after = pool.stats();
        assert!(after.regions > before.regions, "kernels must actually run in parallel regions");
        assert_eq!(
            after.data_rmw - before.data_rmw,
            0,
            "two-pass construction performed atomic RMW ops on shared data"
        );
    }

    #[test]
    fn two_pass_kernels_are_atomic_free_in_source() {
        // Static pin: this file must not regain atomic RMW machinery. The
        // needles are assembled at runtime so the test's own literals do not
        // match themselves in the include_str! snapshot.
        let src = include_str!("csr.rs");
        for needle in ["fetch§add", "fetch§sub", "compare§exchange", "Atomic§U64", "sync::§atomic"]
        {
            let needle = needle.replace('§', "");
            assert!(
                !src.contains(&needle),
                "csr.rs contains `{needle}` — the two-pass kernels must stay atomic-free"
            );
        }
    }

    #[test]
    fn parallel_sort_adjacency_equals_serial() {
        for nthreads in [1, 2, 4] {
            let pool = ThreadPool::new(nthreads);
            for weighted in [false, true] {
                let edges: Vec<_> = (0..2000u32).map(|i| (i % 97, (i * 31 + 7) % 97)).collect();
                let el = if weighted {
                    crate::EdgeList::weighted(
                        97,
                        edges.clone(),
                        (0..2000).map(|i| (i % 13) as f32).collect(),
                    )
                } else {
                    crate::EdgeList::new(97, edges)
                };
                let mut par = Csr::from_edge_list(&el);
                let mut ser = par.clone();
                par.sort_adjacency_parallel(&pool);
                ser.sort_adjacency();
                assert_eq!(par, ser, "nthreads={nthreads} weighted={weighted}");
            }
        }
    }

    #[test]
    fn parallel_transpose_empty_graph() {
        let pool = ThreadPool::new(2);
        let g = Csr::from_edge_list(&crate::EdgeList::new(0, vec![]));
        let t = g.transpose_parallel(&pool);
        assert_eq!(t.num_vertices(), 0);
        assert_eq!(t.num_edges(), 0);
    }

    #[test]
    fn size_bytes_accounts_for_weights() {
        // Pin the accounting: offsets are usize, targets u32, weights f32.
        let el = crate::EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let g = Csr::from_edge_list(&el);
        let unweighted = 5 * std::mem::size_of::<usize>() + 3 * std::mem::size_of::<VertexId>();
        assert_eq!(g.size_bytes(), unweighted);
        let elw = crate::EdgeList::weighted(4, vec![(0, 1), (1, 2), (2, 3)], vec![1.0, 2.0, 3.0]);
        let gw = Csr::from_edge_list(&elw);
        assert_eq!(gw.size_bytes(), unweighted + 3 * std::mem::size_of::<Weight>());
    }

    #[test]
    fn parallel_build_empty_and_isolated() {
        let pool = ThreadPool::new(2);
        let g = Csr::from_edge_list_parallel(&crate::EdgeList::new(5, vec![(2, 3)]), &pool);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_degree(0), 0);
        assert_eq!(g.neighbors(2), &[3]);
        let g = Csr::from_edge_list_parallel(&crate::EdgeList::new(0, vec![]), &pool);
        assert_eq!(g.num_vertices(), 0);
    }
}
