//! Graph-structure analysis for dataset characterization.
//!
//! The homogenizer phase reports what kind of graph it produced — the
//! properties the paper's discussion keeps returning to: degree skew
//! (Kronecker/power-law vs uniform), density (dota-league vs cit-Patents),
//! effective diameter (BFS levels), and connectivity. These summaries feed
//! `epg gen`'s output and the dataset sections of reports.

use crate::{degree, oracle, Csr, EdgeList, VertexId};

/// Log-binned degree histogram: bucket `i` counts vertices with out-degree
/// in `[2^i, 2^(i+1))`; bucket 0 additionally holds degree-0 and degree-1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// Counts per power-of-two bucket.
    pub buckets: Vec<u64>,
}

impl DegreeHistogram {
    /// Builds the histogram from out-degrees.
    pub fn of(el: &EdgeList) -> DegreeHistogram {
        let mut buckets = Vec::new();
        for d in el.out_degrees() {
            let b = if d <= 1 { 0 } else { (u32::BITS - d.leading_zeros() - 1) as usize };
            if b >= buckets.len() {
                buckets.resize(b + 1, 0);
            }
            buckets[b] += 1;
        }
        DegreeHistogram { buckets }
    }

    /// Renders as an ASCII sparkline-style table.
    pub fn to_text(&self) -> String {
        let max = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            let lo = if i == 0 { 0 } else { 1u64 << i };
            let hi = (1u64 << (i + 1)) - 1;
            let bar = "#".repeat(((c * 40) / max) as usize);
            out.push_str(&format!("deg {lo:>7}-{hi:<7} {c:>9} {bar}\n"));
        }
        out
    }
}

/// A full structural characterization of a dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphProfile {
    /// Basic degree statistics.
    pub degrees: degree::DegreeStats,
    /// Log-binned degree histogram.
    pub histogram: DegreeHistogram,
    /// Number of weakly connected components.
    pub num_components: usize,
    /// Vertices in the largest component.
    pub largest_component: usize,
    /// Pseudo-diameter of the largest component (double-sweep BFS lower
    /// bound — the standard cheap estimator).
    pub pseudo_diameter: u32,
    /// Whether the edge list is weighted.
    pub weighted: bool,
}

impl GraphProfile {
    /// Profiles an edge list (treats edges as undirected for connectivity
    /// and diameter, matching how the experiments use the graphs).
    pub fn of(el: &EdgeList) -> GraphProfile {
        let degrees = degree::degree_stats(el);
        let histogram = DegreeHistogram::of(el);
        let sym = el.symmetrized();
        let g = Csr::from_edge_list(&sym);
        let comp = oracle::wcc(&g);
        let mut sizes: std::collections::HashMap<VertexId, usize> =
            std::collections::HashMap::new();
        for &c in &comp {
            *sizes.entry(c).or_insert(0) += 1;
        }
        let num_components = sizes.len();
        let (largest_root, largest_component) =
            sizes.iter().max_by_key(|&(_, &s)| s).map(|(&c, &s)| (c, s)).unwrap_or((0, 0));

        // Double sweep: BFS from the largest component's root, then BFS
        // again from the farthest vertex found.
        let pseudo_diameter = if largest_component > 1 {
            let first = oracle::bfs(&g, largest_root);
            let far = first
                .level
                .iter()
                .enumerate()
                .filter(|&(_, &l)| l != u32::MAX)
                .max_by_key(|&(_, &l)| l)
                .map(|(v, _)| v as VertexId)
                .unwrap_or(largest_root);
            let second = oracle::bfs(&g, far);
            second.level.iter().filter(|&&l| l != u32::MAX).copied().max().unwrap_or(0)
        } else {
            0
        };
        GraphProfile {
            degrees,
            histogram,
            num_components,
            largest_component,
            pseudo_diameter,
            weighted: el.is_weighted(),
        }
    }

    /// One-paragraph textual summary for reports.
    pub fn to_text(&self) -> String {
        format!(
            "{} vertices, {} edges (mean degree {:.2}, max {}), {}; \
             {} weakly connected components (largest: {} vertices, \
             pseudo-diameter {}); top-1% vertices own {:.1}% of edges\n{}",
            self.degrees.num_vertices,
            self.degrees.num_edges,
            self.degrees.mean_degree,
            self.degrees.max_degree,
            if self.weighted { "weighted" } else { "unweighted" },
            self.num_components,
            self.largest_component,
            self.pseudo_diameter,
            self.degrees.top1pct_edge_share * 100.0,
            self.histogram.to_text()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        // Degrees: 0, 1, 2, 3, 4, 8.
        let mut edges = Vec::new();
        let mut next = 6u32;
        for (v, d) in [(1u32, 1u32), (2, 2), (3, 3), (4, 4), (5, 8)] {
            for _ in 0..d {
                edges.push((v, next % 20));
                next += 1;
            }
        }
        let el = EdgeList::new(20, edges);
        let h = DegreeHistogram::of(&el);
        // Bucket 0: degrees 0 and 1 (vertex 0 + 14 isolated + vertex 1).
        assert_eq!(h.buckets[1], 2); // degrees 2 and 3
        assert_eq!(h.buckets[2], 1); // degree 4
        assert_eq!(h.buckets[3], 1); // degree 8
        assert!(h.to_text().contains('#'));
    }

    #[test]
    fn profile_of_two_triangles_plus_isolate() {
        let el =
            EdgeList::new(7, vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).symmetrized();
        let p = GraphProfile::of(&el);
        assert_eq!(p.num_components, 3); // two triangles + isolated vertex 6
        assert_eq!(p.largest_component, 3);
        assert_eq!(p.pseudo_diameter, 1);
        assert!(!p.weighted);
        assert!(p.to_text().contains("3 weakly connected components"));
    }

    #[test]
    fn pseudo_diameter_of_path() {
        let edges: Vec<_> = (0..20).map(|i| (i as VertexId, i as VertexId + 1)).collect();
        let el = EdgeList::new(21, edges);
        let p = GraphProfile::of(&el);
        assert_eq!(p.pseudo_diameter, 20);
        assert_eq!(p.num_components, 1);
    }

    #[test]
    fn kronecker_profile_is_skewed_and_low_diameter() {
        let el = epg_generator_free_kron();
        let p = GraphProfile::of(&el);
        assert!(p.degrees.top1pct_edge_share > 0.08);
        assert!(p.pseudo_diameter <= 12, "diameter {}", p.pseudo_diameter);
    }

    // epg-graph cannot depend on epg-generator (cycle); build a small
    // R-MAT-ish skewed graph inline.
    fn epg_generator_free_kron() -> EdgeList {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let scale = 10;
        let n = 1usize << scale;
        let mut edges = Vec::new();
        for _ in 0..n * 8 {
            let (mut u, mut v) = (0usize, 0usize);
            for b in 0..scale {
                let r: f64 = rng.gen();
                let (ub, vb) = if r < 0.57 {
                    (0, 0)
                } else if r < 0.76 {
                    (0, 1)
                } else if r < 0.95 {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u |= ub << b;
                v |= vb << b;
            }
            edges.push((u as VertexId, v as VertexId));
        }
        EdgeList::new(n, edges)
    }
}
