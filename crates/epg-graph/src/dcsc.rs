//! Doubly-compressed sparse column matrices.
//!
//! GraphMat stores the graph as a sparse matrix in DCSC (doubly-compressed
//! sparse column) form — only columns that actually contain nonzeros are
//! materialized — and expresses every algorithm as generalized sparse
//! matrix-vector products (§III-C item 4). This module is the storage half
//! of our mini-GraphBLAS; the semiring/SpMV half lives in
//! `epg-engine-graphmat`.

use crate::{Csr, EdgeList, VertexId, Weight};

/// A doubly-compressed sparse column matrix over `Weight`.
///
/// Semantics: entry `(r, c)` is an edge `c -> r`, so a column holds the
/// out-edges of one vertex and SpMV `y = A * x` propagates values along
/// edge direction (GraphMat's convention for push-style iteration is the
/// transpose; the engine builds both orientations).
#[derive(Clone, Debug, PartialEq)]
pub struct Dcsc {
    /// Matrix dimension (square: num_vertices).
    pub dim: usize,
    /// Ids of the non-empty columns, ascending.
    pub col_ids: Vec<VertexId>,
    /// `col_ptr[i]..col_ptr[i+1]` indexes `row_ids`/`values` for `col_ids[i]`.
    pub col_ptr: Vec<usize>,
    /// Row indices within each column, ascending within a column.
    pub row_ids: Vec<VertexId>,
    /// Nonzero values.
    pub values: Vec<Weight>,
}

impl Dcsc {
    /// Builds a DCSC matrix whose entry `(dst, src)` holds each edge's
    /// weight (1.0 when unweighted). Duplicate edges keep the last value.
    pub fn from_edge_list(el: &EdgeList) -> Dcsc {
        // Sort (src, dst) pairs: groups columns, orders rows within columns.
        let mut triples: Vec<(VertexId, VertexId, Weight)> = el.iter().collect();
        triples.sort_unstable_by_key(|&(u, v, _)| (u, v));
        triples.dedup_by_key(|&mut (u, v, _)| (u, v));

        let mut col_ids = Vec::new();
        let mut col_ptr = vec![0usize];
        let mut row_ids = Vec::with_capacity(triples.len());
        let mut values = Vec::with_capacity(triples.len());
        for (u, v, w) in triples {
            if col_ids.last() != Some(&u) {
                if !col_ids.is_empty() {
                    col_ptr.push(row_ids.len());
                }
                col_ids.push(u);
            }
            row_ids.push(v);
            values.push(w);
        }
        if !col_ids.is_empty() {
            col_ptr.push(row_ids.len());
        }
        Dcsc { dim: el.num_vertices, col_ids, col_ptr, row_ids, values }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_ids.len()
    }

    /// Number of materialized (non-empty) columns.
    pub fn num_nonempty_cols(&self) -> usize {
        self.col_ids.len()
    }

    /// Iterates the nonzeros of the column for vertex `src`, if materialized.
    pub fn column(&self, src: VertexId) -> &[VertexId] {
        match self.col_ids.binary_search(&src) {
            Ok(i) => &self.row_ids[self.col_ptr[i]..self.col_ptr[i + 1]],
            Err(_) => &[],
        }
    }

    /// Iterates `(row, value)` for materialized column index `i`
    /// (0-based over non-empty columns).
    pub fn col_entries(&self, i: usize) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        (self.col_ptr[i]..self.col_ptr[i + 1]).map(move |k| (self.row_ids[k], self.values[k]))
    }

    /// Iterates all nonzeros as `(row, col, value)`.
    pub fn triples(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.col_ids
            .iter()
            .enumerate()
            .flat_map(move |(i, &c)| self.col_entries(i).map(move |(r, v)| (r, c, v)))
    }

    /// Builds the transpose (edges reversed).
    pub fn transpose(&self) -> Dcsc {
        let mut el = EdgeList {
            num_vertices: self.dim,
            edges: Vec::with_capacity(self.nnz()),
            weights: Some(Vec::with_capacity(self.nnz())),
        };
        for (r, c, v) in self.triples() {
            el.edges.push((r, c));
            el.weights.as_mut().unwrap().push(v);
        }
        Dcsc::from_edge_list(&el)
    }

    /// Converts to CSR over out-edges (column-major becomes row adjacency of
    /// the *source*), for cross-representation tests.
    pub fn to_csr(&self) -> Csr {
        let mut el = EdgeList {
            num_vertices: self.dim,
            edges: Vec::with_capacity(self.nnz()),
            weights: Some(Vec::with_capacity(self.nnz())),
        };
        for (r, c, v) in self.triples() {
            el.edges.push((c, r));
            el.weights.as_mut().unwrap().push(v);
        }
        Csr::from_edge_list(&el)
    }

    /// Approximate resident size in bytes. DCSC's advantage over CSR — no
    /// O(V) offsets array when few columns are populated — is visible here.
    pub fn size_bytes(&self) -> usize {
        self.col_ids.len() * std::mem::size_of::<VertexId>()
            + self.col_ptr.len() * std::mem::size_of::<usize>()
            + self.row_ids.len() * std::mem::size_of::<VertexId>()
            + self.values.len() * std::mem::size_of::<Weight>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::weighted(
            6,
            vec![(0, 1), (0, 3), (4, 2), (4, 5), (4, 0)],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
    }

    #[test]
    fn compresses_empty_columns() {
        let m = Dcsc::from_edge_list(&sample());
        assert_eq!(m.dim, 6);
        assert_eq!(m.nnz(), 5);
        // Only vertices 0 and 4 have out-edges.
        assert_eq!(m.num_nonempty_cols(), 2);
        assert_eq!(m.col_ids, vec![0, 4]);
    }

    #[test]
    fn column_lookup() {
        let m = Dcsc::from_edge_list(&sample());
        assert_eq!(m.column(0), &[1, 3]);
        assert_eq!(m.column(4), &[0, 2, 5]);
        assert_eq!(m.column(1), &[] as &[VertexId]);
        assert_eq!(m.column(5), &[] as &[VertexId]);
    }

    #[test]
    fn triples_roundtrip_via_csr() {
        let el = sample();
        let m = Dcsc::from_edge_list(&el);
        let csr = m.to_csr();
        let mut a: Vec<_> = el.iter().map(|(u, v, w)| (u, v, w.to_bits())).collect();
        let mut b: Vec<_> =
            csr.to_edge_list().iter().map(|(u, v, w)| (u, v, w.to_bits())).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn transpose_involution() {
        let m = Dcsc::from_edge_list(&sample());
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn duplicate_edges_deduplicate() {
        let el = EdgeList::weighted(3, vec![(0, 1), (0, 1)], vec![1.0, 2.0]);
        let m = Dcsc::from_edge_list(&el);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn empty_matrix() {
        let m = Dcsc::from_edge_list(&EdgeList::new(4, vec![]));
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.num_nonempty_cols(), 0);
        assert_eq!(m.column(2), &[] as &[VertexId]);
    }

    #[test]
    fn unweighted_values_are_one() {
        let m = Dcsc::from_edge_list(&EdgeList::new(3, vec![(1, 2)]));
        assert_eq!(m.values, vec![1.0]);
    }
}
