//! SNAP text format and the homogenizer's binary format.
//!
//! The paper standardizes on the Stanford Network Analysis Project format:
//! one edge per line, vertices separated by whitespace, lines beginning with
//! `#` are comments (§III-B, footnote 4). An optional third column is the
//! edge weight. The dataset homogenizer also writes a compact binary format
//! (one per engine preference) "to speed up file I/O whenever possible by
//! using the library designer's serialized data structure file formats".

use crate::{EdgeList, VertexId, Weight};
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors arising while parsing graph files.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A data line was malformed; carries the 1-based line number and reason.
    Malformed {
        /// 1-based line number of the offending line (0 for headers).
        line: usize,
        /// Human-readable cause.
        reason: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, reason } => {
                write!(f, "malformed SNAP line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parses SNAP text from any reader. Vertex ids may be sparse; they are kept
/// as-is and `num_vertices` is `max_id + 1`. Weighted and unweighted lines
/// must not be mixed.
pub fn parse_snap<R: Read>(reader: R) -> Result<EdgeList, ParseError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut weights: Vec<Weight> = Vec::new();
    let mut saw_weighted = None::<bool>;
    let mut max_id: u64 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u: u64 = it
            .next()
            .unwrap()
            .parse()
            .map_err(|e| ParseError::Malformed { line: lineno, reason: format!("src: {e}") })?;
        let v: u64 = it
            .next()
            .ok_or_else(|| ParseError::Malformed { line: lineno, reason: "missing dst".into() })?
            .parse()
            .map_err(|e| ParseError::Malformed { line: lineno, reason: format!("dst: {e}") })?;
        let w = it.next();
        if it.next().is_some() {
            return Err(ParseError::Malformed { line: lineno, reason: "too many columns".into() });
        }
        let weighted = w.is_some();
        match saw_weighted {
            None => saw_weighted = Some(weighted),
            Some(prev) if prev != weighted => {
                return Err(ParseError::Malformed {
                    line: lineno,
                    reason: "mixed weighted and unweighted lines".into(),
                })
            }
            _ => {}
        }
        if let Some(w) = w {
            let w: Weight = w.parse().map_err(|e| ParseError::Malformed {
                line: lineno,
                reason: format!("weight: {e}"),
            })?;
            weights.push(w);
        }
        if u > VertexId::MAX as u64 - 1 || v > VertexId::MAX as u64 - 1 {
            return Err(ParseError::Malformed {
                line: lineno,
                reason: "vertex id too large".into(),
            });
        }
        max_id = max_id.max(u).max(v);
        edges.push((u as VertexId, v as VertexId));
    }
    let num_vertices = if edges.is_empty() { 0 } else { max_id as usize + 1 };
    Ok(EdgeList {
        num_vertices,
        edges,
        weights: if saw_weighted == Some(true) { Some(weights) } else { None },
    })
}

/// Parses a SNAP file from disk.
pub fn read_snap_file(path: &Path) -> Result<EdgeList, ParseError> {
    parse_snap(std::fs::File::open(path)?)
}

/// Serializes an edge list to SNAP text, with a comment header like the
/// SNAP repository files carry.
pub fn write_snap<W: Write>(el: &EdgeList, name: &str, out: W) -> io::Result<()> {
    let mut out = BufWriter::new(out);
    writeln!(out, "# {name}")?;
    writeln!(out, "# Nodes: {} Edges: {}", el.num_vertices, el.num_edges())?;
    let mut buf = String::new();
    for (u, v, w) in el.iter() {
        buf.clear();
        if el.is_weighted() {
            let _ = writeln!(buf, "{u}\t{v}\t{w}");
        } else {
            let _ = writeln!(buf, "{u}\t{v}");
        }
        out.write_all(buf.as_bytes())?;
    }
    out.flush()
}

/// Writes a SNAP file to disk.
pub fn write_snap_file(el: &EdgeList, name: &str, path: &Path) -> io::Result<()> {
    write_snap(el, name, std::fs::File::create(path)?)
}

pub(crate) const BIN_MAGIC: &[u8; 8] = b"EPGBIN01";

/// Writes the homogenizer's compact binary format: magic, vertex count,
/// edge count, weighted flag, then little-endian `(u32, u32[, f32])` records.
pub fn write_binary<W: Write>(el: &EdgeList, out: W) -> io::Result<()> {
    let mut out = BufWriter::new(out);
    out.write_all(BIN_MAGIC)?;
    out.write_all(&(el.num_vertices as u64).to_le_bytes())?;
    out.write_all(&(el.num_edges() as u64).to_le_bytes())?;
    out.write_all(&[el.is_weighted() as u8])?;
    for (i, &(u, v)) in el.edges.iter().enumerate() {
        out.write_all(&u.to_le_bytes())?;
        out.write_all(&v.to_le_bytes())?;
        if el.is_weighted() {
            out.write_all(&el.weight(i).to_le_bytes())?;
        }
    }
    out.flush()
}

/// Reads the binary format written by [`write_binary`].
pub fn read_binary<R: Read>(reader: R) -> Result<EdgeList, ParseError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BIN_MAGIC {
        return Err(ParseError::Malformed { line: 0, reason: "bad magic".into() });
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let m = u64::from_le_bytes(buf8) as usize;
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let weighted = flag[0] != 0;
    let mut edges = Vec::with_capacity(m);
    let mut weights = weighted.then(|| Vec::with_capacity(m));
    let mut buf4 = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut buf4)?;
        let u = VertexId::from_le_bytes(buf4);
        r.read_exact(&mut buf4)?;
        let v = VertexId::from_le_bytes(buf4);
        edges.push((u, v));
        if let Some(ws) = weights.as_mut() {
            r.read_exact(&mut buf4)?;
            ws.push(Weight::from_le_bytes(buf4));
        }
    }
    Ok(EdgeList { num_vertices: n, edges, weights })
}

/// Binary file convenience wrappers.
pub fn write_binary_file(el: &EdgeList, path: &Path) -> io::Result<()> {
    write_binary(el, std::fs::File::create(path)?)
}

/// Reads a binary graph file from disk.
pub fn read_binary_file(path: &Path) -> Result<EdgeList, ParseError> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_comments_and_blank_lines() {
        let text = "# SNAP sample\n\n0 1\n1 2\n# trailing comment\n2 0\n";
        let el = parse_snap(text.as_bytes()).unwrap();
        assert_eq!(el.num_vertices, 3);
        assert_eq!(el.edges, vec![(0, 1), (1, 2), (2, 0)]);
        assert!(!el.is_weighted());
    }

    #[test]
    fn parse_weighted() {
        let text = "0 1 0.5\n1 2 1.25\n";
        let el = parse_snap(text.as_bytes()).unwrap();
        assert_eq!(el.weights, Some(vec![0.5, 1.25]));
    }

    #[test]
    fn parse_tabs_and_spaces() {
        let text = "0\t1\n 1  2 \n";
        let el = parse_snap(text.as_bytes()).unwrap();
        assert_eq!(el.edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn sparse_ids_widen_vertex_count() {
        let el = parse_snap("5 9\n".as_bytes()).unwrap();
        assert_eq!(el.num_vertices, 10);
        assert_eq!(el.num_edges(), 1);
    }

    #[test]
    fn mixed_weighting_rejected() {
        let err = parse_snap("0 1\n1 2 0.5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 2, .. }));
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse_snap("0\n".as_bytes()).is_err());
        assert!(parse_snap("a b\n".as_bytes()).is_err());
        assert!(parse_snap("0 1 2 3\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let el = parse_snap("# nothing here\n".as_bytes()).unwrap();
        assert_eq!(el.num_vertices, 0);
        assert_eq!(el.num_edges(), 0);
    }

    #[test]
    fn snap_text_roundtrip() {
        let el = EdgeList::weighted(4, vec![(0, 3), (2, 1)], vec![0.25, 8.0]);
        let mut buf = Vec::new();
        write_snap(&el, "test", &mut buf).unwrap();
        let back = parse_snap(buf.as_slice()).unwrap();
        assert_eq!(back.edges, el.edges);
        assert_eq!(back.weights, el.weights);
    }

    #[test]
    fn binary_roundtrip_weighted_and_not() {
        for el in [
            EdgeList::new(3, vec![(0, 1), (1, 2)]),
            EdgeList::weighted(3, vec![(0, 1), (1, 2)], vec![1.5, -2.0]),
        ] {
            let mut buf = Vec::new();
            write_binary(&el, &mut buf).unwrap();
            let back = read_binary(buf.as_slice()).unwrap();
            assert_eq!(back, el);
        }
    }

    #[test]
    fn binary_bad_magic_rejected() {
        let err = read_binary(&b"NOTMAGIC\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { .. }));
    }

    #[test]
    fn binary_truncated_rejected() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 2)]);
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(buf.as_slice()).is_err());
    }
}
