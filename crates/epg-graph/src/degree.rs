//! Degree statistics and root sampling.
//!
//! The paper selects 32 search roots per graph, each with degree greater
//! than one, exactly as the Graph500 specification prescribes (§III-B).
//! This module implements that sampling plus the degree-distribution
//! summaries the analysis phase reports.

use crate::{EdgeList, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Summary of a degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Maximum out-degree.
    pub max_degree: u32,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Number of isolated (degree-0 in+out) vertices.
    pub isolated: usize,
    /// Gini-style skew proxy: fraction of edges owned by the top 1% of
    /// vertices by degree. Kronecker/power-law graphs score high; meshes low.
    pub top1pct_edge_share: f64,
}

/// Computes degree statistics from an edge list.
pub fn degree_stats(el: &EdgeList) -> DegreeStats {
    let out = el.out_degrees();
    let total = el.total_degrees();
    let max_degree = out.iter().copied().max().unwrap_or(0);
    let isolated = total.iter().filter(|&&d| d == 0).count();
    let mut sorted = out.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let top = (el.num_vertices.max(100) / 100).max(1).min(sorted.len().max(1));
    let top_edges: u64 = sorted.iter().take(top).map(|&d| d as u64).sum();
    DegreeStats {
        num_vertices: el.num_vertices,
        num_edges: el.num_edges(),
        max_degree,
        mean_degree: if el.num_vertices == 0 {
            0.0
        } else {
            el.num_edges() as f64 / el.num_vertices as f64
        },
        isolated,
        top1pct_edge_share: if el.num_edges() == 0 {
            0.0
        } else {
            top_edges as f64 / el.num_edges() as f64
        },
    }
}

/// Samples `count` distinct roots with total degree > 1, as in the Graph500
/// and §III-B ("each root is selected to have a degree greater than 1").
/// Returns fewer than `count` roots only when the graph does not contain
/// enough qualifying vertices.
pub fn sample_roots(el: &EdgeList, count: usize, seed: u64) -> Vec<VertexId> {
    let deg = el.total_degrees();
    let eligible: Vec<VertexId> =
        (0..el.num_vertices as VertexId).filter(|&v| deg[v as usize] > 1).collect();
    if eligible.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    if eligible.len() <= count {
        return eligible;
    }
    // Floyd's algorithm for distinct sampling without shuffling the pool.
    let mut chosen = std::collections::BTreeSet::new();
    let n = eligible.len();
    for j in n - count..n {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(eligible[t]) {
            chosen.insert(eligible[j]);
        }
    }
    let mut roots: Vec<VertexId> = chosen.into_iter().collect();
    // Deterministic but shuffled order.
    for i in (1..roots.len()).rev() {
        roots.swap(i, rng.gen_range(0..=i));
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: usize) -> EdgeList {
        EdgeList::new(n, (1..n as VertexId).map(|v| (0, v)).collect())
    }

    #[test]
    fn stats_on_star() {
        let el = star(101);
        let s = degree_stats(&el);
        assert_eq!(s.max_degree, 100);
        assert_eq!(s.isolated, 0);
        assert!((s.mean_degree - 100.0 / 101.0).abs() < 1e-12);
        // Hub owns all edges: top 1% share is 1.
        assert_eq!(s.top1pct_edge_share, 1.0);
    }

    #[test]
    fn stats_empty() {
        let s = degree_stats(&EdgeList::new(0, vec![]));
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(s.top1pct_edge_share, 0.0);
    }

    #[test]
    fn roots_have_degree_greater_than_one() {
        // Path graph: endpoints have total degree 1, inner vertices 2.
        let el = EdgeList::new(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let roots = sample_roots(&el, 10, 42);
        assert!(!roots.is_empty());
        let deg = el.total_degrees();
        for r in &roots {
            assert!(deg[*r as usize] > 1, "root {r} has degree <= 1");
        }
        assert!(!roots.contains(&0));
        assert!(!roots.contains(&5));
    }

    #[test]
    fn roots_are_distinct_and_deterministic() {
        let el = star(64).symmetrized();
        let a = sample_roots(&el, 32, 7);
        let b = sample_roots(&el, 32, 7);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len());
    }

    #[test]
    fn different_seeds_differ() {
        let el = star(400).symmetrized();
        assert_ne!(sample_roots(&el, 32, 1), sample_roots(&el, 32, 2));
    }

    #[test]
    fn no_eligible_roots() {
        let el = EdgeList::new(2, vec![(0, 1)]);
        assert!(sample_roots(&el, 4, 0).is_empty());
    }
}
