//! Graph substrate for `easy-parallel-graph-rs`.
//!
//! This crate provides every graph representation used by the five engine
//! crates, the SNAP text format the paper standardizes on (§III-B), the
//! per-engine binary formats written by the dataset homogenizer, sequential
//! oracle algorithms used for correctness checking, and BFS-tree validation
//! in the style of the Graph500 specification.
//!
//! Representations:
//! - [`EdgeList`]: unsorted COO edge list, the Graph500 "edge list in RAM".
//! - [`Csr`]: compressed sparse row, used by GAP, Graph500, and GraphBIG.
//! - [`Dcsc`]: doubly-compressed sparse column, used by the GraphMat engine.
//! - [`adjacency::PropertyGraph`]: openG-style vertex/edge property store
//!   used by the GraphBIG engine.

#![allow(clippy::needless_range_loop)] // index-centric kernels mirror the C reference loops
#![warn(missing_docs)]
pub mod adjacency;
pub mod analysis;
pub mod csr;
pub mod dcsc;
pub mod degree;
pub mod edge_list;
pub mod ingest;
pub mod oracle;
pub mod snap;
pub mod validate;

pub use csr::Csr;
pub use dcsc::Dcsc;
pub use edge_list::EdgeList;

/// Vertex identifier. `u32` comfortably covers the paper's largest graph
/// (scale 23 = 2^23 vertices) while halving memory traffic versus `u64`.
pub type VertexId = u32;

/// Edge weight. The paper's systems store weights as single-precision floats
/// (GAP can be recompiled for integer weights; see the `ablation_weights`
/// bench for that comparison).
pub type Weight = f32;

/// Sentinel for "no vertex" (roots' parents, unreached vertices).
pub const NO_VERTEX: VertexId = VertexId::MAX;

/// Sentinel distance for unreachable vertices in SSSP results.
pub const INF_DIST: Weight = Weight::INFINITY;
