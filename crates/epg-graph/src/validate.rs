//! Result validation in the style of the Graph500 specification.
//!
//! Graph500 Benchmark 1 requires every BFS run to be validated against five
//! structural properties of the returned parent tree. The Graph500 engine
//! runs these after every root; integration tests run them against every
//! engine's BFS output.

use crate::{Csr, EdgeList, VertexId, Weight, INF_DIST, NO_VERTEX};

/// A validation failure, identifying which spec rule was violated.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationError {
    /// Rule 1: the BFS tree contains a cycle or a vertex claims an
    /// out-of-range parent.
    BrokenTree {
        /// Vertex at which the walk to the root failed.
        vertex: VertexId,
    },
    /// Rule 2: tree edge (parent(v), v) does not exist in the graph.
    PhantomEdge {
        /// Child vertex of the phantom tree edge.
        vertex: VertexId,
        /// Claimed parent.
        parent: VertexId,
    },
    /// Rule 3: levels of tree neighbors differ by more than one, or a
    /// vertex's level is not parent's level + 1.
    LevelSkew {
        /// Vertex whose level is inconsistent with its parent's.
        vertex: VertexId,
    },
    /// Rule 4: a graph edge spans more than one BFS level.
    EdgeSpansLevels {
        /// Edge source.
        src: VertexId,
        /// Edge destination.
        dst: VertexId,
    },
    /// Rule 5: a vertex in the root's component was not reached.
    Unreached {
        /// The unreached vertex.
        vertex: VertexId,
    },
    /// The root's own entry is malformed.
    BadRoot,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::BrokenTree { vertex } => write!(f, "cycle/invalid parent at {vertex}"),
            ValidationError::PhantomEdge { vertex, parent } => {
                write!(f, "tree edge ({parent},{vertex}) not in graph")
            }
            ValidationError::LevelSkew { vertex } => write!(f, "level skew at {vertex}"),
            ValidationError::EdgeSpansLevels { src, dst } => {
                write!(f, "edge ({src},{dst}) spans >1 level")
            }
            ValidationError::Unreached { vertex } => write!(f, "vertex {vertex} unreached"),
            ValidationError::BadRoot => write!(f, "root entry malformed"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a BFS parent array against the (assumed symmetric) graph,
/// per the Graph500 Benchmark 1 validation rules. `parent[root]` must be
/// `root` or `NO_VERTEX`.
pub fn validate_bfs_tree(
    g: &Csr,
    root: VertexId,
    parent: &[VertexId],
) -> Result<(), ValidationError> {
    let n = g.num_vertices();
    assert_eq!(parent.len(), n, "parent array length mismatch");
    if parent[root as usize] != root && parent[root as usize] != NO_VERTEX {
        return Err(ValidationError::BadRoot);
    }

    // Derive levels by walking up parents, with path lengths bounded by n
    // (cycle detection). Memoized via level array.
    let mut level = vec![u32::MAX; n];
    level[root as usize] = 0;
    for v0 in 0..n as VertexId {
        if parent[v0 as usize] == NO_VERTEX || level[v0 as usize] != u32::MAX {
            continue;
        }
        // Walk up to a vertex with a known level.
        let mut path = vec![v0];
        let mut v = v0;
        loop {
            let p = parent[v as usize];
            if p == NO_VERTEX || p as usize >= n {
                return Err(ValidationError::BrokenTree { vertex: v });
            }
            if level[p as usize] != u32::MAX {
                break;
            }
            if path.len() > n {
                return Err(ValidationError::BrokenTree { vertex: v0 });
            }
            path.push(p);
            v = p;
        }
        let mut l = level[parent[v as usize] as usize];
        for &u in path.iter().rev() {
            l += 1;
            level[u as usize] = l;
        }
    }

    // Rule 2 + 3: every tree edge exists and connects consecutive levels.
    for v in 0..n as VertexId {
        let p = parent[v as usize];
        if p == NO_VERTEX || v == root {
            continue;
        }
        if !g.neighbors(p).contains(&v) {
            return Err(ValidationError::PhantomEdge { vertex: v, parent: p });
        }
        if level[v as usize] != level[p as usize] + 1 {
            return Err(ValidationError::LevelSkew { vertex: v });
        }
    }

    // Rule 4: graph edges connect vertices whose levels differ by <= 1,
    // and never connect reached with unreached.
    for u in 0..n as VertexId {
        for &v in g.neighbors(u) {
            let (lu, lv) = (level[u as usize], level[v as usize]);
            match (lu == u32::MAX, lv == u32::MAX) {
                (true, true) => {}
                (false, false) => {
                    if lu.abs_diff(lv) > 1 {
                        return Err(ValidationError::EdgeSpansLevels { src: u, dst: v });
                    }
                }
                _ => {
                    return Err(ValidationError::Unreached {
                        vertex: if lu == u32::MAX { u } else { v },
                    })
                }
            }
        }
    }
    Ok(())
}

/// Validates SSSP distances against relaxation optimality: `dist[root] == 0`
/// and no edge can further relax any distance; reached/unreached must agree
/// with graph connectivity from the root.
pub fn validate_sssp_distances(g: &Csr, root: VertexId, dist: &[Weight]) -> Result<(), String> {
    if dist[root as usize] != 0.0 {
        return Err(format!("dist[root] = {} != 0", dist[root as usize]));
    }
    for u in 0..g.num_vertices() as VertexId {
        if dist[u as usize] == INF_DIST {
            continue;
        }
        for (v, w) in g.neighbors_weighted(u) {
            // Tolerance for differing f32 summation orders across engines.
            if dist[v as usize] > dist[u as usize] + w + 1e-4 {
                return Err(format!(
                    "edge ({u},{v},{w}) relaxes dist[{v}]: {} > {} + {w}",
                    dist[v as usize], dist[u as usize]
                ));
            }
        }
    }
    Ok(())
}

/// Converts a parent array into the edge list of the BFS tree; useful for
/// diagnostics and tested as part of the validation module.
pub fn tree_edges(parent: &[VertexId], root: VertexId) -> EdgeList {
    let edges: Vec<(VertexId, VertexId)> = parent
        .iter()
        .enumerate()
        .filter(|&(v, &p)| p != NO_VERTEX && v as VertexId != root)
        .map(|(v, &p)| (p, v as VertexId))
        .collect();
    EdgeList::new(parent.len(), edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;

    fn ring(n: usize) -> Csr {
        let edges: Vec<_> = (0..n as VertexId).map(|v| (v, (v + 1) % n as VertexId)).collect();
        Csr::from_edge_list(&EdgeList::new(n, edges).symmetrized())
    }

    #[test]
    fn oracle_bfs_tree_validates() {
        let g = ring(16);
        let r = oracle::bfs(&g, 3);
        validate_bfs_tree(&g, 3, &r.parent).unwrap();
    }

    #[test]
    fn detects_cycle_in_tree() {
        let g = ring(4);
        // 1 and 2 point at each other: cycle not reaching the root.
        let parent = vec![NO_VERTEX, 2, 1, 0];
        let err = validate_bfs_tree(&g, 0, &parent).unwrap_err();
        assert!(matches!(err, ValidationError::BrokenTree { .. }));
    }

    #[test]
    fn detects_phantom_edge() {
        let g = ring(6);
        let mut r = oracle::bfs(&g, 0);
        r.parent[3] = 0; // (0,3) is not an edge of a 6-ring
        let err = validate_bfs_tree(&g, 0, &r.parent).unwrap_err();
        assert!(matches!(err, ValidationError::PhantomEdge { .. }));
    }

    #[test]
    fn detects_unreached_vertex_in_component() {
        let g = ring(5);
        let mut r = oracle::bfs(&g, 0);
        r.parent[2] = NO_VERTEX; // pretend 2 was never reached
        let err = validate_bfs_tree(&g, 0, &r.parent).unwrap_err();
        assert!(matches!(err, ValidationError::Unreached { .. }));
    }

    #[test]
    fn detects_level_skew() {
        // Ring of 8 rooted at 0; claim parent[4] = 3 but make 4's level wrong
        // by attaching 3 to the root directly... simplest: corrupt parent of 2
        // to be 0's neighbor 7 creating level mismatch on a valid edge.
        let g = ring(8);
        let mut r = oracle::bfs(&g, 0);
        // Path 0-1-2; set parent[2]=3 where 3 has level 3: edge (3,2) exists,
        // but level(2) must then be 4 while edge (1,2) spans levels 1..4.
        r.parent[2] = 3;
        assert!(validate_bfs_tree(&g, 0, &r.parent).is_err());
    }

    #[test]
    fn unreachable_component_is_fine() {
        let el = EdgeList::new(5, vec![(0, 1), (2, 3)]).symmetrized();
        let g = Csr::from_edge_list(&el);
        let r = oracle::bfs(&g, 0);
        validate_bfs_tree(&g, 0, &r.parent).unwrap();
    }

    #[test]
    fn sssp_validation_accepts_dijkstra_rejects_garbage() {
        let el =
            EdgeList::weighted(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)], vec![1.0, 1.0, 5.0, 2.0])
                .symmetrized();
        let g = Csr::from_edge_list(&el);
        let d = oracle::dijkstra(&g, 0);
        validate_sssp_distances(&g, 0, &d).unwrap();
        let mut bad = d.clone();
        bad[3] = 100.0;
        assert!(validate_sssp_distances(&g, 0, &bad).is_err());
    }

    #[test]
    fn tree_edges_extraction() {
        let g = ring(4);
        let r = oracle::bfs(&g, 0);
        let te = tree_edges(&r.parent, 0);
        assert_eq!(te.num_edges(), 3); // spanning tree of 4 reached vertices
    }
}
