//! Sequential oracle implementations.
//!
//! Textbook, obviously-correct versions of every algorithm the paper
//! measures: BFS, SSSP (Dijkstra), PageRank, plus the Graphalytics trio
//! CDLP, LCC, and WCC used in Tables I and II. The five engines are
//! cross-checked against these in unit and integration tests. None of these
//! are timed by the harness — they exist purely for verification.

use crate::{Csr, VertexId, Weight, INF_DIST, NO_VERTEX};
use std::collections::VecDeque;

/// Breadth-first search result: per-vertex level and parent.
#[derive(Clone, Debug, PartialEq)]
pub struct BfsResult {
    /// Hop distance from the root; `u32::MAX` when unreached.
    pub level: Vec<u32>,
    /// BFS-tree parent; `NO_VERTEX` for the root and unreached vertices.
    pub parent: Vec<VertexId>,
}

/// Sequential BFS from `root`.
pub fn bfs(g: &Csr, root: VertexId) -> BfsResult {
    let n = g.num_vertices();
    let mut level = vec![u32::MAX; n];
    let mut parent = vec![NO_VERTEX; n];
    let mut queue = VecDeque::new();
    level[root as usize] = 0;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if level[v as usize] == u32::MAX {
                level[v as usize] = level[u as usize] + 1;
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    BfsResult { level, parent }
}

/// Sequential Dijkstra from `root`. Requires non-negative weights
/// (unweighted graphs use weight 1.0 per edge).
pub fn dijkstra(g: &Csr, root: VertexId) -> Vec<Weight> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// f32 ordered wrapper; weights are finite and non-negative here.
    #[derive(PartialEq)]
    struct D(Weight);
    impl Eq for D {}
    impl PartialOrd for D {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for D {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&o.0)
        }
    }

    let n = g.num_vertices();
    let mut dist = vec![INF_DIST; n];
    let mut heap = BinaryHeap::new();
    dist[root as usize] = 0.0;
    heap.push(Reverse((D(0.0), root)));
    while let Some(Reverse((D(d), u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (v, w) in g.neighbors_weighted(u) {
            debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((D(nd), v)));
            }
        }
    }
    dist
}

/// Damping factor used by every PageRank in the paper's systems.
pub const PR_DAMPING: f64 = 0.85;

/// The paper's homogenized stopping threshold: L1 change below
/// `6e-8` (~machine epsilon for f32), §IV-A.
pub const PR_EPSILON: f64 = 6e-8;

/// Sequential PageRank by power iteration with the paper's L1 stopping
/// criterion. Returns `(ranks, iterations)`. Sink vertices redistribute
/// their rank uniformly. `max_iters` bounds runaway configurations.
pub fn pagerank(g: &Csr, epsilon: f64, max_iters: u32) -> (Vec<f64>, u32) {
    let n = g.num_vertices();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let gt = g.transpose();
    let out_deg: Vec<usize> = (0..n as VertexId).map(|v| g.out_degree(v)).collect();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let base = (1.0 - PR_DAMPING) / n as f64;
    let mut iters = 0;
    while iters < max_iters {
        iters += 1;
        let sink_mass: f64 =
            (0..n).filter(|&v| out_deg[v] == 0).map(|v| rank[v]).sum::<f64>() / n as f64;
        for v in 0..n {
            let incoming: f64 = gt
                .neighbors(v as VertexId)
                .iter()
                .map(|&u| rank[u as usize] / out_deg[u as usize] as f64)
                .sum();
            next[v] = base + PR_DAMPING * (incoming + sink_mass);
        }
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < epsilon {
            break;
        }
    }
    (rank, iters)
}

/// Sequential community detection by label propagation (Graphalytics CDLP):
/// synchronous updates, each vertex takes the smallest label among the most
/// frequent labels of its in- and out-neighbors, for `iterations` rounds.
pub fn cdlp(g: &Csr, iterations: u32) -> Vec<u64> {
    let n = g.num_vertices();
    let gt = g.transpose();
    let mut label: Vec<u64> = (0..n as u64).collect();
    let mut next = label.clone();
    let mut freq: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    for _ in 0..iterations {
        for v in 0..n {
            freq.clear();
            for &u in g.neighbors(v as VertexId).iter().chain(gt.neighbors(v as VertexId)) {
                *freq.entry(label[u as usize]).or_insert(0) += 1;
            }
            next[v] = freq
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                .map(|(&l, _)| l)
                .unwrap_or(label[v]);
        }
        std::mem::swap(&mut label, &mut next);
    }
    label
}

/// Sequential local clustering coefficient per vertex (Graphalytics LCC):
/// over the *undirected* neighborhood, `lcc(v) = |edges among N(v)| /
/// (d(v) * (d(v)-1))` counting directed edges among neighbors.
pub fn lcc(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices();
    let gt = g.transpose();
    // Undirected neighborhoods, deduplicated and sorted.
    let mut nbrs: Vec<Vec<VertexId>> = Vec::with_capacity(n);
    for v in 0..n as VertexId {
        let mut set: Vec<VertexId> =
            g.neighbors(v).iter().chain(gt.neighbors(v)).copied().filter(|&u| u != v).collect();
        set.sort_unstable();
        set.dedup();
        nbrs.push(set);
    }
    let mut out = vec![0.0f64; n];
    for v in 0..n {
        let nb = &nbrs[v];
        let d = nb.len();
        if d < 2 {
            continue;
        }
        // Count directed edges among neighbors via sorted intersection.
        let mut tri = 0u64;
        for &u in nb {
            // Edges u -> w for w in nb: intersect out-neighbors of u with nb.
            let mut a = nbrs_out_sorted(g, u);
            a.retain(|&w| w != u);
            tri += sorted_intersection_count(&a, nb);
        }
        out[v] = tri as f64 / (d as f64 * (d - 1) as f64);
    }
    out
}

fn nbrs_out_sorted(g: &Csr, v: VertexId) -> Vec<VertexId> {
    let mut a = g.neighbors(v).to_vec();
    a.sort_unstable();
    a.dedup();
    a
}

fn sorted_intersection_count(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut c) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Sequential weakly connected components: returns the smallest vertex id
/// in each vertex's component (the Graphalytics convention).
pub fn wcc(g: &Csr) -> Vec<VertexId> {
    let n = g.num_vertices();
    let gt = g.transpose();
    let mut comp = vec![NO_VERTEX; n];
    let mut queue = VecDeque::new();
    for start in 0..n as VertexId {
        if comp[start as usize] != NO_VERTEX {
            continue;
        }
        comp[start as usize] = start;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u).iter().chain(gt.neighbors(u)) {
                if comp[v as usize] == NO_VERTEX {
                    comp[v as usize] = start;
                    queue.push_back(v);
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeList;

    /// 0-1-2 path plus 3-4 pair plus isolated 5, symmetric.
    fn two_components() -> Csr {
        Csr::from_edge_list(&EdgeList::new(6, vec![(0, 1), (1, 2), (3, 4)]).symmetrized())
    }

    #[test]
    fn bfs_levels_and_parents() {
        let g = two_components();
        let r = bfs(&g, 0);
        assert_eq!(r.level[..3], [0, 1, 2]);
        assert_eq!(r.level[3], u32::MAX);
        assert_eq!(r.parent[0], NO_VERTEX);
        assert_eq!(r.parent[1], 0);
        assert_eq!(r.parent[2], 1);
    }

    #[test]
    fn dijkstra_matches_bfs_on_unit_weights() {
        let g = two_components();
        let d = dijkstra(&g, 0);
        let b = bfs(&g, 0);
        for v in 0..6 {
            if b.level[v] == u32::MAX {
                assert!(d[v].is_infinite());
            } else {
                assert_eq!(d[v], b.level[v] as Weight);
            }
        }
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        // 0 -> 1 cost 10; 0 -> 2 -> 1 cost 3.
        let el = EdgeList::weighted(3, vec![(0, 1), (0, 2), (2, 1)], vec![10.0, 1.0, 2.0]);
        let g = Csr::from_edge_list(&el);
        let d = dijkstra(&g, 0);
        assert_eq!(d[1], 3.0);
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hub_highest() {
        // Star with edges pointing into vertex 0.
        let el = EdgeList::new(5, vec![(1, 0), (2, 0), (3, 0), (4, 0)]);
        let g = Csr::from_edge_list(&el);
        let (pr, iters) = pagerank(&g, PR_EPSILON, 200);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
        assert!(iters > 1);
        for v in 1..5 {
            assert!(pr[0] > pr[v]);
        }
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (pr, _) = pagerank(&Csr::from_edge_list(&el), PR_EPSILON, 200);
        for v in 0..4 {
            assert!((pr[v] - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn cdlp_converges_on_cliques() {
        // Two triangles.
        let el =
            EdgeList::new(6, vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).symmetrized();
        let labels = cdlp(&Csr::from_edge_list(&el), 10);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn lcc_triangle_is_one_path_is_zero() {
        let tri =
            Csr::from_edge_list(&EdgeList::new(3, vec![(0, 1), (1, 2), (2, 0)]).symmetrized());
        for c in lcc(&tri) {
            assert!((c - 1.0).abs() < 1e-12);
        }
        let path = two_components();
        let c = lcc(&path);
        assert_eq!(c[1], 0.0); // middle of a path: neighbors not adjacent
        assert_eq!(c[0], 0.0); // degree 1
    }

    #[test]
    fn lcc_directed_counts_each_direction() {
        // Undirected triangle base, but only one directed edge 1->2 among
        // neighbors of 0: lcc(0) = 1 directed edge / (2*1) = 0.5.
        let el = EdgeList::new(3, vec![(0, 1), (1, 0), (0, 2), (2, 0), (1, 2)]);
        let c = lcc(&Csr::from_edge_list(&el));
        assert!((c[0] - 0.5).abs() < 1e-12, "lcc(0) = {}", c[0]);
    }

    #[test]
    fn wcc_ignores_direction() {
        let g = Csr::from_edge_list(&EdgeList::new(6, vec![(0, 1), (1, 2), (3, 4)]));
        let comp = wcc(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_eq!(comp[5], 5);
        // Component id is the minimum member.
        assert_eq!(comp[0], 0);
        assert_eq!(comp[3], 3);
    }
}

/// Sequential exact betweenness centrality (Brandes' algorithm, unweighted,
/// over out-edges). Unnormalized; endpoints excluded. This is the oracle
/// for the §V extension algorithms.
pub fn betweenness(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices();
    let mut bc = vec![0.0f64; n];
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    let mut stack: Vec<VertexId> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    for s in 0..n as VertexId {
        // Reset per-source state.
        sigma.iter_mut().for_each(|x| *x = 0.0);
        dist.iter_mut().for_each(|x| *x = -1);
        delta.iter_mut().for_each(|x| *x = 0.0);
        stack.clear();
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            stack.push(u);
            for &v in g.neighbors(u) {
                if dist[v as usize] < 0 {
                    dist[v as usize] = dist[u as usize] + 1;
                    queue.push_back(v);
                }
                if dist[v as usize] == dist[u as usize] + 1 {
                    sigma[v as usize] += sigma[u as usize];
                }
            }
        }
        // Accumulate dependencies in reverse BFS order.
        while let Some(w) = stack.pop() {
            for &v in g.neighbors(w) {
                if dist[v as usize] == dist[w as usize] + 1 {
                    delta[w as usize] +=
                        sigma[w as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
                }
            }
            if w != s {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
    bc
}

/// Sequential exact triangle count over the *undirected* simple version of
/// the graph (self-loops and duplicates ignored; each triangle counted
/// once), by ordered neighbor-set intersection.
pub fn triangle_count(g: &Csr) -> u64 {
    let n = g.num_vertices();
    let gt = g.transpose();
    // Undirected adjacency restricted to higher-numbered neighbors.
    let mut higher: Vec<Vec<VertexId>> = Vec::with_capacity(n);
    for v in 0..n as VertexId {
        let mut set: Vec<VertexId> =
            g.neighbors(v).iter().chain(gt.neighbors(v)).copied().filter(|&u| u > v).collect();
        set.sort_unstable();
        set.dedup();
        higher.push(set);
    }
    let mut count = 0u64;
    for u in 0..n {
        let hu = &higher[u];
        for &v in hu {
            count += sorted_intersection_count(hu, &higher[v as usize]);
        }
    }
    count
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::EdgeList;

    #[test]
    fn bc_path_graph_center_is_highest() {
        // Path 0-1-2-3-4: vertex 2 lies on the most shortest paths.
        let el = EdgeList::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]).symmetrized();
        let bc = betweenness(&Csr::from_edge_list(&el));
        // Exact values for an undirected path (counted per direction):
        // bc(1) = bc(3) = 6, bc(2) = 8, endpoints 0.
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[4], 0.0);
        assert_eq!(bc[1], 6.0);
        assert_eq!(bc[2], 8.0);
        assert_eq!(bc[3], 6.0);
    }

    #[test]
    fn bc_star_hub_dominates() {
        let el = EdgeList::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]).symmetrized();
        let bc = betweenness(&Csr::from_edge_list(&el));
        // Hub carries all 4*3 = 12 cross-leaf shortest paths.
        assert_eq!(bc[0], 12.0);
        for v in 1..5 {
            assert_eq!(bc[v], 0.0);
        }
    }

    #[test]
    fn bc_clique_is_zero() {
        // Complete graph: every pair adjacent, no intermediaries.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in 0..5u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let bc = betweenness(&Csr::from_edge_list(&EdgeList::new(5, edges)));
        assert!(bc.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn triangles_on_known_shapes() {
        let tri = EdgeList::new(3, vec![(0, 1), (1, 2), (2, 0)]);
        assert_eq!(triangle_count(&Csr::from_edge_list(&tri)), 1);
        let square = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]).symmetrized();
        assert_eq!(triangle_count(&Csr::from_edge_list(&square)), 0);
        // K4 has 4 triangles.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                edges.push((u, v));
            }
        }
        assert_eq!(triangle_count(&Csr::from_edge_list(&EdgeList::new(4, edges))), 4);
    }

    #[test]
    fn triangles_ignore_direction_duplicates_and_loops() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 0), (1, 2), (2, 0), (0, 0), (1, 2)]);
        assert_eq!(triangle_count(&Csr::from_edge_list(&el)), 1);
    }

    #[test]
    fn lcc_consistent_with_triangle_count_on_undirected_simple_graphs() {
        // Sum over v of (lcc(v) * d(v)(d(v)-1)) counts each triangle 6 times
        // in a symmetric simple graph (each directed wedge closure).
        let el = crate::EdgeList::new(
            12,
            vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (5, 6), (8, 9)],
        )
        .symmetrized()
        .deduplicated();
        let g = Csr::from_edge_list(&el);
        let lcc = lcc(&g);
        let gt = g.transpose();
        let closed: f64 = (0..g.num_vertices() as VertexId)
            .map(|v| {
                let mut nb: Vec<VertexId> = g
                    .neighbors(v)
                    .iter()
                    .chain(gt.neighbors(v))
                    .copied()
                    .filter(|&u| u != v)
                    .collect();
                nb.sort_unstable();
                nb.dedup();
                let d = nb.len() as f64;
                lcc[v as usize] * d * (d - 1.0)
            })
            .sum();
        assert!((closed / 6.0 - triangle_count(&g) as f64).abs() < 1e-9);
    }
}
