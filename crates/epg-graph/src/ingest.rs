//! Parallel, zero-copy ingest.
//!
//! The paper measures the file-read phase separately from construction and
//! algorithm phases precisely because it dominates end-to-end time for
//! several systems (Fig. 4, Table I). The serial [`crate::snap::parse_snap`]
//! walks `reader.lines()`, allocating a `String` per edge on one core; this
//! module replaces it on the hot path with a chunked byte-range scanner:
//!
//! 1. read the whole file into one byte buffer,
//! 2. split the buffer at newline boundaries into per-thread chunks,
//! 3. scan each chunk with a no-alloc integer/float tokenizer (no per-line
//!    `String`, no UTF-8 validation on the hot path),
//! 4. stitch the per-chunk edge vectors with the pool's `exclusive_scan`
//!    into one [`EdgeList`].
//!
//! Error parity: the parallel parser reports the *same* [`ParseError`]
//! (reason string and 1-based physical line number) as the serial parser
//! for any malformed input, including the cross-chunk "mixed weighted and
//! unweighted lines" case — each chunk records its first data line's
//! weightedness and the stitch step replays the serial parser's check
//! order. The serial parser remains an independent implementation so the
//! differential proptests in `tests/proptests.rs` are a real oracle.
//!
//! Known divergence (documented in DESIGN.md §9): on non-UTF-8 *input
//! bytes* the serial parser fails with `ParseError::Io` (from
//! `BufRead::lines`), while this scanner never validates UTF-8 and reports
//! the offending token as a `Malformed` parse error instead. All SNAP
//! files in the wild (and every generator output) are ASCII.

use crate::snap::ParseError;
use crate::{EdgeList, VertexId, Weight};
use epg_parallel::{DisjointWriter, Schedule, ThreadPool};
use std::io;
use std::path::Path;

/// ASCII whitespace as `str::split_whitespace` sees it (the `\n` terminator
/// is consumed by the line splitter before tokenization).
#[inline]
fn is_ws(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\r' | 0x0b | 0x0c)
}

/// Parses an unsigned decimal token. The fast path handles pure-digit
/// tokens without UTF-8 validation; unusual tokens (signs, overflow-length,
/// empty, junk) fall back to `str::parse` so the error *message* is
/// byte-identical to the serial parser's.
fn parse_u64_token(tok: &[u8]) -> Result<u64, String> {
    if !tok.is_empty() && tok.len() <= 19 && tok.iter().all(|b| b.is_ascii_digit()) {
        let mut x = 0u64;
        for &b in tok {
            x = x * 10 + (b - b'0') as u64;
        }
        return Ok(x);
    }
    match std::str::from_utf8(tok) {
        Ok(s) => s.parse::<u64>().map_err(|e| e.to_string()),
        // Serial hits an Io error before parsing non-UTF-8; see module docs.
        Err(_) => Err("invalid digit found in string".to_string()),
    }
}

/// Parses a float token via `str::parse` (weights are one token in three —
/// never the bottleneck — and std's grammar/error strings are the contract).
fn parse_f32_token(tok: &[u8]) -> Result<f32, String> {
    match std::str::from_utf8(tok) {
        Ok(s) => s.parse::<f32>().map_err(|e| e.to_string()),
        Err(_) => Err("invalid float literal".to_string()),
    }
}

/// What one chunk scan produced. Line numbers are 1-based *within the
/// chunk*; the stitch step turns them global via prefix sums of `nlines`.
#[derive(Default)]
struct ChunkOut {
    edges: Vec<(VertexId, VertexId)>,
    weights: Vec<Weight>,
    max_id: u64,
    /// Physical lines in the chunk (blank and comment lines included).
    nlines: usize,
    /// First *data* line in the chunk: (local line, is-weighted). Drives
    /// the cross-chunk mixed-weightedness check.
    first_flag: Option<(usize, bool)>,
    /// First in-chunk parse error; scanning stops producing edges there
    /// but keeps counting lines so later chunks stay globally numbered.
    defect: Option<(usize, String)>,
}

/// Scans one data line (already stripped of its `\n`). Mirrors the serial
/// parser's per-line check order exactly: src → missing/bad dst → too many
/// columns → mixed-weightedness → bad weight → oversized id.
fn scan_line(line: &[u8], lineno: usize, out: &mut ChunkOut) -> Result<(), String> {
    let mut pos = 0;
    let next_tok = |pos: &mut usize| -> Option<(usize, usize)> {
        while *pos < line.len() && is_ws(line[*pos]) {
            *pos += 1;
        }
        let start = *pos;
        while *pos < line.len() && !is_ws(line[*pos]) {
            *pos += 1;
        }
        (*pos > start).then_some((start, *pos))
    };
    let Some((s0, e0)) = next_tok(&mut pos) else {
        return Ok(()); // blank line
    };
    if line[s0] == b'#' {
        return Ok(()); // comment line
    }
    let u = parse_u64_token(&line[s0..e0]).map_err(|e| format!("src: {e}"))?;
    let (s1, e1) = next_tok(&mut pos).ok_or_else(|| "missing dst".to_string())?;
    let v = parse_u64_token(&line[s1..e1]).map_err(|e| format!("dst: {e}"))?;
    let wtok = next_tok(&mut pos);
    if next_tok(&mut pos).is_some() {
        return Err("too many columns".into());
    }
    let weighted = wtok.is_some();
    match out.first_flag {
        None => out.first_flag = Some((lineno, weighted)),
        Some((_, prev)) if prev != weighted => {
            return Err("mixed weighted and unweighted lines".into());
        }
        _ => {}
    }
    if let Some((sw, ew)) = wtok {
        let w = parse_f32_token(&line[sw..ew]).map_err(|e| format!("weight: {e}"))?;
        out.weights.push(w);
    }
    if u > VertexId::MAX as u64 - 1 || v > VertexId::MAX as u64 - 1 {
        return Err("vertex id too large".into());
    }
    out.max_id = out.max_id.max(u).max(v);
    out.edges.push((u as VertexId, v as VertexId));
    Ok(())
}

/// Scans one byte chunk. After a defect the scanner stops parsing but keeps
/// counting newlines so every chunk reports its true physical line span.
fn scan_chunk(bytes: &[u8]) -> ChunkOut {
    let mut out = ChunkOut::default();
    let mut pos = 0;
    while pos < bytes.len() {
        let end = bytes[pos..].iter().position(|&b| b == b'\n').map_or(bytes.len(), |k| pos + k);
        out.nlines += 1;
        if out.defect.is_none() {
            if let Err(reason) = scan_line(&bytes[pos..end], out.nlines, &mut out) {
                out.defect = Some((out.nlines, reason));
            }
        }
        pos = end + 1;
    }
    out
}

/// Chunk boundaries: `nchunks + 1` monotone byte offsets, each interior one
/// landing just past a newline so every chunk starts at a line head.
fn chunk_bounds(bytes: &[u8], nchunks: usize) -> Vec<usize> {
    let len = bytes.len();
    let mut bounds = Vec::with_capacity(nchunks + 1);
    bounds.push(0);
    for c in 1..nchunks {
        let target = c * len / nchunks;
        let mut pos = target.max(*bounds.last().unwrap());
        while pos < len && bytes[pos] != b'\n' {
            pos += 1;
        }
        pos = (pos + 1).min(len);
        if pos > *bounds.last().unwrap() && pos < len {
            bounds.push(pos);
        }
    }
    bounds.push(len);
    bounds
}

/// Parses SNAP text from a byte buffer using `nchunks` newline-aligned
/// chunks scanned in parallel. Exposed (rather than private) so the
/// differential proptests can force awkward chunk counts; use
/// [`parse_snap_parallel`] for a sensible default.
pub fn parse_snap_chunked(
    bytes: &[u8],
    pool: &ThreadPool,
    nchunks: usize,
) -> Result<EdgeList, ParseError> {
    let bounds = chunk_bounds(bytes, nchunks.max(1));
    let nchunks = bounds.len() - 1;
    let mut chunks: Vec<ChunkOut> = (0..nchunks).map(|_| ChunkOut::default()).collect();
    {
        let w = DisjointWriter::new(&mut chunks);
        pool.parallel_for(nchunks, Schedule::Dynamic { chunk: 1 }, |c| {
            let out = scan_chunk(&bytes[bounds[c]..bounds[c + 1]]);
            // SAFETY: each chunk index is handed to exactly one worker.
            unsafe { w.write(c, out) };
        });
    }

    // Error attribution, replaying the serial parser's order. Candidates of
    // chunk `c` all lie inside chunk `c`'s line span, so the first chunk
    // with any candidate owns the globally-first error. Within a chunk the
    // cross-chunk mixed-flag candidate sits at the first data line, which
    // is never later than the chunk's own defect; on a tie the mixed error
    // wins because the serial parser checks weightedness before parsing the
    // weight or range-checking ids on the same line.
    let mut line_offset = 0usize;
    let mut saw_weighted: Option<bool> = None;
    for ch in &chunks {
        let defect = ch.defect.as_ref().map(|(l, r)| (line_offset + l, r.clone()));
        let mixed = match (saw_weighted, ch.first_flag) {
            (Some(prev), Some((fl, w))) if w != prev => Some(line_offset + fl),
            _ => None,
        };
        if let Some(ml) = mixed {
            if defect.as_ref().is_none_or(|&(dl, _)| ml <= dl) {
                return Err(ParseError::Malformed {
                    line: ml,
                    reason: "mixed weighted and unweighted lines".into(),
                });
            }
        }
        if let Some((dl, reason)) = defect {
            return Err(ParseError::Malformed { line: dl, reason });
        }
        if saw_weighted.is_none() {
            saw_weighted = ch.first_flag.map(|(_, w)| w);
        }
        line_offset += ch.nlines;
    }

    // Stitch: exclusive scan over per-chunk edge counts gives each chunk
    // its destination offset; chunks then copy themselves in parallel.
    let mut counts: Vec<u64> = chunks.iter().map(|c| c.edges.len() as u64).collect();
    let total = pool.exclusive_scan(&mut counts) as usize;
    let weighted = saw_weighted == Some(true);
    let max_id = chunks.iter().map(|c| c.max_id).max().unwrap_or(0);
    let mut edges = vec![(0 as VertexId, 0 as VertexId); total];
    let mut weights = weighted.then(|| vec![0.0 as Weight; total]);
    {
        let ew = DisjointWriter::new(&mut edges);
        let ww = weights.as_mut().map(|w| DisjointWriter::new(w.as_mut_slice()));
        pool.parallel_for(chunks.len(), Schedule::Dynamic { chunk: 1 }, |c| {
            let base = counts[c] as usize;
            let ch = &chunks[c];
            // SAFETY: destination ranges [base, base+len) are disjoint by
            // construction of the exclusive scan.
            unsafe {
                ew.range_mut(base, base + ch.edges.len()).copy_from_slice(&ch.edges);
                if let Some(ww) = &ww {
                    ww.range_mut(base, base + ch.weights.len()).copy_from_slice(&ch.weights);
                }
            }
        });
    }
    let num_vertices = if edges.is_empty() { 0 } else { max_id as usize + 1 };
    Ok(EdgeList { num_vertices, edges, weights })
}

/// Parses SNAP text from a byte buffer in parallel. Chunk count scales with
/// the pool (oversubscribed 4x for dynamic balance) but chunks stay ≥ 64 KiB
/// so tiny inputs do not pay the fan-out overhead.
pub fn parse_snap_parallel(bytes: &[u8], pool: &ThreadPool) -> Result<EdgeList, ParseError> {
    let nchunks = (bytes.len() / (64 << 10)).clamp(1, pool.num_threads() * 4);
    parse_snap_chunked(bytes, pool, nchunks)
}

/// Reads and parses a SNAP file with the parallel scanner.
pub fn read_snap_file_parallel(path: &Path, pool: &ThreadPool) -> Result<EdgeList, ParseError> {
    let bytes = std::fs::read(path)?;
    parse_snap_parallel(&bytes, pool)
}

const BIN_HEADER: usize = 8 + 8 + 8 + 1; // magic, nvertices, nedges, weighted

/// Encodes the homogenizer's binary format into one buffer, records filled
/// in parallel (fixed record stride makes every byte offset computable).
/// Byte-identical to [`crate::snap::write_binary`] output.
pub fn encode_binary_parallel(el: &EdgeList, pool: &ThreadPool) -> Vec<u8> {
    let m = el.num_edges();
    let rec = if el.is_weighted() { 12 } else { 8 };
    let mut buf = vec![0u8; BIN_HEADER + m * rec];
    buf[0..8].copy_from_slice(crate::snap::BIN_MAGIC);
    buf[8..16].copy_from_slice(&(el.num_vertices as u64).to_le_bytes());
    buf[16..24].copy_from_slice(&(m as u64).to_le_bytes());
    buf[24] = el.is_weighted() as u8;
    {
        let w = DisjointWriter::new(&mut buf[BIN_HEADER..]);
        pool.parallel_for_ranges(m, Schedule::Static { chunk: None }, |_t, lo, hi| {
            // SAFETY: record ranges map 1:1 to disjoint byte ranges.
            let dst = unsafe { w.range_mut(lo * rec, hi * rec) };
            for (k, i) in (lo..hi).enumerate() {
                let (u, v) = el.edges[i];
                let d = &mut dst[k * rec..(k + 1) * rec];
                d[0..4].copy_from_slice(&u.to_le_bytes());
                d[4..8].copy_from_slice(&v.to_le_bytes());
                if rec == 12 {
                    d[8..12].copy_from_slice(&el.weight(i).to_le_bytes());
                }
            }
        });
    }
    buf
}

/// Writes the binary format with parallel encoding and a single write.
pub fn write_binary_file_parallel(el: &EdgeList, path: &Path, pool: &ThreadPool) -> io::Result<()> {
    std::fs::write(path, encode_binary_parallel(el, pool))
}

/// Decodes the binary format from a byte buffer, records in parallel.
/// Same header checks and error classes as [`crate::snap::read_binary`]
/// (trailing bytes past the last record are ignored, as the serial reader
/// never reads them).
pub fn decode_binary_parallel(bytes: &[u8], pool: &ThreadPool) -> Result<EdgeList, ParseError> {
    let eof =
        || ParseError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated binary graph"));
    if bytes.len() < BIN_HEADER {
        return Err(eof());
    }
    if &bytes[0..8] != crate::snap::BIN_MAGIC {
        return Err(ParseError::Malformed { line: 0, reason: "bad magic".into() });
    }
    let n = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let m = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
    let weighted = bytes[24] != 0;
    let rec = if weighted { 12 } else { 8 };
    let body = &bytes[BIN_HEADER..];
    if m.checked_mul(rec).is_none_or(|need| body.len() < need) {
        return Err(eof());
    }
    let mut edges = vec![(0 as VertexId, 0 as VertexId); m];
    let mut weights = weighted.then(|| vec![0.0 as Weight; m]);
    {
        let ew = DisjointWriter::new(&mut edges);
        let ww = weights.as_mut().map(|w| DisjointWriter::new(w.as_mut_slice()));
        pool.parallel_for_ranges(m, Schedule::Static { chunk: None }, |_t, lo, hi| {
            // SAFETY: ranges handed out by parallel_for_ranges are disjoint.
            unsafe {
                let es = ew.range_mut(lo, hi);
                for (k, i) in (lo..hi).enumerate() {
                    let r = &body[i * rec..];
                    es[k] = (
                        VertexId::from_le_bytes(r[0..4].try_into().unwrap()),
                        VertexId::from_le_bytes(r[4..8].try_into().unwrap()),
                    );
                }
                if let Some(ww) = &ww {
                    let ws = ww.range_mut(lo, hi);
                    for (k, i) in (lo..hi).enumerate() {
                        let r = &body[i * rec..];
                        ws[k] = Weight::from_le_bytes(r[8..12].try_into().unwrap());
                    }
                }
            }
        });
    }
    Ok(EdgeList { num_vertices: n, edges, weights })
}

/// Reads a binary graph file with the parallel decoder.
pub fn read_binary_file_parallel(path: &Path, pool: &ThreadPool) -> Result<EdgeList, ParseError> {
    let bytes = std::fs::read(path)?;
    decode_binary_parallel(&bytes, pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snap::{parse_snap, write_binary};

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    /// Both parsers must agree on result or on (line, reason).
    fn assert_parity(text: &str, nchunks: usize) {
        let serial = parse_snap(text.as_bytes());
        let par = parse_snap_chunked(text.as_bytes(), &pool(), nchunks);
        match (serial, par) {
            (Ok(a), Ok(b)) => {
                let mut sa: Vec<_> = a
                    .edges
                    .iter()
                    .enumerate()
                    .map(|(i, &(u, v))| (u, v, a.weights.as_ref().map(|w| w[i].to_bits())))
                    .collect();
                let mut sb: Vec<_> = b
                    .edges
                    .iter()
                    .enumerate()
                    .map(|(i, &(u, v))| (u, v, b.weights.as_ref().map(|w| w[i].to_bits())))
                    .collect();
                sa.sort_unstable();
                sb.sort_unstable();
                assert_eq!(sa, sb, "edge multisets differ (nchunks={nchunks})\n{text:?}");
                assert_eq!(a.num_vertices, b.num_vertices);
            }
            (
                Err(ParseError::Malformed { line: la, reason: ra }),
                Err(ParseError::Malformed { line: lb, reason: rb }),
            ) => {
                assert_eq!((la, &ra), (lb, &rb), "errors differ (nchunks={nchunks})\n{text:?}");
            }
            (s, p) => panic!("outcome mismatch (nchunks={nchunks}) {text:?}: {s:?} vs {p:?}"),
        }
    }

    #[test]
    fn parity_on_clean_and_malformed_inputs() {
        let cases = [
            "0 1\n1 2\n2 0\n",
            "# header\n\n0 1\n\n# mid\n1 2\n",
            "0 1 0.5\n1 2 1.25\n",
            "0\t1\n 1  2 \n",
            "5 9\n",
            "",
            "# only comments\n\n",
            "0 1\n1 2 0.5\n",                 // mixed at line 2
            "0 1 1.0\n1 2\n",                 // mixed at line 2 (other order)
            "0 1\nx 2\n",                     // src error line 2
            "0 1\n2\n",                       // missing dst
            "0 1\n2 y\n",                     // dst error
            "0 1 2 3\n",                      // too many columns
            "0 1 zz\n", // weight error — but unweighted flag set first? no: first line
            "1 2 0.5\n3 4 xx\n", // weight error line 2
            "# c\n\n0 1\n\n\n9999999999 1\n", // id too large after blanks
            "0 1\r\n1 2\r\n", // CRLF
            "4294967295 0\n", // VertexId::MAX rejected
            "18446744073709551616 0\n", // u64 overflow
            "+3 4\n",   // sign accepted by std parse
            "0 1\n# c\n1 2 0.5\n", // mixed after comment: line 3
        ];
        for text in cases {
            for nchunks in [1, 2, 3, 5, 8] {
                assert_parity(text, nchunks);
            }
        }
    }

    #[test]
    fn cross_chunk_mixed_error_cites_first_mismatched_line() {
        // Force the weighted run into its own chunk: the error must cite
        // the first weighted line globally, not the chunk-local index.
        let mut text = String::new();
        for i in 0..40 {
            text.push_str(&format!("{} {}\n", i, i + 1));
        }
        for i in 0..40 {
            text.push_str(&format!("{} {} 0.5\n", i, i + 1));
        }
        for nchunks in [2, 3, 4, 7] {
            assert_parity(&text, nchunks);
        }
        let err = parse_snap_chunked(text.as_bytes(), &pool(), 4).unwrap_err();
        match err {
            ParseError::Malformed { line, reason } => {
                assert_eq!(line, 41);
                assert_eq!(reason, "mixed weighted and unweighted lines");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn earliest_error_wins_across_chunks() {
        let mut text = String::new();
        for i in 0..30 {
            text.push_str(&format!("{} {}\n", i, i + 1));
        }
        text.insert_str(0, "0 bad\n"); // line 1 defect
        text.push_str("also bad\n"); // late defect
        for nchunks in [1, 2, 5] {
            assert_parity(&text, nchunks);
        }
    }

    #[test]
    fn chunk_bounds_are_newline_aligned_and_cover() {
        let text = b"aa\nbbbb\nc\n\ndddd\ne";
        for nchunks in 1..8 {
            let b = chunk_bounds(text, nchunks);
            assert_eq!(*b.first().unwrap(), 0);
            assert_eq!(*b.last().unwrap(), text.len());
            assert!(b.windows(2).all(|w| w[0] < w[1]), "{b:?}");
            for &cut in &b[1..b.len() - 1] {
                assert_eq!(text[cut - 1], b'\n', "cut {cut} not after newline");
            }
        }
    }

    #[test]
    fn binary_encode_matches_serial_bytes() {
        let p = pool();
        for el in [
            EdgeList::new(3, vec![(0, 1), (1, 2)]),
            EdgeList::weighted(5, vec![(0, 4), (3, 1), (2, 2)], vec![0.5, -1.0, 8.25]),
            EdgeList::new(0, vec![]),
        ] {
            let mut serial = Vec::new();
            write_binary(&el, &mut serial).unwrap();
            assert_eq!(encode_binary_parallel(&el, &p), serial);
        }
    }

    #[test]
    fn binary_decode_roundtrip_and_errors() {
        let p = pool();
        let el = EdgeList::weighted(6, vec![(0, 5), (4, 1)], vec![2.0, 3.5]);
        let buf = encode_binary_parallel(&el, &p);
        assert_eq!(decode_binary_parallel(&buf, &p).unwrap(), el);
        assert!(matches!(
            decode_binary_parallel(b"NOTMAGIC\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0", &p),
            Err(ParseError::Malformed { .. })
        ));
        let mut truncated = buf.clone();
        truncated.truncate(buf.len() - 3);
        assert!(matches!(decode_binary_parallel(&truncated, &p), Err(ParseError::Io(_))));
        assert!(matches!(decode_binary_parallel(&buf[..10], &p), Err(ParseError::Io(_))));
    }

    #[test]
    fn file_roundtrip_parallel() {
        let p = pool();
        let dir = std::env::temp_dir().join("epg-ingest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.bin");
        let el = EdgeList::new(100, (0..500u32).map(|i| (i % 100, (i * 13 + 1) % 100)).collect());
        write_binary_file_parallel(&el, &path, &p).unwrap();
        assert_eq!(read_binary_file_parallel(&path, &p).unwrap(), el);
        std::fs::remove_file(&path).ok();
    }
}
