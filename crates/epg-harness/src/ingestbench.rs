//! The ingest benchmark: machine-readable timing trajectory for the
//! zero-copy parallel ingest pipeline (`epg bench --json`).
//!
//! The paper's methodology separates file read from data-structure
//! construction precisely because the two scale differently (§III-B).
//! This module measures the five ingest phases the parallel pipeline
//! accelerates — SNAP text parse, binary decode, CSR build, transpose,
//! adjacency sort — against their serial oracles, at several thread
//! counts, and emits the medians as `BENCH_ingest.json`.
//!
//! The JSON schema (`epg-ingest-bench/v1`) is hand-rolled and validated
//! by [`validate_report_json`], a dependency-free recursive-descent
//! parser; the CI `bench-smoke` job and a tier-1 unit test both run the
//! validator so the file format cannot silently drift. On a single-core
//! machine the per-thread medians will not show speedup — the file is a
//! *trajectory* record: re-run on a multi-core host, the same schema
//! shows the scaling curve (see EXPERIMENTS.md).

use crate::stats::Summary;
use epg_engine_api::SsspKernel;
use epg_generator::GraphSpec;
use epg_graph::{ingest, snap, Csr};
use epg_parallel::ThreadPool;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Schema identifier embedded in every report.
pub const SCHEMA: &str = "epg-ingest-bench/v1";

/// Phases every well-formed report must contain, in emission order.
pub const PHASES: [&str; 5] = ["read", "read_binary", "build", "transpose", "sort"];

/// Benchmark configuration: one Kronecker workload, measured `trials`
/// times per phase per thread count.
#[derive(Clone, Debug)]
pub struct IngestBenchConfig {
    /// Kronecker scale (2^scale vertices).
    pub scale: u32,
    /// Edges per vertex.
    pub edge_factor: u32,
    /// Trials per measurement; the median is reported.
    pub trials: usize,
    /// Thread counts to sweep (the schema requires at least two).
    pub threads: Vec<usize>,
    /// Generator seed.
    pub seed: u64,
}

impl IngestBenchConfig {
    /// CI-smoke configuration: small enough to finish in seconds anywhere.
    pub fn quick() -> IngestBenchConfig {
        IngestBenchConfig { scale: 12, edge_factor: 8, trials: 3, threads: vec![1, 2], seed: 42 }
    }

    /// Full configuration for the committed snapshot: the largest scale
    /// that still fits a CI-class single machine comfortably.
    pub fn full() -> IngestBenchConfig {
        IngestBenchConfig {
            scale: 16,
            edge_factor: 16,
            trials: 5,
            threads: vec![1, 2, 4],
            seed: 42,
        }
    }
}

/// One SSSP kernel measurement on one adversarial family.
#[derive(Clone, Debug)]
pub struct KernelTiming {
    /// Adversarial family name (one of `GraphSpec::ADVERSARIAL_FAMILIES`).
    pub family: String,
    /// Kernel name (one of `SsspKernel::ALL` names).
    pub kernel: &'static str,
    /// Median kernel seconds from root 0.
    pub median_s: f64,
    /// Edges traversed (deterministic work counter; the gate's
    /// noise-free signal).
    pub edges_relaxed: u64,
}

/// One phase's medians: the serial oracle and one median per thread count.
#[derive(Clone, Debug)]
pub struct PhaseTiming {
    /// Phase name (one of [`PHASES`]).
    pub phase: &'static str,
    /// Median seconds of the serial implementation.
    pub serial_median_s: f64,
    /// `(threads, median seconds)` for the parallel implementation.
    pub per_thread: Vec<(usize, f64)>,
}

/// The full report: config echo, workload shape, and per-phase timings.
#[derive(Clone, Debug)]
pub struct IngestBenchReport {
    /// The configuration that produced this report.
    pub config: IngestBenchConfig,
    /// Vertices in the measured edge list.
    pub nvertices: usize,
    /// Edges in the measured edge list.
    pub nedges: usize,
    /// Bytes of the rendered SNAP text input.
    pub snap_bytes: usize,
    /// Bytes of the binary input.
    pub bin_bytes: usize,
    /// Hardware threads of the measuring host (context for the medians).
    pub host_threads: usize,
    /// One entry per phase, in [`PHASES`] order.
    pub phases: Vec<PhaseTiming>,
    /// Raw-speed SSSP tier: one entry per adversarial family × kernel.
    pub kernels: Vec<KernelTiming>,
}

fn median_secs(trials: usize, mut f: impl FnMut()) -> f64 {
    let samples: Vec<f64> = (0..trials.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    Summary::of(&samples).median
}

/// Runs the ingest benchmark: generates the workload, renders both input
/// formats in memory (no disk noise), then times each phase serially and
/// at every configured thread count.
pub fn run_ingest_bench(cfg: &IngestBenchConfig) -> IngestBenchReport {
    let el =
        GraphSpec::Kronecker { scale: cfg.scale, edge_factor: cfg.edge_factor, weighted: true }
            .generate(cfg.seed)
            .deduplicated();

    let mut snap_bytes = Vec::new();
    snap::write_snap(&el, "bench", &mut snap_bytes).expect("in-memory write");
    let mut bin_bytes = Vec::new();
    snap::write_binary(&el, &mut bin_bytes).expect("in-memory write");
    let csr = Csr::from_edge_list(&el);

    let pools: Vec<ThreadPool> = cfg.threads.iter().map(|&t| ThreadPool::new(t.max(1))).collect();
    let trials = cfg.trials;

    // Each closure pair: (serial oracle, parallel at a given pool).
    let mut phases = Vec::new();
    {
        let serial = median_secs(trials, || {
            black_box(snap::parse_snap(&snap_bytes[..]).expect("clean input"));
        });
        let per_thread = pools
            .iter()
            .zip(&cfg.threads)
            .map(|(pool, &t)| {
                (
                    t,
                    median_secs(trials, || {
                        black_box(
                            ingest::parse_snap_parallel(&snap_bytes, pool).expect("clean input"),
                        );
                    }),
                )
            })
            .collect();
        phases.push(PhaseTiming { phase: "read", serial_median_s: serial, per_thread });
    }
    {
        let serial = median_secs(trials, || {
            black_box(snap::read_binary(&bin_bytes[..]).expect("clean input"));
        });
        let per_thread = pools
            .iter()
            .zip(&cfg.threads)
            .map(|(pool, &t)| {
                (
                    t,
                    median_secs(trials, || {
                        black_box(
                            ingest::decode_binary_parallel(&bin_bytes, pool).expect("clean input"),
                        );
                    }),
                )
            })
            .collect();
        phases.push(PhaseTiming { phase: "read_binary", serial_median_s: serial, per_thread });
    }
    {
        let serial = median_secs(trials, || {
            black_box(Csr::from_edge_list(&el));
        });
        let per_thread = pools
            .iter()
            .zip(&cfg.threads)
            .map(|(pool, &t)| {
                (
                    t,
                    median_secs(trials, || {
                        black_box(Csr::from_edge_list_parallel(&el, pool));
                    }),
                )
            })
            .collect();
        phases.push(PhaseTiming { phase: "build", serial_median_s: serial, per_thread });
    }
    {
        let serial = median_secs(trials, || {
            black_box(csr.transpose());
        });
        let per_thread = pools
            .iter()
            .zip(&cfg.threads)
            .map(|(pool, &t)| {
                (
                    t,
                    median_secs(trials, || {
                        black_box(csr.transpose_parallel(pool));
                    }),
                )
            })
            .collect();
        phases.push(PhaseTiming { phase: "transpose", serial_median_s: serial, per_thread });
    }
    {
        let serial = median_secs(trials, || {
            let mut c = csr.clone();
            c.sort_adjacency();
            black_box(c);
        });
        let per_thread = pools
            .iter()
            .zip(&cfg.threads)
            .map(|(pool, &t)| {
                (
                    t,
                    median_secs(trials, || {
                        let mut c = csr.clone();
                        c.sort_adjacency_parallel(pool);
                        black_box(c);
                    }),
                )
            })
            .collect();
        phases.push(PhaseTiming { phase: "sort", serial_median_s: serial, per_thread });
    }

    // ---- raw-speed SSSP kernel tier on the adversarial corpus ----
    // Sized by the test corpus (seconds total); the deterministic
    // edges_relaxed counter is the regression signal, the median wall
    // time is context.
    let kernel_pool = pools.last().expect("at least one thread count");
    let delta = epg_engine_gap::GapConfig::default().delta;
    let mut kernels = Vec::new();
    for spec in GraphSpec::test_corpus() {
        if !GraphSpec::ADVERSARIAL_FAMILIES.contains(&spec.family()) {
            continue;
        }
        let g = Csr::from_edge_list(&spec.generate(cfg.seed));
        for kernel in SsspKernel::ALL {
            let mut edges_relaxed = 0;
            let median_s = median_secs(trials, || {
                let out = epg_engine_gap::sssp::run_kernel(kernel, &g, 0, kernel_pool, delta);
                edges_relaxed = out.counters.edges_traversed;
                black_box(out);
            });
            kernels.push(KernelTiming {
                family: spec.family().to_string(),
                kernel: kernel.name(),
                median_s,
                edges_relaxed,
            });
        }
    }

    IngestBenchReport {
        config: cfg.clone(),
        nvertices: el.num_vertices,
        nedges: el.num_edges(),
        snap_bytes: snap_bytes.len(),
        bin_bytes: bin_bytes.len(),
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        phases,
        kernels,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl IngestBenchReport {
    /// Renders the report as pretty-printed `epg-ingest-bench/v1` JSON.
    pub fn to_json(&self) -> String {
        let mut o = String::new();
        let _ = writeln!(o, "{{");
        let _ = writeln!(o, "  \"schema\": \"{}\",", json_escape(SCHEMA));
        let _ = writeln!(
            o,
            "  \"config\": {{\"scale\": {}, \"edge_factor\": {}, \"trials\": {}, \
             \"threads\": [{}], \"seed\": {}}},",
            self.config.scale,
            self.config.edge_factor,
            self.config.trials,
            self.config.threads.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", "),
            self.config.seed
        );
        let _ = writeln!(
            o,
            "  \"graph\": {{\"nvertices\": {}, \"nedges\": {}, \"snap_bytes\": {}, \
             \"bin_bytes\": {}}},",
            self.nvertices, self.nedges, self.snap_bytes, self.bin_bytes
        );
        let _ = writeln!(o, "  \"host\": {{\"hardware_threads\": {}}},", self.host_threads);
        let _ = writeln!(o, "  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            let _ = writeln!(o, "    {{");
            let _ = writeln!(o, "      \"phase\": \"{}\",", json_escape(p.phase));
            let _ = writeln!(o, "      \"serial_median_s\": {:.9},", p.serial_median_s);
            let _ = writeln!(o, "      \"per_thread\": [");
            for (j, &(t, m)) in p.per_thread.iter().enumerate() {
                let speedup = p.serial_median_s / m.max(1e-12);
                // A thread count beyond the host's hardware threads measures
                // oversubscription noise, not scaling — stamp it so readers
                // and the regression gate treat the median as context only.
                let oversubscribed = t > self.host_threads;
                let _ = writeln!(
                    o,
                    "        {{\"threads\": {t}, \"median_s\": {m:.9}, \
                     \"speedup_vs_serial\": {speedup:.4}, \
                     \"oversubscribed\": {oversubscribed}}}{}",
                    if j + 1 < p.per_thread.len() { "," } else { "" }
                );
            }
            let _ = writeln!(o, "      ]");
            let _ = writeln!(o, "    }}{}", if i + 1 < self.phases.len() { "," } else { "" });
        }
        let _ = writeln!(o, "  ],");
        let _ = writeln!(o, "  \"sssp_kernels\": [");
        for (i, k) in self.kernels.iter().enumerate() {
            let _ = writeln!(
                o,
                "    {{\"family\": \"{}\", \"kernel\": \"{}\", \"median_s\": {:.9}, \
                 \"edges_relaxed\": {}}}{}",
                json_escape(&k.family),
                json_escape(k.kernel),
                k.median_s,
                k.edges_relaxed,
                if i + 1 < self.kernels.len() { "," } else { "" }
            );
        }
        let _ = writeln!(o, "  ]");
        let _ = writeln!(o, "}}");
        o
    }
}

// ---------------------------------------------------------------------------
// Schema validation: a minimal recursive-descent JSON parser (no serde in
// the dependency budget), plus structural checks over the parsed tree.
// ---------------------------------------------------------------------------

/// Parsed JSON value (only what validation needs).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as f64.
    Num(f64),
    /// String with escapes resolved.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as an ordered key/value list (duplicate keys: last wins on get).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.b.len() && matches!(self.b[self.pos], b' ' | b'\t' | b'\n' | b'\r') {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut kv = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let v = self.value()?;
            kv.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(kv));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut vs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(vs));
        }
        loop {
            vs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(vs));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.b[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let tok = std::str::from_utf8(&self.b[start..self.pos]).unwrap();
        tok.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser { b: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

fn check_num(v: &Json, key: &str, min: f64) -> Result<f64, String> {
    let x = v
        .get(key)
        .and_then(Json::num)
        .ok_or_else(|| format!("missing or non-numeric \"{key}\""))?;
    if !x.is_finite() || x < min {
        return Err(format!("\"{key}\" = {x} out of range (min {min})"));
    }
    Ok(x)
}

/// Structural validation of a `BENCH_ingest.json` document. Returns a
/// description of the first violation found.
pub fn validate_report_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    if doc.get("schema").and_then(Json::str) != Some(SCHEMA) {
        return Err(format!("\"schema\" must be \"{SCHEMA}\""));
    }

    let config = doc.get("config").ok_or("missing \"config\"")?;
    check_num(config, "scale", 1.0)?;
    check_num(config, "edge_factor", 1.0)?;
    check_num(config, "trials", 1.0)?;
    check_num(config, "seed", 0.0)?;
    let threads =
        config.get("threads").and_then(Json::arr).ok_or("\"config.threads\" must be an array")?;
    if threads.len() < 2 {
        return Err("\"config.threads\" needs at least 2 thread counts".into());
    }

    let graph = doc.get("graph").ok_or("missing \"graph\"")?;
    check_num(graph, "nvertices", 1.0)?;
    check_num(graph, "nedges", 1.0)?;

    let phases = doc.get("phases").and_then(Json::arr).ok_or("\"phases\" must be an array")?;
    for want in PHASES {
        let p = phases
            .iter()
            .find(|p| p.get("phase").and_then(Json::str) == Some(want))
            .ok_or_else(|| format!("missing phase \"{want}\""))?;
        check_num(p, "serial_median_s", 0.0)?;
        let per = p
            .get("per_thread")
            .and_then(Json::arr)
            .ok_or_else(|| format!("phase \"{want}\": \"per_thread\" must be an array"))?;
        if per.len() < 2 {
            return Err(format!("phase \"{want}\": need medians at >= 2 thread counts"));
        }
        for e in per {
            check_num(e, "threads", 1.0)?;
            check_num(e, "median_s", 0.0)?;
            check_num(e, "speedup_vs_serial", 0.0)?;
            // Optional for pre-oversubscription-stamp reports; when present
            // it must be a real bool.
            if let Some(v) = e.get("oversubscribed") {
                if v.bool().is_none() {
                    return Err(format!("phase \"{want}\": \"oversubscribed\" must be a bool"));
                }
            }
        }
    }

    // Raw-speed SSSP tier: every adversarial family must carry every
    // kernel (a kernel or family added without bench coverage fails here).
    let kernels =
        doc.get("sssp_kernels").and_then(Json::arr).ok_or("\"sssp_kernels\" must be an array")?;
    for family in epg_generator::GraphSpec::ADVERSARIAL_FAMILIES {
        for kernel in SsspKernel::ALL {
            let e = kernels
                .iter()
                .find(|e| {
                    e.get("family").and_then(Json::str) == Some(family)
                        && e.get("kernel").and_then(Json::str) == Some(kernel.name())
                })
                .ok_or_else(|| {
                    format!("missing sssp_kernels entry for {family} × {}", kernel.name())
                })?;
            check_num(e, "median_s", 0.0)?;
            check_num(e, "edges_relaxed", 1.0)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> IngestBenchConfig {
        IngestBenchConfig { scale: 7, edge_factor: 4, trials: 1, threads: vec![1, 2], seed: 42 }
    }

    #[test]
    fn report_emits_valid_schema() {
        let report = run_ingest_bench(&tiny());
        assert_eq!(report.phases.len(), PHASES.len());
        let json = report.to_json();
        validate_report_json(&json).unwrap_or_else(|e| panic!("{e}\n---\n{json}"));
    }

    #[test]
    fn quick_config_passes_schema_requirements() {
        // The CI smoke job uses quick(); make its shape a tier-1 invariant.
        let q = IngestBenchConfig::quick();
        assert!(q.threads.len() >= 2);
        assert!(q.trials >= 1);
    }

    #[test]
    fn validator_rejects_structural_damage() {
        let good = run_ingest_bench(&tiny()).to_json();
        assert!(validate_report_json(&good).is_ok());
        // Wrong schema tag.
        let bad = good.replace(SCHEMA, "epg-ingest-bench/v0");
        assert!(validate_report_json(&bad).unwrap_err().contains("schema"));
        // A required phase missing entirely.
        let bad = good.replace("\"transpose\"", "\"transposed\"");
        assert!(validate_report_json(&bad).unwrap_err().contains("transpose"));
        // Not JSON at all.
        assert!(validate_report_json("{\"schema\": ").is_err());
        // Trailing garbage.
        assert!(validate_report_json(&format!("{good} x")).is_err());
    }

    #[test]
    fn validator_enforces_kernel_family_coverage() {
        let good = run_ingest_bench(&tiny()).to_json();
        // Dropping one kernel's rows breaks the family × kernel matrix.
        let bad = good.replace("\"kernel\": \"bmssp\"", "\"kernel\": \"bmssp2\"");
        let err = validate_report_json(&bad).unwrap_err();
        assert!(err.contains("bmssp"), "{err}");
        // Renaming a family does too.
        let bad = good.replace("\"family\": \"grid_swirl\"", "\"family\": \"grid_swirl2\"");
        assert!(validate_report_json(&bad).unwrap_err().contains("grid_swirl"));
        // The section itself is required.
        let bad = good.replace("\"sssp_kernels\"", "\"sssp_kernelz\"");
        assert!(validate_report_json(&bad).unwrap_err().contains("sssp_kernels"));
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a": [1, -2.5e1, "x\n\"A"], "b": {"c": null, "d": true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().arr().unwrap()[2], Json::Str("x\n\"A".into()));
        assert_eq!(v.get("a").unwrap().arr().unwrap()[1], Json::Num(-25.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{\"k\" 1}").is_err());
    }

    #[test]
    fn oversubscribed_thread_counts_are_stamped() {
        let mut report = run_ingest_bench(&tiny());
        report.host_threads = 1; // pretend a single-core host
        let json = report.to_json();
        validate_report_json(&json).unwrap();
        let doc = parse_json(&json).unwrap();
        for p in doc.get("phases").unwrap().arr().unwrap() {
            for e in p.get("per_thread").unwrap().arr().unwrap() {
                let t = e.get("threads").unwrap().num().unwrap() as usize;
                assert_eq!(e.get("oversubscribed").unwrap().bool(), Some(t > 1), "threads={t}");
            }
        }
        // The stamp is type-checked, not just present.
        let bad = json.replace("\"oversubscribed\": true", "\"oversubscribed\": \"yes\"");
        assert!(validate_report_json(&bad).unwrap_err().contains("oversubscribed"));
    }

    #[test]
    fn speedup_fields_are_consistent() {
        let report = run_ingest_bench(&tiny());
        let json = report.to_json();
        let doc = parse_json(&json).unwrap();
        let phases = doc.get("phases").unwrap().arr().unwrap();
        for p in phases {
            let serial = p.get("serial_median_s").unwrap();
            let Json::Num(serial) = serial else { panic!() };
            for e in p.get("per_thread").unwrap().arr().unwrap() {
                let Some(Json::Num(m)) = e.get("median_s") else { panic!() };
                let Some(Json::Num(s)) = e.get("speedup_vs_serial") else { panic!() };
                let want = serial / m.max(1e-12);
                assert!((s - want).abs() <= 0.05 * want.max(1e-9) + 1e-4);
            }
        }
    }
}
