//! Phase 4 for telemetry: summarizing `*.trace.jsonl` files.
//!
//! The runner (with the `trace` feature) drops one JSONL event stream per
//! engine×algorithm pair next to the dialect logs. [`summarize`] is the
//! pure renderer behind `epg trace summarize --input FILE`: it parses the
//! stream with the same chatter-tolerant parser the log pipeline uses and
//! prints phase timings, the per-iteration push/pull story, worker
//! utilization, counter totals, and allocation high-water marks.
//!
//! Parsing and rendering are unconditional — summarize works on any
//! checked-in trace file even in a build without the `trace` feature.

use epg_engine_api::sum_counter_deltas;
use epg_trace::{jsonl, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders a human-readable summary of one JSONL trace stream.
///
/// Deterministic for a given input (workers and allocation labels are
/// sorted), so the output is suitable for golden-file tests.
pub fn summarize(input: &str) -> String {
    let parsed = jsonl::parse_jsonl(input);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace summary: {} events, {} unparseable lines skipped",
        parsed.events.len(),
        parsed.skipped
    );

    // ---- phases: match each end to the most recent unmatched start ----
    let mut open: Vec<(&str, u64)> = Vec::new();
    let mut phases: Vec<(&str, u64)> = Vec::new();
    for ev in &parsed.events {
        match ev {
            TraceEvent::PhaseStart { phase, at_ns } => open.push((phase, *at_ns)),
            TraceEvent::PhaseEnd { phase, at_ns } => {
                if let Some(pos) = open.iter().rposition(|(p, _)| p == phase) {
                    let (p, start) = open.remove(pos);
                    phases.push((p, at_ns.saturating_sub(start)));
                }
            }
            _ => {}
        }
    }
    if !phases.is_empty() {
        let _ = writeln!(out, "\nphases");
        for (phase, ns) in &phases {
            let _ = writeln!(out, "  {:<12} {:>12.6} s", phase, *ns as f64 / 1e9);
        }
    }

    // ---- iterations: a pending "iteration" delta is closed by the next
    // Iteration event (the engines' event-ordering convention) ----
    let mut iter_rows: Vec<String> = Vec::new();
    let mut pending: Option<(u64, u64)> = None; // (edges, vertices)
    for ev in &parsed.events {
        match ev {
            TraceEvent::CountersDelta { region, edges, vertices, .. } if region == "iteration" => {
                pending = Some((*edges, *vertices));
            }
            TraceEvent::Iteration { iter, frontier, dir } => {
                let (edges, vertices) = pending.take().unwrap_or((0, 0));
                iter_rows.push(format!(
                    "  {:>4}  {:<6} {:>12} {:>12} {:>12}",
                    iter,
                    dir.label(),
                    frontier,
                    edges,
                    vertices
                ));
            }
            _ => {}
        }
    }
    if !iter_rows.is_empty() {
        let _ = writeln!(
            out,
            "\niterations\n  {:>4}  {:<6} {:>12} {:>12} {:>12}",
            "iter", "dir", "frontier", "edges", "vertices"
        );
        for row in &iter_rows {
            let _ = writeln!(out, "{row}");
        }
    }

    // ---- counter totals: sum of every delta in the stream ----
    let totals = sum_counter_deltas(&parsed.events);
    let _ = writeln!(
        out,
        "\ncounter totals: edges={} vertices={} bytes_read={} bytes_written={} iterations={}",
        totals.edges_traversed,
        totals.vertices_touched,
        totals.bytes_read,
        totals.bytes_written,
        totals.iterations
    );

    // ---- worker utilization, aggregated over all recorded regions ----
    let mut workers: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for ev in &parsed.events {
        if let TraceEvent::WorkerSpan { worker, busy_ns, idle_ns, .. } = ev {
            let w = workers.entry(*worker).or_insert((0, 0));
            w.0 += busy_ns;
            w.1 += idle_ns;
        }
    }
    if !workers.is_empty() {
        let _ = writeln!(
            out,
            "\nworkers\n  {:>6} {:>12} {:>12} {:>7}",
            "worker", "busy_s", "idle_s", "util%"
        );
        for (worker, (busy, idle)) in &workers {
            let wall = busy + idle;
            let util = if wall == 0 { 100.0 } else { *busy as f64 / wall as f64 * 100.0 };
            let _ = writeln!(
                out,
                "  {:>6} {:>12.6} {:>12.6} {:>7.1}",
                worker,
                *busy as f64 / 1e9,
                *idle as f64 / 1e9,
                util
            );
        }
    }

    // ---- trial outcomes (supervision layer; absent in older traces) ----
    let mut outcome_rows: Vec<String> = Vec::new();
    for ev in &parsed.events {
        if let TraceEvent::TrialOutcome { outcome, attempts } = ev {
            outcome_rows.push(format!("  {outcome:<12} attempts={attempts}"));
        }
    }
    if !outcome_rows.is_empty() {
        let _ = writeln!(out, "\ntrial outcomes");
        for row in &outcome_rows {
            let _ = writeln!(out, "{row}");
        }
    }

    // ---- allocation high-water marks (max per label) ----
    let mut allocs: BTreeMap<&str, u64> = BTreeMap::new();
    for ev in &parsed.events {
        if let TraceEvent::AllocHwm { label, bytes } = ev {
            let e = allocs.entry(label).or_insert(0);
            *e = (*e).max(*bytes);
        }
    }
    if !allocs.is_empty() {
        let _ = writeln!(out, "\nallocation high-water marks");
        for (label, bytes) in &allocs {
            let _ = writeln!(out, "  {label:<28} {bytes:>12} B");
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_trace::{Dir, RunRecorder};

    fn sample_trace() -> String {
        let rec = RunRecorder::new();
        use epg_trace::Recorder;
        rec.record(TraceEvent::PhaseStart { phase: "run".into(), at_ns: 0 });
        rec.record(TraceEvent::AllocHwm { label: "parent".into(), bytes: 1024 });
        rec.record(TraceEvent::Region { work: 100, span: 5, bytes: 800, parallel: true });
        rec.record(TraceEvent::CountersDelta {
            region: "iteration".into(),
            edges: 100,
            vertices: 9,
            bytes_read: 0,
            bytes_written: 0,
            iterations: 1,
        });
        rec.record(TraceEvent::Iteration { iter: 1, frontier: 1, dir: Dir::Push });
        rec.record(TraceEvent::WorkerSpan { region: 0, worker: 0, busy_ns: 900, idle_ns: 100 });
        rec.record(TraceEvent::WorkerSpan { region: 0, worker: 1, busy_ns: 500, idle_ns: 500 });
        rec.record(TraceEvent::CountersDelta {
            region: "finalize".into(),
            edges: 0,
            vertices: 0,
            bytes_read: 1200,
            bytes_written: 108,
            iterations: 0,
        });
        rec.record(TraceEvent::PhaseEnd { phase: "run".into(), at_ns: 2_000_000 });
        rec.record(TraceEvent::TrialOutcome { outcome: "ok".into(), attempts: 1 });
        rec.to_jsonl()
    }

    #[test]
    fn summary_covers_every_section() {
        let text = summarize(&sample_trace());
        assert!(text.contains("trace summary: 10 events, 0 unparseable lines skipped"));
        assert!(text.contains("trial outcomes"));
        assert!(text.contains("ok           attempts=1"));
        assert!(text.contains("phases"));
        assert!(text.contains("run"));
        assert!(text.contains("0.002000 s"));
        assert!(text.contains("push"));
        assert!(text.contains("counter totals: edges=100 vertices=9 bytes_read=1200"));
        assert!(text.contains("workers"));
        assert!(text.contains("90.0"));
        assert!(text.contains("parent"));
        assert!(text.contains("1024"));
    }

    #[test]
    fn chatter_is_counted_not_fatal() {
        let mut input = sample_trace();
        input.push_str("some stray stderr line\n");
        let text = summarize(&input);
        assert!(text.contains("1 unparseable lines skipped"));
    }

    #[test]
    fn empty_input_still_renders_totals() {
        let text = summarize("");
        assert!(text.contains("0 events"));
        assert!(text.contains("counter totals: edges=0"));
    }
}
