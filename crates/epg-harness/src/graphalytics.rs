//! The Graphalytics v0.3 comparator.
//!
//! Graphalytics is the prior framework the paper measures itself against
//! (§II, Tables I-II, Fig. 7). Two methodological properties matter and
//! are reproduced deliberately:
//!
//! 1. **Single trial**: "Just one run per experiment is performed"
//!    (Table I caption) — no box plots, no variance.
//! 2. **Phase confounding**: what counts as "runtime" differs per system.
//!    GraphMat's reported time *includes* reading the input file from
//!    disk, while GraphBIG's does not — the paper's centerpiece example:
//!    "If the time to read in the text file was ignored then GraphMat
//!    would complete nearly twice as quickly. To call this a fair
//!    comparison is dubious at best."
//!
//! The [`html_report`] function renders the per-system HTML page
//! Graphalytics outputs (Fig. 7).

use crate::dataset::Dataset;
use crate::registry::EngineKind;
use epg_engine_api::{Algorithm, RunParams};
use epg_parallel::ThreadPool;
use std::fmt::Write as _;
use std::time::Instant;

/// The systems Graphalytics drives in the paper's tables.
pub const GRAPHALYTICS_ENGINES: [EngineKind; 3] =
    [EngineKind::GraphBig, EngineKind::PowerGraph, EngineKind::GraphMat];

/// The algorithm columns of Table I, in order.
pub const TABLE1_ALGOS: [Algorithm; 6] = [
    Algorithm::Bfs,
    Algorithm::Cdlp,
    Algorithm::Lcc,
    Algorithm::PageRank,
    Algorithm::Sssp,
    Algorithm::Wcc,
];

/// One cell of a Graphalytics report.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// System under test.
    pub engine: EngineKind,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Dataset name.
    pub dataset: String,
    /// The single-run time Graphalytics would report (None = N/A).
    pub reported_seconds: Option<f64>,
    /// What actually happened, phase by phase (read, construct, run,
    /// output) — the information Graphalytics's report discards.
    pub true_phases: Option<PhaseBreakdown>,
}

/// Honest phase breakdown behind a reported number.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// File read seconds (fused engines: read+construct).
    pub read_s: f64,
    /// Structure construction seconds (0 when fused into read).
    pub construct_s: f64,
    /// Kernel seconds.
    pub run_s: f64,
    /// Result output seconds.
    pub output_s: f64,
}

impl PhaseBreakdown {
    /// The number Graphalytics reports for this system — per-system phase
    /// inclusion, reproducing the Table I inconsistency.
    pub fn graphalytics_reported(&self, engine: EngineKind) -> f64 {
        match engine {
            // GraphMat's harness wraps the whole binary: file read included.
            EngineKind::GraphMat => self.read_s + self.run_s + self.output_s,
            // GraphBIG's plugin times only the kernel + output.
            EngineKind::GraphBig => self.run_s + self.output_s,
            // PowerGraph reports the engine's own "Finished Running" time.
            EngineKind::PowerGraph => self.run_s,
            // Not driven by Graphalytics in the paper, but defined for
            // completeness: kernel time.
            _ => self.run_s,
        }
    }
}

/// Runs the Graphalytics methodology over one dataset: one trial per
/// (system, algorithm), reported with per-system phase confounding.
pub fn run_graphalytics(
    engines: &[EngineKind],
    algorithms: &[Algorithm],
    ds: &Dataset,
    threads: usize,
) -> Vec<Cell> {
    let pool = ThreadPool::new(threads.max(1));
    let dir = std::env::temp_dir().join("epg-graphalytics");
    ds.write_files(&dir).expect("failed to write homogenized files");
    let mut cells = Vec::new();
    for &kind in engines {
        let mut engine = kind.create();
        let t0 = Instant::now();
        engine
            .load_file(&ds.input_path_for(&dir, kind), &pool)
            .expect("engine failed to load input");
        let read_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        engine.construct(&pool);
        let construct_s = t0.elapsed().as_secs_f64();
        for &algo in algorithms {
            if !engine.supports(algo) {
                cells.push(Cell {
                    engine: kind,
                    algorithm: algo,
                    dataset: ds.name.clone(),
                    reported_seconds: None,
                    true_phases: None,
                });
                continue;
            }
            if algo.needs_weights() && !ds.weighted {
                // "Graphalytics by default does not perform SSSP on
                // unweighted, undirected graphs" (§IV-A) — the N/A cells.
                cells.push(Cell {
                    engine: kind,
                    algorithm: algo,
                    dataset: ds.name.clone(),
                    reported_seconds: None,
                    true_phases: None,
                });
                continue;
            }
            let root = algo.is_rooted().then(|| ds.roots[0]);
            let params = RunParams::new(&pool, root);
            let t0 = Instant::now();
            let output = engine.run(algo, &params);
            let run_s = t0.elapsed().as_secs_f64();
            // Graphalytics requires each system to write its results out.
            let t0 = Instant::now();
            let rendered = render_output_like_system(&output.result);
            let output_s = t0.elapsed().as_secs_f64();
            std::hint::black_box(rendered);
            let phases = PhaseBreakdown { read_s, construct_s, run_s, output_s };
            cells.push(Cell {
                engine: kind,
                algorithm: algo,
                dataset: ds.name.clone(),
                reported_seconds: Some(phases.graphalytics_reported(kind)),
                true_phases: Some(phases),
            });
        }
    }
    cells
}

fn render_output_like_system(result: &epg_engine_api::AlgorithmResult) -> String {
    use epg_engine_api::AlgorithmResult as R;
    let mut s = String::new();
    match result {
        R::BfsTree { level, .. } => {
            for (v, l) in level.iter().enumerate() {
                let _ = writeln!(s, "{v} {l}");
            }
        }
        R::Distances(d) => {
            for (v, x) in d.iter().enumerate() {
                let _ = writeln!(s, "{v} {x}");
            }
        }
        R::Ranks { ranks, .. } => {
            for (v, x) in ranks.iter().enumerate() {
                let _ = writeln!(s, "{v} {x:.6e}");
            }
        }
        R::Labels(l) => {
            for (v, x) in l.iter().enumerate() {
                let _ = writeln!(s, "{v} {x}");
            }
        }
        R::Coefficients(c) => {
            for (v, x) in c.iter().enumerate() {
                let _ = writeln!(s, "{v} {x:.6}");
            }
        }
        R::Components(c) => {
            for (v, x) in c.iter().enumerate() {
                let _ = writeln!(s, "{v} {x}");
            }
        }
        R::Centrality(c) => {
            for (v, x) in c.iter().enumerate() {
                let _ = writeln!(s, "{v} {x:.6}");
            }
        }
        R::Triangles(t) => {
            let _ = writeln!(s, "triangles: {t}");
        }
    }
    s
}

/// Formats cells as the paper's Table I layout: one block per system, one
/// column per algorithm, one row per dataset. `N/A` for missing cells.
pub fn format_table(cells: &[Cell], engines: &[EngineKind], datasets: &[String]) -> String {
    let mut out = String::new();
    for &engine in engines {
        let _ = write!(out, "{:<12}", engine.name());
        for a in TABLE1_ALGOS {
            let _ = write!(out, "{:>9}", a.abbrev());
        }
        out.push('\n');
        for dsname in datasets {
            let _ = write!(out, "{dsname:<12}");
            for a in TABLE1_ALGOS {
                let cell = cells
                    .iter()
                    .find(|c| c.engine == engine && c.algorithm == a && &c.dataset == dsname);
                match cell.and_then(|c| c.reported_seconds) {
                    Some(s) => {
                        let _ = write!(out, "{s:>9.3}");
                    }
                    None => {
                        let _ = write!(out, "{:>9}", "N/A");
                    }
                }
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Renders the per-system HTML report page Graphalytics produces (Fig. 7).
pub fn html_report(system: EngineKind, cells: &[Cell]) -> String {
    let mut rows = String::new();
    let mut datasets: Vec<&str> =
        cells.iter().filter(|c| c.engine == system).map(|c| c.dataset.as_str()).collect();
    datasets.sort_unstable();
    datasets.dedup();
    for ds in &datasets {
        let _ = write!(rows, "<tr><td>{ds}</td>");
        for a in TABLE1_ALGOS {
            let cell =
                cells.iter().find(|c| c.engine == system && c.algorithm == a && c.dataset == *ds);
            match cell.and_then(|c| c.reported_seconds) {
                Some(s) => {
                    let _ = write!(rows, "<td>{s:.3} s</td>");
                }
                None => {
                    let _ = write!(rows, "<td class=\"na\">N/A</td>");
                }
            }
        }
        let _ = writeln!(rows, "</tr>");
    }
    format!(
        "<!DOCTYPE html>\n<html><head><title>Graphalytics report: {name}</title>\n\
         <style>body{{font-family:sans-serif}}table{{border-collapse:collapse}}\
         td,th{{border:1px solid #999;padding:4px 10px}}.na{{color:#999}}</style></head>\n\
         <body><h1>Graphalytics benchmark report</h1><h2>System: {name}</h2>\n\
         <p>One run per experiment. Runtimes as reported by the platform driver\n\
         (phase inclusion varies per platform; see the easy-parallel-graph-*\n\
         report for phase-separated numbers).</p>\n\
         <table><tr><th>dataset</th>{heads}</tr>\n{rows}</table></body></html>\n",
        name = system.name(),
        heads = TABLE1_ALGOS.iter().map(|a| format!("<th>{}</th>", a.abbrev())).collect::<String>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_generator::GraphSpec;

    fn tiny_weighted() -> Dataset {
        Dataset::from_spec(&GraphSpec::Kronecker { scale: 6, edge_factor: 8, weighted: true }, 5)
    }

    fn tiny_unweighted() -> Dataset {
        Dataset::from_spec(&GraphSpec::Kronecker { scale: 6, edge_factor: 8, weighted: false }, 5)
    }

    #[test]
    fn graphmat_report_includes_file_read_graphbig_does_not() {
        let p = PhaseBreakdown { read_s: 2.7, construct_s: 3.0, run_s: 0.2, output_s: 0.1 };
        let gm = p.graphalytics_reported(EngineKind::GraphMat);
        let gb = p.graphalytics_reported(EngineKind::GraphBig);
        assert!((gm - 3.0).abs() < 1e-12);
        assert!((gb - 0.3).abs() < 1e-12);
        // The Table I complaint: drop the file read and GraphMat is much
        // faster than its reported number suggests.
        assert!(gm > 2.0 * (p.run_s + p.output_s));
    }

    #[test]
    fn sssp_is_na_on_unweighted_dataset() {
        let ds = tiny_unweighted();
        let cells = run_graphalytics(&[EngineKind::GraphMat], &[Algorithm::Sssp], &ds, 1);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].reported_seconds, None);
    }

    #[test]
    fn powergraph_bfs_is_na() {
        let ds = tiny_weighted();
        let cells = run_graphalytics(&[EngineKind::PowerGraph], &[Algorithm::Bfs], &ds, 1);
        assert_eq!(cells[0].reported_seconds, None);
    }

    #[test]
    fn full_run_produces_all_cells() {
        let ds = tiny_weighted();
        let cells = run_graphalytics(&GRAPHALYTICS_ENGINES, &TABLE1_ALGOS, &ds, 2);
        assert_eq!(cells.len(), 3 * 6);
        // Everything except PowerGraph BFS has a number on a weighted graph.
        for c in &cells {
            let expect_na = c.engine == EngineKind::PowerGraph && c.algorithm == Algorithm::Bfs;
            assert_eq!(c.reported_seconds.is_none(), expect_na, "{c:?}");
        }
    }

    #[test]
    fn table_and_html_render() {
        let ds = tiny_weighted();
        let cells = run_graphalytics(&[EngineKind::GraphMat], &TABLE1_ALGOS, &ds, 1);
        let table = format_table(&cells, &[EngineKind::GraphMat], std::slice::from_ref(&ds.name));
        assert!(table.contains("GraphMat"));
        assert!(table.contains("BFS"));
        let html = html_report(EngineKind::GraphMat, &cells);
        assert!(html.contains("<table>"));
        assert!(html.contains("Graphalytics benchmark report"));
    }
}
