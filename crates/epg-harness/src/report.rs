//! Markdown experiment report — the human-readable artifact of phase 5,
//! combining the dataset profile, phase-separated timing tables, PageRank
//! iteration counts, and the machine model's projected energy accounting
//! into one document (the equivalent of the paper's results section for a
//! user's own run).

use crate::dataset::Dataset;
use crate::registry::EngineKind;
use crate::runner::ExperimentResult;
use crate::stats::CensoredSummary;
use epg_engine_api::{Algorithm, Phase};
use epg_graph::analysis::GraphProfile;
use epg_machine::MachineModel;
use std::fmt::Write as _;

/// Renders the full markdown report for one experiment.
pub fn render(result: &ExperimentResult, ds: &Dataset, projected_threads: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# easy-parallel-graph report: {}\n", ds.name);

    // ---- dataset characterization ----
    let profile = GraphProfile::of(&ds.raw);
    let _ = writeln!(out, "## Dataset\n\n```\n{}```\n", profile.to_text());

    // ---- kernel times ----
    let algos: Vec<Algorithm> = {
        let mut seen = Vec::new();
        for r in &result.records {
            if let Some(a) = r.algorithm {
                if r.phase == Phase::Run && !seen.contains(&a) {
                    seen.push(a);
                }
            }
        }
        seen
    };
    let _ = writeln!(out, "## Kernel times (seconds, measured locally)\n");
    let _ = writeln!(
        out,
        "| engine | {} |",
        algos.iter().map(|a| a.abbrev()).collect::<Vec<_>>().join(" | ")
    );
    let _ = writeln!(out, "|---|{}|", algos.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for kind in EngineKind::ALL {
        let mut row = format!("| {} ", kind.name());
        let mut any = false;
        for &a in &algos {
            let times = result.run_times(kind, a);
            let dnf = result.dnf_count(kind, a);
            if times.is_empty() && dnf == 0 {
                row.push_str("| N/A ");
            } else {
                any = true;
                let s = CensoredSummary::of(&times, dnf);
                match (s.median, dnf) {
                    (Some(m), 0) => {
                        let _ = write!(row, "| {m:.5} (n={}) ", s.n);
                    }
                    (Some(m), _) => {
                        let _ = write!(row, "| {m:.5} (n={}, dnf={dnf}) ", s.n);
                    }
                    // Median censored: most trials never finished.
                    (None, _) => {
                        let _ = write!(row, "| DNF (n={}, dnf={dnf}) ", s.n);
                    }
                }
            }
        }
        if any {
            let _ = writeln!(out, "{row}|");
        }
    }

    // GAP's SSSP column depends on which raw-speed kernel ran — label it
    // so two reports with different kernel knobs are distinguishable.
    let mut sssp_kernels: Vec<&'static str> = result
        .records
        .iter()
        .filter(|r| r.phase == Phase::Run && r.algorithm == Some(Algorithm::Sssp))
        .filter_map(|r| r.kernel.map(|k| k.name()))
        .collect();
    sssp_kernels.sort_unstable();
    sssp_kernels.dedup();
    if !sssp_kernels.is_empty() {
        let _ = writeln!(
            out,
            "\n*GAP SSSP kernel: {} (select with `--sssp-kernel`).*",
            sssp_kernels.join(", ")
        );
    }

    // ---- trial outcomes (only when supervision recorded any DNFs) ----
    if result.records.iter().any(|r| r.outcome.is_dnf()) {
        let _ = writeln!(out, "\n## Trial outcomes\n");
        for (o, count) in result.outcome_counts() {
            if count > 0 {
                let _ = writeln!(out, "- {}: {count}", o.label());
            }
        }
        let _ = writeln!(
            out,
            "\nDNF trials (timeout / panic / quarantine) are censored \
             observations: the medians above rank them at +∞, and a cell \
             prints \"DNF\" when its median lands in the censored tail."
        );
    }

    // ---- construction ----
    let _ = writeln!(out, "\n## Data structure construction\n");
    for kind in EngineKind::ALL {
        let times = result.construct_times(kind);
        match times.first() {
            Some(&t) => {
                let _ = writeln!(out, "- {}: {t:.5} s", kind.name());
            }
            None => {
                if result.records.iter().any(|r| r.engine == kind) {
                    let _ = writeln!(
                        out,
                        "- {}: fused with file read (not separable, §III-B)",
                        kind.name()
                    );
                }
            }
        }
    }

    // ---- ingest phases (read + build medians per thread count) ----
    // The parallel ingest pipeline makes these phases thread-sensitive;
    // when the result spans a thread sweep, show the speedup of the
    // highest thread count over the lowest for each separable phase.
    let tcounts = result.thread_counts();
    let has_reads =
        result.records.iter().any(|r| r.phase == Phase::ReadFile || r.phase == Phase::Construct);
    if has_reads && !tcounts.is_empty() {
        let _ = writeln!(out, "\n## Ingest phases (seconds, median per thread count)\n");
        let cols: String = tcounts.iter().map(|t| format!(" t={t} |")).collect();
        let _ = writeln!(out, "| engine | phase |{cols} speedup |");
        let _ =
            writeln!(out, "|---|---|{}---|", tcounts.iter().map(|_| "---|").collect::<String>());
        for kind in EngineKind::ALL {
            for label in ["read", "construct"] {
                let medians: Vec<Option<f64>> = tcounts
                    .iter()
                    .map(|&t| {
                        let ts = if label == "read" {
                            result.read_times_at(kind, t)
                        } else {
                            result.construct_times_at(kind, t)
                        };
                        (!ts.is_empty()).then(|| crate::stats::Summary::of(&ts).median)
                    })
                    .collect();
                if medians.iter().all(Option::is_none) {
                    continue;
                }
                let mut row = format!("| {} | {label} |", kind.name());
                for m in &medians {
                    match m {
                        Some(m) => {
                            let _ = write!(row, " {m:.5} |");
                        }
                        None => row.push_str(" N/A |"),
                    }
                }
                match (medians.first().copied().flatten(), medians.last().copied().flatten()) {
                    (Some(lo), Some(hi)) if tcounts.len() > 1 => {
                        let _ = write!(row, " {:.2}x |", crate::stats::speedup(lo, hi));
                    }
                    _ => row.push_str(" — |"),
                }
                let _ = writeln!(out, "{row}");
            }
        }
        // Thread counts beyond the host's hardware threads measure
        // oversubscription, not scaling — say so instead of letting the
        // speedup column mislead (see BENCH_ingest.json's per-entry stamp).
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        let over: Vec<usize> = tcounts.iter().copied().filter(|&t| t > host).collect();
        if !over.is_empty() {
            let list = over.iter().map(|t| format!("t={t}")).collect::<Vec<_>>().join(", ");
            let _ = writeln!(
                out,
                "\n*{list} exceed the host's {host} hardware thread(s): those medians \
                 are oversubscription noise, not scaling, and the speedup column \
                 should be read accordingly.*"
            );
        }
    }

    // ---- PageRank iterations ----
    let pr_rows: Vec<(EngineKind, f64)> = EngineKind::ALL
        .into_iter()
        .filter_map(|k| {
            let it = result.pr_iterations(k);
            (!it.is_empty())
                .then(|| (k, it.iter().map(|&x| x as f64).sum::<f64>() / it.len() as f64))
        })
        .collect();
    if !pr_rows.is_empty() {
        let _ = writeln!(out, "\n## PageRank iterations (native stopping criteria)\n");
        for (k, iters) in pr_rows {
            let note = if k == EngineKind::GraphMat {
                " — iterates until no vertex's rank changes (∞-norm)"
            } else {
                ""
            };
            let _ = writeln!(out, "- {}: {iters:.0}{note}", k.name());
        }
    }

    // ---- projected energy ----
    let model = MachineModel::paper_machine();
    let _ = writeln!(
        out,
        "\n## Projected energy on {} ({projected_threads} threads)\n",
        model.spec.name
    );
    let _ = writeln!(out, "| engine | algo | time (s) | avg CPU (W) | energy (J) | vs sleep |");
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for kind in EngineKind::ALL {
        let Some(run) = result.runs.iter().find(|r| r.engine == kind) else { continue };
        let rate = model.calibrate_rate(&run.output.trace, run.seconds.max(1e-9));
        let rep = model.energy(&run.output.trace, rate, projected_threads);
        let sleep = model.sleep_baseline(rep.duration_s).total_j();
        let _ = writeln!(
            out,
            "| {} | {} | {:.6} | {:.1} | {:.5} | {:.2}x |",
            kind.name(),
            run.algorithm.abbrev(),
            rep.duration_s,
            rep.avg_cpu_w,
            rep.total_j(),
            rep.total_j() / sleep.max(1e-12)
        );
    }
    let _ = writeln!(
        out,
        "\n*(Energy from the RAPL simulator over measured execution traces; \
         see DESIGN.md substitutions.)*"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_experiment, ExperimentConfig};
    use epg_generator::GraphSpec;

    #[test]
    fn report_covers_all_sections() {
        let ds = Dataset::from_spec(
            &GraphSpec::Kronecker { scale: 7, edge_factor: 8, weighted: true },
            3,
        );
        let cfg = ExperimentConfig { max_roots: Some(2), ..ExperimentConfig::new() };
        let result = run_experiment(&cfg, &ds);
        let md = render(&result, &ds, 32);
        for section in [
            "# easy-parallel-graph report",
            "## Dataset",
            "## Kernel times",
            "## Data structure construction",
            "## Ingest phases",
            "## PageRank iterations",
            "## Projected energy",
        ] {
            assert!(md.contains(section), "missing {section}");
        }
        // Fused engines flagged; GraphMat's criterion called out.
        assert!(md.contains("fused with file read"));
        // The GAP SSSP kernel label appears (default knob → Δ-stepping).
        assert!(md.contains("GAP SSSP kernel: delta"), "missing kernel footnote");
        assert!(md.contains("∞-norm"));
        // All five engines appear.
        for k in EngineKind::ALL {
            assert!(md.contains(k.name()), "missing {}", k.name());
        }
    }
}
